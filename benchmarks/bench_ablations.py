"""Bench for the design-choice ablations (DESIGN.md).

Quantifies what the parity segmentation, in-group clustering, Laplacian
selection, and outlier removal each contribute to the headline number.
"""

import pytest

from repro.core.config import DetectorConfig
from repro.core.evaluation import evaluate_loocv
from repro.experiments import ablations
from repro.experiments.ablations import AblationConfig


@pytest.fixture(scope="module")
def result(reduced_scale):
    return ablations.run(AblationConfig(scale=reduced_scale))


@pytest.mark.experiment
def test_ablations(benchmark, report, result, feature_table):
    benchmark.group = "ablations"
    benchmark(evaluate_loocv, feature_table, DetectorConfig(clusters_per_state=1))

    print()
    print(result.render())
    report(result.render())

    # The full system is at least as good as the crippled variants
    # (small sampling slack allowed).
    assert result.baseline >= result.accuracies["plain k-means (1 cluster/state)"] - 0.02
    assert (
        result.baseline
        >= result.accuracies["peak picking instead of parity segmentation"] - 0.02
    )
    # In-group clustering is the paper's fix for the severity
    # continuum; it should contribute visibly.
    assert result.delta("plain k-means (1 cluster/state)") < 0.0
