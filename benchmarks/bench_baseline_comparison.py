"""Bench for the headline comparison — EarSonar vs Chan et al. 2019.

The paper's abstract: final accuracy "exceeds 92%, which is 8% higher
than the previous method".
"""

import pytest

from repro.baselines.chan2019 import Chan2019Detector
from repro.experiments import baseline_comparison
from repro.experiments.baseline_comparison import BaselineConfig


@pytest.fixture(scope="module")
def result(scale):
    return baseline_comparison.run(BaselineConfig(scale=scale))


@pytest.mark.experiment
def test_baseline_comparison(benchmark, report, result, study):
    benchmark.group = "baseline"
    chan = Chan2019Detector()
    benchmark(chan.features, study.recordings[0])

    print()
    print(result.render())
    report(result.render())

    # Headline shape: EarSonar wins the four-state task by a clear
    # margin (paper: ~8 points), and everything beats chance.
    assert result.earsonar_accuracy > result.chan_accuracy
    assert result.earsonar_margin > 0.03
    assert result.earsonar_accuracy > 0.8
    assert result.chan_accuracy > 0.25
    # Binary screening is easier than 4-state grading for the baseline.
    assert result.chan_binary_accuracy >= result.chan_accuracy - 0.02
