"""Bench for Fig. 2 — the acoustic-dip feasibility study.

Times the per-recording absorption analysis (the kernel behind the
figure) and regenerates the fluid-vs-clear spectral comparison.
"""

import pytest

from repro.experiments import fig02_feasibility


@pytest.fixture(scope="module")
def result():
    return fig02_feasibility.run()


@pytest.mark.experiment
def test_fig02_feasibility(benchmark, report, result, pipeline, sample_recording):
    benchmark.group = "fig02"
    benchmark(pipeline.process, sample_recording)

    print()
    print(result.render())
    report(result.render())

    # Shape claims of paper Fig. 2 / Sec. II-B.
    assert result.dip_deepens_with_fluid
    # The dip sits in the 16.5-19.5 kHz region for the fluid ear.
    assert 16_300.0 < result.dip_frequency(result.fluid_curve) < 19_700.0
    # Fluid absorbs at least 5 percentage points more at the dip.
    assert (
        result.dip_depth(result.fluid_curve)
        - result.dip_depth(result.clear_curve)
        > 0.05
    )
