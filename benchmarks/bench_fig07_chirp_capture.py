"""Bench for Fig. 7 — chirp train synthesis and capture.

Times FMCW chirp-train generation plus in-ear propagation (the signal
collection front end) and verifies the captured train's structure.
"""

import numpy as np
import pytest

from repro.experiments import fig07_08_signals
from repro.signal.chirp import ChirpDesign, chirp_train


@pytest.fixture(scope="module")
def result():
    return fig07_08_signals.run()


@pytest.mark.experiment
def test_fig07_chirp_capture(benchmark, report, result):
    benchmark.group = "fig07"
    design = ChirpDesign()
    benchmark(chirp_train, design, 100)

    print()
    print(result.render())
    report(result.render())

    # One event per emitted chirp, spaced by the 5 ms interval.
    assert len(result.events) == result.expected_chirps
    assert result.event_spacing_samples == pytest.approx(240.0, abs=5.0)
    # Echo overlap (Fig. 7b): echoes arrive while the canal still rings,
    # within the physical 1.6-3.4 cm drum-distance prior.
    distances = result.echo_distances_m
    assert distances.size > 0
    assert np.all(distances >= 0.015)
    assert np.all(distances <= 0.035)
