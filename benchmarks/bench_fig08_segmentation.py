"""Bench for Fig. 8 — event detection and parity-decomposition segmentation.

Times the two preprocessing kernels on real simulated data and checks
the segmentation yield and distance prior.
"""

import pytest

from repro.experiments import fig07_08_signals
from repro.signal.events import detect_events
from repro.signal.parity import segment_eardrum_echo


@pytest.fixture(scope="module")
def result():
    return fig07_08_signals.run()


@pytest.fixture(scope="module")
def filtered_event(pipeline, sample_recording):
    filtered = pipeline.preprocess(sample_recording.waveform)
    events = pipeline.detect_chirp_events(filtered)
    return filtered, events


@pytest.mark.experiment
def test_fig08a_event_detection(benchmark, filtered_event):
    benchmark.group = "fig08"
    filtered, events = filtered_event
    detected = benchmark(detect_events, filtered)
    assert len(detected) == len(events)


@pytest.mark.experiment
def test_fig08b_echo_segmentation(benchmark, report, filtered_event, result):
    benchmark.group = "fig08"
    filtered, events = filtered_event
    event_signal = events[0].slice(filtered)
    echo = benchmark(segment_eardrum_echo, event_signal)

    print()
    print(result.render())
    report(result.render())

    assert echo.segment.size == 512
    # Paper Sec. IV-B3: the echo is found at a plausible drum distance,
    # and nearly every chirp yields one.
    assert 0.015 <= echo.distance() <= 0.035
    assert result.echo_yield > 0.9
