"""Bench for Fig. 9 — spectral consistency within and across participants."""

import numpy as np
import pytest

from repro.experiments import fig09_consistency
from repro.signal.correlation import correlation_matrix


@pytest.fixture(scope="module")
def result():
    return fig09_consistency.run()


@pytest.mark.experiment
def test_fig09_consistency(benchmark, report, result):
    benchmark.group = "fig09"
    curves = np.vstack([result.curves_a, result.curves_b])
    benchmark(correlation_matrix, curves)

    print()
    print(result.render())
    report(result.render())

    # Paper Fig. 9b: same-ear sessions correlate above ~97%.
    assert np.median(result.intra_a) > 0.97
    assert np.median(result.intra_b) > 0.97
    # Paper Fig. 9d: different healthy ears still correlate above 90%.
    assert np.median(result.inter) > 0.90
    # Within-ear consistency is at least as strong as across ears.
    assert np.median(result.intra_a) >= np.median(result.inter) - 0.02
