"""Bench for Figs. 10-11 — recovery tracking and per-state spectra."""

import pytest

from repro.experiments import fig10_11_spectra
from repro.simulation.effusion import MeeState


@pytest.fixture(scope="module")
def result():
    return fig10_11_spectra.run()


@pytest.mark.experiment
def test_fig10_recovery_trajectories(benchmark, report, result, pipeline, sample_recording):
    benchmark.group = "fig10"
    benchmark(pipeline.process, sample_recording)

    print()
    print(result.render())
    report(result.render())

    # Paper Fig. 10: spectra converge to the healthy pattern by discharge.
    assert result.recovery.converges_to_clear
    for pid in result.recovery.curves_by_participant:
        corr = result.recovery.recovery_correlation(pid)
        assert corr[-1] > 0.95


@pytest.mark.experiment
def test_fig11_state_spectra(benchmark, result):
    benchmark.group = "fig11"
    benchmark(result.states.dip_depth, MeeState.PURULENT)

    # Paper Fig. 11: the dip deepens from Clear through the fluid states.
    states = result.states
    assert states.depth_ordering_matches_paper
    assert states.dip_depth(MeeState.CLEAR) < states.dip_depth(MeeState.SEROUS)
    assert states.dip_depth(MeeState.CLEAR) < states.dip_depth(MeeState.PURULENT)
