"""Bench for Fig. 13 — the headline LOOCV evaluation.

The feature table comes from the session fixture (one simulation per
run); the benchmark times one LOOCV fold's detector fit+predict — the
learning kernel behind the figure — then the test prints the full
paper-vs-measured report and asserts the headline shape.
"""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import MeeDetector
from repro.experiments import fig13_overall


@pytest.fixture(scope="module")
def result(feature_table):
    return fig13_overall.run_on_table(feature_table)


@pytest.mark.experiment
def test_fig13_overall_performance(benchmark, report, result, feature_table):
    benchmark.group = "fig13"

    groups = np.asarray(feature_table.groups)
    train_mask = groups != groups[0]  # hold out the first participant

    def one_fold():
        detector = MeeDetector(DetectorConfig())
        detector.fit(
            feature_table.features[train_mask],
            [s for s, m in zip(feature_table.states, train_mask) if m],
        )
        return detector.predict_indices(feature_table.features[~train_mask])

    benchmark(one_fold)

    print()
    print(result.render())
    report(result.render())

    clf_report = result.report
    # Paper Sec. VI-B: medians 92.8/92.1/92.3 — we require the same
    # "low-90s" band rather than exact numbers.
    assert clf_report.median_precision > 0.88
    assert clf_report.median_recall > 0.88
    assert clf_report.median_f1 > 0.88
    assert clf_report.accuracy > 0.85

    confusion = clf_report.normalized_confusion()
    # Clear detected best; purulent/mucoid confuse each other most
    # (paper: "Purulent and Mucoid states are prone to aliasing").
    diag = np.diag(confusion)
    assert diag[0] == diag.max()
    off = confusion - np.diag(diag)
    mucoid_purulent = confusion[2, 3] + confusion[3, 2]
    serous_purulent = confusion[1, 3] + confusion[3, 1]
    assert mucoid_purulent >= serous_purulent
