"""Bench for Fig. 14 — background-noise and body-movement robustness."""

import numpy as np
import pytest

from repro.experiments import fig14_noise_motion
from repro.experiments.fig14_noise_motion import Fig14Config
from repro.simulation.motion import MOVEMENT_PROFILES, Movement, motion_artifact
from repro.simulation.noise import ambient_noise


@pytest.fixture(scope="module")
def result(reduced_scale):
    return fig14_noise_motion.run(
        Fig14Config(scale=reduced_scale, sessions_per_state=2)
    )


@pytest.mark.experiment
def test_fig14ab_background_noise(benchmark, report, result):
    benchmark.group = "fig14"
    rng = np.random.default_rng(0)
    benchmark(ambient_noise, 96_000, 48_000.0, 60.0, rng)

    print()
    print(result.render())
    report(result.render())

    # Paper Fig. 14b: FRR rises with room level; error rates stay
    # single-digit-ish at the levels tested.
    assert result.frr_grows_with_noise
    for condition in result.noise_conditions:
        assert result.mean_frr(condition) < 0.25
        assert result.mean_far(condition) < 0.15


@pytest.mark.experiment
def test_fig14cd_body_movement(benchmark, result):
    benchmark.group = "fig14"
    rng = np.random.default_rng(0)
    profile = MOVEMENT_PROFILES[Movement.WALKING]
    benchmark(motion_artifact, profile, 96_000, 48_000.0, rng)

    # Paper Fig. 14c-d: sitting is safe; walking/nodding degrade.
    assert result.movement_hurts
    by_name = {c.name: c for c in result.movement_conditions}
    assert result.mean_frr(by_name["sit"]) < 0.12
    assert result.mean_frr(by_name["walking"]) >= result.mean_frr(by_name["sit"])
    assert result.mean_frr(by_name["nodding"]) >= result.mean_frr(by_name["sit"])
