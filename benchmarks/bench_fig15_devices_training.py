"""Bench for Fig. 15 — earphone hardware and training-size studies."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.evaluation import evaluate_split
from repro.experiments import fig15_devices_training
from repro.experiments.fig15_devices_training import Fig15Config


@pytest.fixture(scope="module")
def result(reduced_scale):
    return fig15_devices_training.run(Fig15Config(scale=reduced_scale))


@pytest.mark.experiment
def test_fig15a_devices(benchmark, report, result, feature_table):
    benchmark.group = "fig15"
    rng = np.random.default_rng(1)
    benchmark(evaluate_split, feature_table, 0.5, rng, DetectorConfig())

    print()
    print(result.render())
    report(result.render())

    # Paper Fig. 15a: every commercial earphone remains usable.
    assert result.all_devices_usable
    assert len(result.devices) == 4


@pytest.mark.experiment
def test_fig15b_training_size(benchmark, result, feature_table):
    benchmark.group = "fig15"
    rng = np.random.default_rng(2)
    benchmark(evaluate_split, feature_table, 0.25, rng, DetectorConfig())

    # Paper Fig. 15b: accuracy grows with training data and is already
    # strong at half the cohort.
    assert result.accuracy_grows_with_data
    by_fraction = {t.fraction: t.accuracy for t in result.training}
    assert by_fraction[0.5] > 0.7
    assert by_fraction[1.0] >= by_fraction[0.25] - 0.02
