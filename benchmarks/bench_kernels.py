"""Micro-benchmarks of the computational kernels.

Not tied to a specific paper figure: these track the cost of the DSP
and learning primitives everything else is built from, so performance
regressions surface independently of the experiment tables.
"""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import MeeDetector
from repro.features.laplacian import laplacian_scores
from repro.learning.kmeans import KMeans
from repro.signal.chirp import ChirpDesign, linear_chirp, matched_filter
from repro.signal.filters import butterworth_bandpass
from repro.signal.mfcc import MfccConfig, mfcc
from repro.signal.parity import autoconvolution, find_symmetry_candidates
from repro.signal.resample import upsample
from repro.signal.spectral import amplitude_spectrum, welch_psd


@pytest.fixture(scope="module")
def waveform(sample_recording):
    return sample_recording.waveform


@pytest.fixture(scope="module")
def event_signal(pipeline, sample_recording):
    filtered = pipeline.preprocess(sample_recording.waveform)
    events = pipeline.detect_chirp_events(filtered)
    return events[0].slice(filtered)


class TestSignalKernels:
    def test_bandpass_design(self, benchmark):
        benchmark.group = "kernels-signal"
        benchmark(butterworth_bandpass, 4, 15_000.0, 21_000.0, 48_000.0)

    def test_bandpass_filtering(self, benchmark, waveform):
        benchmark.group = "kernels-signal"
        design = butterworth_bandpass(4, 15_000.0, 21_000.0, 48_000.0)
        benchmark(design.apply, waveform)

    def test_matched_filter(self, benchmark, waveform):
        benchmark.group = "kernels-signal"
        benchmark(matched_filter, waveform, ChirpDesign())

    def test_upsample_8x(self, benchmark, event_signal):
        benchmark.group = "kernels-signal"
        benchmark(upsample, event_signal, 8)

    def test_autoconvolution(self, benchmark, event_signal):
        benchmark.group = "kernels-signal"
        work = upsample(event_signal, 8)
        benchmark(autoconvolution, work)

    def test_symmetry_candidates(self, benchmark, event_signal):
        benchmark.group = "kernels-signal"
        work = upsample(event_signal, 8)
        benchmark(find_symmetry_candidates, work, support=48)

    def test_amplitude_spectrum(self, benchmark, waveform):
        benchmark.group = "kernels-signal"
        benchmark(amplitude_spectrum, waveform, 48_000.0)

    def test_welch_psd(self, benchmark, waveform):
        benchmark.group = "kernels-signal"
        benchmark(welch_psd, waveform, 48_000.0, segment_length=512)

    def test_mfcc(self, benchmark):
        benchmark.group = "kernels-signal"
        rng = np.random.default_rng(0)
        segment = rng.standard_normal(512)
        config = MfccConfig(
            sample_rate=384_000.0,
            frame_length=256,
            frame_hop=128,
            nfft=1024,
            low_hz=15_000.0,
            high_hz=21_000.0,
        )
        benchmark(mfcc, segment, config)

    def test_chirp_synthesis(self, benchmark):
        benchmark.group = "kernels-signal"
        benchmark(linear_chirp, ChirpDesign())


class TestLearningKernels:
    def test_kmeans_fit(self, benchmark, feature_table):
        benchmark.group = "kernels-learning"
        data = feature_table.features[:, :25]

        def fit():
            return KMeans(num_clusters=16, num_restarts=3, seed=0).fit(data)

        benchmark(fit)

    def test_laplacian_scores(self, benchmark, feature_table):
        benchmark.group = "kernels-learning"
        benchmark(laplacian_scores, feature_table.features)

    def test_detector_fit(self, benchmark, feature_table):
        benchmark.group = "kernels-learning"

        def fit():
            return MeeDetector(DetectorConfig()).fit(
                feature_table.features, feature_table.states
            )

        benchmark(fit)

    def test_detector_predict(self, benchmark, feature_table):
        benchmark.group = "kernels-learning"
        detector = MeeDetector(DetectorConfig()).fit(
            feature_table.features, feature_table.states
        )
        benchmark(detector.predict_indices, feature_table.features)


class TestBatchedVsSerial:
    """Planned/batched kernels head-to-head with their serial oracles.

    Same ``benchmark.group`` per pair, so ``pytest-benchmark``'s
    comparison table shows the speedup directly; the JSON trajectory of
    the same pairs lives in ``python -m repro.bench``'s BENCH_*.json.
    """

    def test_welch_batched(self, benchmark, waveform):
        benchmark.group = "batched-welch"
        benchmark(welch_psd, waveform, 48_000.0, segment_length=512)

    def test_welch_serial(self, benchmark, waveform):
        from repro.signal.spectral import welch_psd_reference

        benchmark.group = "batched-welch"
        benchmark(welch_psd_reference, waveform, 48_000.0, segment_length=512)

    def test_mfcc_batched(self, benchmark):
        benchmark.group = "batched-mfcc"
        rng = np.random.default_rng(0)
        segment = rng.standard_normal(4096)
        benchmark(mfcc, segment, _BATCH_MFCC_CONFIG)

    def test_mfcc_serial(self, benchmark):
        from repro.signal.mfcc import mfcc_reference

        benchmark.group = "batched-mfcc"
        rng = np.random.default_rng(0)
        segment = rng.standard_normal(4096)
        benchmark(mfcc_reference, segment, _BATCH_MFCC_CONFIG)

    def test_correlation_matrix_batched(self, benchmark):
        from repro.signal.correlation import correlation_matrix

        benchmark.group = "batched-correlation"
        rng = np.random.default_rng(1)
        curves = rng.standard_normal((48, 256))
        benchmark(correlation_matrix, curves)

    def test_correlation_matrix_serial(self, benchmark):
        from repro.signal.correlation import correlation_matrix_reference

        benchmark.group = "batched-correlation"
        rng = np.random.default_rng(1)
        curves = rng.standard_normal((48, 256))
        benchmark(correlation_matrix_reference, curves)

    def test_laplacian_batched(self, benchmark, feature_table):
        benchmark.group = "batched-laplacian"
        benchmark(laplacian_scores, feature_table.features)

    def test_laplacian_serial(self, benchmark, feature_table):
        from repro.features.laplacian import laplacian_scores_reference

        benchmark.group = "batched-laplacian"
        benchmark(laplacian_scores_reference, feature_table.features)

    def test_synthesize_train_batched(self, benchmark, study_channel):
        from repro.simulation.session import SessionConfig, _synthesize_train

        benchmark.group = "batched-synthesis"
        config = SessionConfig()
        benchmark(
            lambda: _synthesize_train(study_channel, config, np.random.default_rng(0))
        )

    def test_synthesize_train_serial(self, benchmark, study_channel):
        from repro.simulation.session import SessionConfig, _synthesize_train_reference

        benchmark.group = "batched-synthesis"
        config = SessionConfig()
        benchmark(
            lambda: _synthesize_train_reference(
                study_channel, config, np.random.default_rng(0)
            )
        )


_BATCH_MFCC_CONFIG = MfccConfig(
    sample_rate=384_000.0,
    frame_length=256,
    frame_hop=128,
    nfft=1024,
    low_hz=15_000.0,
    high_hz=21_000.0,
)


@pytest.fixture(scope="module")
def study_channel():
    """One representative multipath channel for synthesis benchmarks."""
    from repro.acoustics.ear import InsertionState, build_ear_channel
    from repro.simulation.participant import sample_participant

    rng = np.random.default_rng(0)
    participant = sample_participant(rng, "BENCH")
    insertion = InsertionState(depth_m=0.004, angle_deg=0.0, seal_quality=0.95)
    load = participant.load_on(0.0, rng)
    return build_ear_channel(
        participant.geometry, participant.drum_model, load, insertion
    )
