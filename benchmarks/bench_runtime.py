"""Bench for the batch runtime: parallel speedup and cache economics.

Not tied to a paper figure: this tracks the throughput of the execution
layer itself — serial vs parallel ``extract_features`` (recordings/sec)
and cold-vs-warm cache behaviour — so scaling regressions surface
independently of the science.  The summary is reported as JSON so the
numbers can be diffed across runs like the other ``bench_*`` outputs.
"""

import json
import os

import pytest

from repro.core.evaluation import extract_features
from repro.experiments.common import build_study
from repro.runtime import BatchExecutor, FeatureCache, RuntimeMetrics

#: Worker count for the parallel benches (bounded: CI runners are small).
WORKERS = min(4, os.cpu_count() or 1)


@pytest.fixture(scope="module")
def runtime_study(reduced_scale):
    """A reduced study: the runtime bench times execution, not science."""
    return build_study(reduced_scale)


@pytest.fixture(scope="module")
def recordings(runtime_study):
    return list(runtime_study.recordings)


@pytest.mark.experiment
def test_runtime_serial_throughput(benchmark, pipeline, recordings):
    benchmark.group = "runtime-throughput"
    executor = BatchExecutor(pipeline, workers=1)
    result = benchmark.pedantic(
        executor.run, args=(recordings,), rounds=1, iterations=1
    )
    assert result.ok_count + result.failed_count == len(recordings)


@pytest.mark.experiment
def test_runtime_parallel_throughput(benchmark, pipeline, recordings):
    benchmark.group = "runtime-throughput"
    executor = BatchExecutor(pipeline, workers=WORKERS)
    result = benchmark.pedantic(
        executor.run, args=(recordings,), rounds=1, iterations=1
    )
    assert result.ok_count + result.failed_count == len(recordings)


@pytest.mark.experiment
def test_runtime_cold_cache(benchmark, pipeline, recordings):
    benchmark.group = "runtime-cache"

    def cold_run():
        # Fresh cache every round: always pays the full DSP.
        executor = BatchExecutor(pipeline, cache=FeatureCache())
        return executor.run(recordings)

    benchmark.pedantic(cold_run, rounds=1, iterations=1)


@pytest.mark.experiment
def test_runtime_warm_cache(benchmark, pipeline, recordings):
    benchmark.group = "runtime-cache"
    executor = BatchExecutor(pipeline, cache=FeatureCache())
    executor.run(recordings)  # prime outside the timed region
    benchmark(executor.run, recordings)


@pytest.mark.experiment
def test_runtime_handoff_zero_copy(benchmark, recordings):
    """Parent-pack + worker-rebuild of one chunk through shared memory."""
    from repro.runtime import shm

    benchmark.group = "runtime-handoff"
    if not shm.shared_memory_available():
        pytest.skip("no shared memory on this host")
    arena = shm.WaveformArena(RuntimeMetrics())

    def handoff():
        payload, segment = arena.share_chunk(recordings)
        rebuilt = shm.materialize_chunk(payload)
        count = len(rebuilt)
        rebuilt = None
        shm.release_attachments()
        arena.release(segment)
        return count

    try:
        assert benchmark(handoff) == len(recordings)
    finally:
        arena.close()


@pytest.mark.experiment
def test_runtime_handoff_pickled(benchmark, recordings):
    """The same chunk pickled through a real multiprocessing pipe."""
    import multiprocessing
    import threading

    benchmark.group = "runtime-handoff"
    send_end, recv_end = multiprocessing.Pipe()

    def handoff():
        received = []
        reader = threading.Thread(target=lambda: received.append(recv_end.recv()))
        reader.start()
        send_end.send(recordings)
        reader.join()
        return len(received[0])

    try:
        assert benchmark(handoff) == len(recordings)
    finally:
        send_end.close()
        recv_end.close()


@pytest.mark.experiment
def test_runtime_shape_and_report(benchmark, report, pipeline, recordings):
    """Assert the runtime's economic claims and emit the JSON summary."""
    benchmark.group = "runtime-cache"

    def timed(func):
        import time

        t0 = time.perf_counter()
        out = func()
        return out, time.perf_counter() - t0

    serial_metrics = RuntimeMetrics()
    _, serial_s = timed(
        lambda: extract_features(
            recordings, pipeline, metrics=serial_metrics
        )
    )

    parallel_metrics = RuntimeMetrics()
    _, parallel_s = timed(
        lambda: extract_features(
            recordings, pipeline, workers=WORKERS, metrics=parallel_metrics
        )
    )

    cache = FeatureCache()
    cold_metrics = RuntimeMetrics()
    _, cold_s = timed(
        lambda: BatchExecutor(pipeline, cache=cache, metrics=cold_metrics).run(
            recordings
        )
    )
    warm_metrics = RuntimeMetrics()
    warm_result, warm_s = timed(
        lambda: BatchExecutor(pipeline, cache=cache, metrics=warm_metrics).run(
            recordings
        )
    )
    benchmark(lambda: warm_metrics.cache_hit_rate)

    n = len(recordings)
    summary = {
        "experiment": "runtime",
        "recordings": n,
        "workers": WORKERS,
        "serial_rec_per_s": round(n / serial_s, 2),
        "parallel_rec_per_s": round(n / parallel_s, 2),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "cold_rec_per_s": round(n / cold_s, 2),
        "warm_rec_per_s": round(n / warm_s, 2),
        "warm_speedup": round(cold_s / warm_s, 2),
        "warm_cache_hit_rate": warm_metrics.cache_hit_rate,
        "warm_pipeline_calls": warm_metrics.counter("pipeline.calls"),
    }
    text = json.dumps(summary, indent=2)
    print()
    print(text)
    report(text)

    # Shape claims: the warm cache must eliminate DSP work entirely for
    # the cacheable recordings, and be far faster than a cold run.
    ok = warm_result.ok_count
    assert warm_metrics.counter("cache.hits") == ok
    failed = warm_result.failed_count
    assert warm_metrics.counter("pipeline.calls") == failed
    if failed == 0:
        assert warm_s < cold_s / 10.0
