"""Bench for Table I — accuracy vs earphone wearing angle."""

import pytest

from repro.experiments import table1_angle
from repro.experiments.table1_angle import Table1Config


@pytest.fixture(scope="module")
def result(reduced_scale):
    return table1_angle.run(Table1Config(scale=reduced_scale, sessions_per_state=2))


@pytest.mark.experiment
def test_table1_angle_sweep(benchmark, report, result, pipeline, sample_recording):
    benchmark.group = "table1"
    benchmark(pipeline.process, sample_recording)

    print()
    print(result.render())
    report(result.render())

    accuracies = [c.accuracy for c in result.conditions]
    # Paper Table I shape: best at 0 degrees, worst at 40, graceful
    # decline in between (92.8 -> 86.4).
    assert result.declines_with_angle
    assert accuracies[0] > 0.85
    assert accuracies[-1] > 0.6
    assert accuracies[0] - accuracies[-1] < 0.3
