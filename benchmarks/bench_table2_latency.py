"""Bench for Table II — per-stage recognition latency.

Here the pytest-benchmark timings ARE the experiment: each stage of the
on-device pipeline is benchmarked separately, mirroring the paper's
band-pass / feature-extraction / inference decomposition.
"""

import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import MeeDetector
from repro.experiments import table2_3_system


@pytest.fixture(scope="module")
def result():
    return table2_3_system.run()


@pytest.fixture(scope="module")
def fitted_detector(feature_table):
    detector = MeeDetector(DetectorConfig())
    detector.fit(feature_table.features, feature_table.states)
    return detector


@pytest.mark.experiment
def test_table2_bandpass_latency(benchmark, pipeline, sample_recording):
    benchmark.group = "table2-latency"
    benchmark(pipeline.preprocess, sample_recording.waveform)


@pytest.mark.experiment
def test_table2_feature_latency(benchmark, pipeline, sample_recording):
    benchmark.group = "table2-latency"
    benchmark(pipeline.process, sample_recording)


@pytest.mark.experiment
def test_table2_inference_latency(benchmark, fitted_detector, feature_table):
    benchmark.group = "table2-latency"
    vector = feature_table.features[:1]
    benchmark(fitted_detector.predict_indices, vector)


@pytest.mark.experiment
def test_table2_stage_shape(benchmark, report, result):
    benchmark.group = "table2-latency"
    benchmark(lambda: result.latencies.total_ms)

    print()
    print(result.render())
    report(result.render())

    # Paper Table II shape: feature extraction dominates by >5x.
    assert result.feature_extraction_dominates
    assert result.latencies.inference_ms < result.latencies.feature_extract_ms
