"""Bench for Table III — smartphone power during detection."""

import pytest

from repro.experiments import table2_3_system
from repro.simulation.hardware import SMARTPHONE_PROFILES, estimate_power_mw


@pytest.fixture(scope="module")
def result():
    return table2_3_system.run()


@pytest.mark.experiment
def test_table3_power(benchmark, report, result):
    benchmark.group = "table3"
    profile = SMARTPHONE_PROFILES["Huawei"]
    benchmark(estimate_power_mw, profile, result.latencies)

    print()
    print(result.render())
    report(result.render())

    # Paper Table III: all phones around 2.1-2.24 W, ordered
    # Huawei < Galaxy < MI 10.
    assert result.power_ordering_matches_paper
    for name, power in result.power_mw.items():
        assert 1_800.0 < power < 2_600.0, name
