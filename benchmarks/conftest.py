"""Shared fixtures for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper.
The expensive part — simulating the study and extracting features — runs
once per session here; the ``benchmark`` fixture then times a
representative computational kernel of each experiment, and the test
body prints the paper-vs-measured comparison table and asserts the
*shape* claims (who wins, orderings, trends).

Scale is controlled by ``EARSONAR_SCALE`` (``small`` / ``default`` /
``paper`` or a participant count); the default keeps the whole
``pytest benchmarks/ --benchmark-only`` run in the tens of minutes.
"""

from __future__ import annotations

import pytest

from repro.core.config import EarSonarConfig
from repro.core.evaluation import extract_features
from repro.core.pipeline import EarSonarPipeline
from repro.experiments.common import ExperimentScale, build_study, scale_from_env


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment: marks benchmark tests that print experiment tables"
    )


#: Rendered paper-vs-measured tables, echoed after the benchmark
#: summary so they survive pytest's output capturing (no -s needed).
_EXPERIMENT_REPORTS: list[str] = []


@pytest.fixture(scope="session")
def report():
    """Collect a rendered experiment table for the terminal summary."""

    def _add(text: str) -> None:
        _EXPERIMENT_REPORTS.append(text)

    return _add


def pytest_terminal_summary(terminalreporter):
    if not _EXPERIMENT_REPORTS:
        return
    terminalreporter.section("experiment reports (paper vs measured)")
    for text in _EXPERIMENT_REPORTS:
        terminalreporter.write_line(text)
        terminalreporter.write_line("")


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The run's experiment scale (env-controlled)."""
    return scale_from_env()


@pytest.fixture(scope="session")
def reduced_scale(scale) -> ExperimentScale:
    """A cheaper scale for the multi-condition sweep benches."""
    return ExperimentScale(
        num_participants=max(6, scale.num_participants * 5 // 8),
        total_days=scale.total_days,
        sessions_per_day=1,
        duration_s=scale.duration_s,
        seed=scale.seed,
    )


@pytest.fixture(scope="session")
def pipeline() -> EarSonarPipeline:
    """Shared default pipeline."""
    return EarSonarPipeline(EarSonarConfig())


@pytest.fixture(scope="session")
def study(scale):
    """The standard-condition study, simulated once per run."""
    return build_study(scale)


@pytest.fixture(scope="session")
def feature_table(study, pipeline):
    """Features of the standard study, extracted once per run."""
    return extract_features(study, pipeline)


@pytest.fixture(scope="session")
def sample_recording(study):
    """One representative recording for kernel timings."""
    return study.recordings[0]
