#!/usr/bin/env python
"""Clinical screening study: reproduce the paper's LOOCV evaluation.

Simulates a configurable cohort, runs the full EarSonar pipeline over
every recording, evaluates with leave-one-participant-out
cross-validation, and prints per-state precision/recall/F1 plus the
confusion matrix — the paper's Fig. 13.

Usage::

    python examples/clinical_screening.py [num_participants]

Defaults to 12 participants (~3 minutes); the paper's scale is 112.
"""

from __future__ import annotations

import sys
import time

from repro.core.config import DetectorConfig
from repro.experiments.common import ExperimentScale, build_feature_table
from repro.experiments.fig13_overall import run_on_table


def main() -> None:
    num_participants = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    scale = ExperimentScale(
        num_participants=num_participants,
        total_days=10,
        sessions_per_day=1,
        duration_s=2.0,
    )
    print(
        f"Simulating {scale.num_recordings} recordings "
        f"({scale.num_participants} children x {scale.total_days} days)..."
    )
    t0 = time.time()
    table = build_feature_table(scale)
    print(f"  pipeline processed {len(table)} recordings in {time.time() - t0:.0f}s "
          f"({table.num_failed} failed)")

    print("Running leave-one-participant-out cross-validation...")
    t0 = time.time()
    result = run_on_table(table, DetectorConfig())
    print(f"  done in {time.time() - t0:.0f}s\n")
    print(result.render())


if __name__ == "__main__":
    main()
