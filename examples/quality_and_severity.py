#!/usr/bin/env python
"""Quality gating and continuous severity — the extensions.

Two capabilities beyond the paper's discrete grading:

1. **recording-quality diagnostics** — detect unusable captures (loud
   room, walking child, bad seal) *before* screening, instead of
   silently mis-grading;
2. **continuous severity** — regress the cavity fill fraction from the
   same feature vector, tracking drainage between discrete grades.

Usage::

    python examples/quality_and_severity.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    EarSonarPipeline,
    SeverityEstimator,
    diagnose,
    extract_features,
)
from repro.simulation import (
    Movement,
    SessionConfig,
    StudyDesign,
    build_cohort,
    record_session,
    sample_participant,
    simulate_study,
)


def main() -> None:
    rng = np.random.default_rng(11)
    pipeline = EarSonarPipeline()
    child = sample_participant(rng, "CHILD")

    # --- 1. Quality gate ------------------------------------------------
    print("Recording-quality gate:")
    conditions = [
        ("quiet, sitting", SessionConfig(duration_s=0.5)),
        ("70 dB room", SessionConfig(duration_s=0.5, noise_spl_db=70.0)),
        ("walking", SessionConfig(duration_s=0.5, movement=Movement.WALKING)),
    ]
    for name, session in conditions:
        recording = record_session(child, 1.5, session, rng)
        quality = diagnose(recording, pipeline)
        verdict = "usable" if quality.usable else "RE-MEASURE"
        print(
            f"  {name:16s} SNR {quality.snr_db:5.1f} dB, "
            f"yield {100 * quality.echo_yield:3.0f}%, "
            f"stability {quality.curve_stability:.2f} -> {verdict}"
        )
        for issue in quality.issues():
            print(f"      - {issue}")

    # --- 2. Continuous severity ------------------------------------------
    print("\nContinuous severity (fill-fraction regression):")
    cohort = build_cohort(8, rng, total_days=10)
    design = StudyDesign(
        total_days=10, sessions_per_day=1, session_config=SessionConfig(duration_s=1.0)
    )
    study = simulate_study(cohort, design, rng)
    table = extract_features(study, pipeline)
    fills = {
        (r.participant_id, r.day): r.fill_fraction for r in study.recordings
    }
    targets = np.array([fills[(p.participant_id, p.day)] for p in table.processed])
    estimator = SeverityEstimator().fit(table.features, targets)
    print(f"  training MAE: {estimator.score_mae(table.features, targets):.3f}")

    session = SessionConfig(duration_s=1.0)
    print("  tracking drainage for a new child:")
    for day in (0.5, 4.5, 8.5, 12.5, 16.5, 19.5):
        recording = record_session(child, day, session, rng)
        processed = pipeline.process(recording)
        predicted = float(estimator.predict(processed.features)[0])
        true = recording.fill_fraction
        bar = "#" * int(round(20 * predicted))
        print(
            f"    day {day:4.1f}: fill {predicted:4.2f} (true {true:4.2f}) "
            f"|{bar:<20s}| {recording.state.value}"
        )


if __name__ == "__main__":
    main()
