#!/usr/bin/env python
"""Quickstart: train EarSonar on a virtual clinic, screen a new child.

Runs in about a minute on a laptop.  The flow mirrors the paper's
deployment story: calibrate once on a labelled reference study, then
screen individual earphone recordings at home.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import EarSonarScreener
from repro.simulation import (
    SessionConfig,
    StudyDesign,
    build_cohort,
    record_session,
    sample_participant,
    simulate_study,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. A small reference study: 8 children followed for 8 days, one
    #    one-second recording per day (the paper uses 112 children x 20
    #    days x 2 sessions of 10 s; scale up freely).
    print("Simulating reference study (8 children x 8 days)...")
    cohort = build_cohort(8, rng, total_days=8)
    design = StudyDesign(
        total_days=8,
        sessions_per_day=1,
        session_config=SessionConfig(duration_s=1.0),
    )
    study = simulate_study(cohort, design, rng)
    print(f"  {len(study)} recordings; per state: "
          f"{ {s.value: n for s, n in study.state_counts().items()} }")

    # 2. Calibrate the screener: band-pass -> event detection -> parity
    #    echo segmentation -> absorption features -> in-group k-means.
    print("Fitting the EarSonar screener...")
    screener = EarSonarScreener().fit(study)

    # 3. Screen a brand-new child on three days of their illness.
    patient = sample_participant(rng, "NEW-PATIENT")
    session = SessionConfig(duration_s=1.0)
    print(f"Screening {patient.participant_id} "
          f"(true recovery day: {patient.trajectory.recovery_day})")
    for day in (0.5, 8.5, 19.5):
        recording = record_session(patient, day, session, rng)
        result = screener.screen(recording)
        marker = "OK " if result.state is recording.state else "MISS"
        print(
            f"  day {day:4.1f}: predicted {result.state.value:8s} "
            f"(true {recording.state.value:8s}, "
            f"confidence {result.confidence:.2f}) [{marker}]"
        )

    # 4. The binary home-screening question: does the child need a doctor?
    recording = record_session(patient, 0.5, session, rng)
    result = screener.screen(recording)
    print(
        "Effusion present:" if result.has_effusion else "Ear looks clear:",
        f"severity grade {result.severity}/3",
    )


if __name__ == "__main__":
    main()
