#!/usr/bin/env python
"""Recovery tracking: monitor a child's middle ear through an OM episode.

The paper's home-use vision (Sec. I): parents run a measurement twice a
day and watch the effusion grade fall as the ear drains.  This example
follows one child from admission to discharge, screening every day and
plotting (in text) the predicted severity against the ground truth —
the paper's Fig. 10 scenario, driven through the public screening API.

Usage::

    python examples/recovery_tracking.py
"""

from __future__ import annotations

import numpy as np

from repro import EarSonarScreener
from repro.simulation import (
    MeeState,
    SessionConfig,
    StudyDesign,
    build_cohort,
    record_session,
    sample_participant,
    simulate_study,
)

SEVERITY_BAR = {0: "", 1: "#", 2: "##", 3: "###"}


def main() -> None:
    rng = np.random.default_rng(4)

    print("Calibrating screener on a reference study...")
    cohort = build_cohort(8, rng, total_days=10)
    design = StudyDesign(
        total_days=10,
        sessions_per_day=1,
        session_config=SessionConfig(duration_s=1.5),
    )
    screener = EarSonarScreener().fit(simulate_study(cohort, design, rng))

    child = sample_participant(rng, "OM-CASE", total_days=20)
    p_end, m_end, s_end = child.trajectory.stage_boundaries
    print(
        f"\nTracking {child.participant_id}: purulent until day {p_end}, "
        f"mucoid until {m_end}, serous until {s_end}, then clear\n"
    )
    session = SessionConfig(duration_s=1.5)
    print(f"{'day':>4}  {'true state':12} {'predicted':12} {'conf':>5}  severity")
    correct = 0
    days = np.arange(0.5, 20.0, 1.0)
    alerts_resolved_day = None
    for day in days:
        recording = record_session(child, float(day), session, rng)
        result = screener.screen(recording)
        hit = result.state is recording.state
        correct += hit
        if not result.has_effusion and alerts_resolved_day is None:
            alerts_resolved_day = day
        print(
            f"{day:4.1f}  {recording.state.value:12} {result.state.value:12} "
            f"{result.confidence:5.2f}  {SEVERITY_BAR[result.severity]:3} "
            f"{'' if hit else '  <- disagrees with otoscope'}"
        )
    print(f"\nagreement with ground truth: {correct}/{len(days)}")
    if alerts_resolved_day is not None:
        print(
            f"screener first reported a clear ear on day {alerts_resolved_day:.1f} "
            f"(clinical recovery day: {child.trajectory.recovery_day})"
        )


if __name__ == "__main__":
    main()
