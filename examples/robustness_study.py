#!/usr/bin/env python
"""Robustness study: wearing angle, room noise, and body movement.

Reproduces a compact version of the paper's Sec. VI-C ("Impact
Quantification"): train under the standard condition, then stress the
screener with misplaced earbuds, loud rooms, and fidgeting children.

Usage::

    python examples/robustness_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DetectorConfig, EarSonarConfig
from repro.core.detector import MeeDetector
from repro.core.pipeline import EarSonarPipeline
from repro.experiments.common import ExperimentScale, build_feature_table
from repro.experiments.conditions import evaluate_condition
from repro.simulation import Movement, SessionConfig, build_cohort


def main() -> None:
    scale = ExperimentScale(
        num_participants=8, total_days=10, sessions_per_day=1, duration_s=1.5
    )
    print(f"Training on {scale.num_recordings} standard-condition recordings...")
    table = build_feature_table(scale)
    detector = MeeDetector(DetectorConfig()).fit(table.features, table.states)
    pipeline = EarSonarPipeline(EarSonarConfig())
    cohort = build_cohort(
        scale.num_participants,
        np.random.default_rng(scale.seed),
        total_days=scale.total_days,
    )

    def sweep(title, sessions):
        print(f"\n{title}")
        for name, session in sessions:
            rng = np.random.default_rng(99)  # common random numbers
            outcome = evaluate_condition(
                name, detector, pipeline, cohort, session, rng,
                total_days=scale.total_days, sessions_per_state=2,
            )
            print(
                f"  {name:10s} accuracy {100 * outcome.accuracy:5.1f}%  "
                f"({outcome.num_rejected} rejected)"
            )

    sweep(
        "Wearing angle (paper Table I: 92.8% -> 86.4%):",
        [
            (f"{a:.0f} deg", SessionConfig(duration_s=scale.duration_s, angle_deg=a))
            for a in (0.0, 20.0, 40.0)
        ],
    )
    sweep(
        "Room noise (paper Fig. 14: errors grow, stay below ~8%):",
        [
            (f"{spl:.0f} dB", SessionConfig(duration_s=scale.duration_s, noise_spl_db=spl))
            for spl in (25.0, 45.0, 60.0)
        ],
    )
    sweep(
        "Body movement (paper Fig. 14: sit ~ head < walking/nodding):",
        [
            (m.value, SessionConfig(duration_s=scale.duration_s, movement=m))
            for m in (Movement.SIT, Movement.HEAD, Movement.WALKING, Movement.NODDING)
        ],
    )
    print("\nRecommendation matches the paper's: measure seated, in a quiet room.")


if __name__ == "__main__":
    main()
