"""Setup shim for legacy editable installs (offline environments)."""
from setuptools import setup

setup()
