"""EarSonar reproduction: acoustic middle-ear-effusion detection.

A full-system reproduction of *EarSonar: An Acoustic Signal-Based
Middle-Ear Effusion Detection Using Earphones* (ICDCS 2023) — the
FMCW probing pipeline, parity-decomposition echo segmentation,
absorption-spectrum features, k-means effusion grading, a physics-based
virtual clinic standing in for the unavailable clinical dataset, the
Chan-et-al.-2019 baseline, and the paper's full evaluation suite.

Quick start::

    import numpy as np
    from repro import EarSonarScreener
    from repro.simulation import (
        StudyDesign, build_cohort, simulate_study, record_session,
        SessionConfig, sample_participant,
    )

    rng = np.random.default_rng(0)
    cohort = build_cohort(8, rng)
    study = simulate_study(cohort, StudyDesign(total_days=8), rng)
    screener = EarSonarScreener().fit(study)

    patient = sample_participant(rng, "NEW")
    result = screener.screen(record_session(patient, 0.5, SessionConfig(), rng))
    print(result.state, result.confidence)
"""

from . import (
    acoustics,
    baselines,
    core,
    experiments,
    features,
    io,
    learning,
    runtime,
    signal,
    simulation,
)
from .core import (
    EarSonarConfig,
    EarSonarPipeline,
    EarSonarScreener,
    MeeDetector,
    evaluate_loocv,
    extract_features,
)
from .errors import (
    ConfigurationError,
    EarSonarError,
    ModelError,
    NoEchoFoundError,
    NotFittedError,
    SignalProcessingError,
    SimulationError,
)
from .simulation import MeeState

__version__ = "1.0.0"

__all__ = [
    "acoustics",
    "baselines",
    "core",
    "experiments",
    "features",
    "io",
    "learning",
    "runtime",
    "signal",
    "simulation",
    "EarSonarConfig",
    "EarSonarPipeline",
    "EarSonarScreener",
    "MeeDetector",
    "evaluate_loocv",
    "extract_features",
    "ConfigurationError",
    "EarSonarError",
    "ModelError",
    "NoEchoFoundError",
    "NotFittedError",
    "SignalProcessingError",
    "SimulationError",
    "MeeState",
    "__version__",
]
