"""EarSonar reproduction: acoustic middle-ear-effusion detection.

A full-system reproduction of *EarSonar: An Acoustic Signal-Based
Middle-Ear Effusion Detection Using Earphones* (ICDCS 2023) — the
FMCW probing pipeline, parity-decomposition echo segmentation,
absorption-spectrum features, k-means effusion grading, a physics-based
virtual clinic standing in for the unavailable clinical dataset, the
Chan-et-al.-2019 baseline, and the paper's full evaluation suite.

Quick start (``smoke`` below is this, packaged)::

    import numpy as np
    from repro import EarSonarScreener
    from repro.simulation import (
        StudyDesign, build_cohort, simulate_study, record_session,
        SessionConfig, sample_participant,
    )

    seed = 0  # any seed; every stage downstream is deterministic in it
    rng = np.random.default_rng(seed)
    cohort = build_cohort(8, rng)
    study = simulate_study(cohort, StudyDesign(total_days=8), rng)
    screener = EarSonarScreener().fit(study)

    patient = sample_participant(rng, "NEW")
    result = screener.screen(record_session(patient, 0.5, SessionConfig(), rng))
    print(result.state, result.confidence)
"""

from . import (
    acoustics,
    baselines,
    core,
    experiments,
    features,
    io,
    learning,
    qa,
    runtime,
    signal,
    simulation,
)
from .core import (
    EarSonarConfig,
    EarSonarPipeline,
    EarSonarScreener,
    MeeDetector,
    evaluate_loocv,
    extract_features,
)
from .errors import (
    ConfigurationError,
    EarSonarError,
    ModelError,
    NoEchoFoundError,
    NotFittedError,
    SignalProcessingError,
    SimulationError,
)
from .core.results import ScreeningResult
from .simulation import MeeState

__version__ = "1.0.0"


def smoke(
    seed: int = 0,
    *,
    participants: int = 8,
    total_days: int = 8,
    duration_s: float = 0.5,
) -> ScreeningResult:
    """Run the quick-start end to end and return the screening result.

    The package's smoke path: simulates a small seeded study, fits a
    screener on it, then screens one held-out participant.  ``seed``
    drives every stochastic component — two calls with the same
    arguments return identical results, and different seeds exercise
    different virtual cohorts.

    Parameters
    ----------
    seed:
        Seed for the study simulation and all downstream learning.
    participants:
        Cohort size of the reference study.
    total_days:
        Follow-up days simulated per participant (>= 8 covers all four
        effusion states of the recovery trajectory).
    duration_s:
        Recording length per session, in seconds.
    """
    import numpy as np

    from .simulation import (
        SessionConfig,
        StudyDesign,
        build_cohort,
        record_session,
        sample_participant,
        simulate_study,
    )

    rng = np.random.default_rng(seed)
    cohort = build_cohort(participants, rng, total_days=total_days)
    study = simulate_study(cohort, StudyDesign(total_days=total_days), rng)
    screener = EarSonarScreener().fit(study)

    patient = sample_participant(rng, "NEW")
    recording = record_session(patient, 0.5, SessionConfig(duration_s=duration_s), rng)
    return screener.screen(recording)

__all__ = [
    "acoustics",
    "baselines",
    "core",
    "experiments",
    "features",
    "io",
    "learning",
    "qa",
    "runtime",
    "signal",
    "simulation",
    "smoke",
    "EarSonarConfig",
    "EarSonarPipeline",
    "EarSonarScreener",
    "MeeDetector",
    "evaluate_loocv",
    "extract_features",
    "ConfigurationError",
    "EarSonarError",
    "ModelError",
    "NoEchoFoundError",
    "NotFittedError",
    "SignalProcessingError",
    "SimulationError",
    "MeeState",
    "ScreeningResult",
    "__version__",
]
