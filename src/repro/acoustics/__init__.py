"""Acoustic physics substrate: media, impedance, absorption, propagation.

Implements the paper's theoretical model (Sec. II-A): characteristic
impedance, boundary reflectance, the thickness-impedance layer relation,
the resonant eardrum absorption dip, ear-canal geometry, and the
multipath speaker-to-microphone channel.
"""

from .absorption import EardrumReflectanceModel, EffusionLoad
from .ear import CANAL_SOUND_SPEED, EarCanalGeometry, InsertionState, build_ear_channel
from .impedance import (
    absorbed_fraction,
    characteristic_impedance,
    effusion_reflectance,
    layer_impedance,
    reflection_coefficient,
    transmission_coefficient,
)
from .media import AIR, MUCOID_FLUID, PURULENT_FLUID, SEROUS_FLUID, WATER, Medium
from .propagation import MultipathChannel, PropagationPath
from .reverb import (
    ReflectionTap,
    ReverbConfig,
    reverb_impulse_response,
    reverb_paths,
    reverb_taps,
)

__all__ = [
    "EardrumReflectanceModel",
    "EffusionLoad",
    "CANAL_SOUND_SPEED",
    "EarCanalGeometry",
    "InsertionState",
    "build_ear_channel",
    "absorbed_fraction",
    "characteristic_impedance",
    "effusion_reflectance",
    "layer_impedance",
    "reflection_coefficient",
    "transmission_coefficient",
    "AIR",
    "MUCOID_FLUID",
    "PURULENT_FLUID",
    "SEROUS_FLUID",
    "WATER",
    "Medium",
    "MultipathChannel",
    "PropagationPath",
    "ReflectionTap",
    "ReverbConfig",
    "reverb_impulse_response",
    "reverb_paths",
    "reverb_taps",
]
