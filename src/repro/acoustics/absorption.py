"""Frequency-dependent eardrum reflectance: the ~18 kHz acoustic dip.

The paper's empirical finding (Sec. II-B, Fig. 2) is that the probe
band's amplitude spectrum shows a pronounced *acoustic dip* near 18 kHz
whose depth, width, and centre track the middle-ear effusion state.
Physically this is the middle-ear resonance: fluid behind the drum

* **mass-loads** the drum, lowering the resonance frequency (denser
  fluid and fuller cavity shift the dip down),
* **raises absorption** at resonance (impedance mismatch, Eq. (1)-(2)),
* **broadens** the dip (viscous damping widens the resonance).

:class:`EardrumReflectanceModel` turns those three mechanisms into an
amplitude reflectance curve ``r(f)`` in (0, 1] that the multipath
channel applies to the eardrum path.  Constants are calibrated so the
simulated spectra match the paper's figures in shape: a clear ear keeps
a shallow dip; serous/mucoid/purulent ears darken and widen it in that
order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .media import AIR, WATER, Medium

__all__ = ["EffusionLoad", "EardrumReflectanceModel"]


@dataclass(frozen=True)
class EffusionLoad:
    """The fluid load behind an eardrum.

    Attributes
    ----------
    fluid:
        The effusion medium (serous / mucoid / purulent).
    fill_fraction:
        Fraction of the middle-ear cavity filled, in [0, 1].
    """

    fluid: Medium
    fill_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fill_fraction <= 1.0:
            raise ConfigurationError(
                f"fill_fraction must be in [0, 1], got {self.fill_fraction}"
            )


@dataclass(frozen=True)
class EardrumReflectanceModel:
    """Parametric reflectance of one ear's drum across the probe band.

    Attributes
    ----------
    base_reflectance:
        Broadband amplitude reflectance of the drum away from
        resonance; healthy drums reflect most of the 16-20 kHz energy.
    resonance_hz:
        The unloaded (clear-ear) middle-ear resonance; per-participant
        anatomy scatters this around 18 kHz.
    clear_dip_depth:
        Fractional dip depth with no effusion (healthy ears still
        absorb a little at resonance).
    clear_dip_width_hz:
        Half-width of the clear-ear resonance dip.
    max_extra_depth:
        Additional depth available to a fully loaded drum; total depth
        saturates at ``clear_dip_depth + max_extra_depth``.
    mass_shift_fraction:
        Maximal fractional downward shift of the resonance at full
        fill with a water-density fluid.
    """

    base_reflectance: float = 0.92
    resonance_hz: float = 18_200.0
    clear_dip_depth: float = 0.12
    clear_dip_width_hz: float = 650.0
    max_extra_depth: float = 0.72
    mass_shift_fraction: float = 0.075

    def __post_init__(self) -> None:
        if not 0.0 < self.base_reflectance <= 1.0:
            raise ConfigurationError(
                f"base_reflectance must be in (0, 1], got {self.base_reflectance}"
            )
        if self.resonance_hz <= 0:
            raise ConfigurationError(f"resonance_hz must be positive, got {self.resonance_hz}")
        if not 0.0 <= self.clear_dip_depth < 1.0:
            raise ConfigurationError(
                f"clear_dip_depth must be in [0, 1), got {self.clear_dip_depth}"
            )
        if self.clear_dip_depth + self.max_extra_depth >= 1.0:
            raise ConfigurationError("total dip depth must stay below 1")
        if self.clear_dip_width_hz <= 0:
            raise ConfigurationError("clear_dip_width_hz must be positive")

    # ------------------------------------------------------------------
    # Derived dip parameters
    # ------------------------------------------------------------------

    def dip_center_hz(self, load: EffusionLoad | None) -> float:
        """Resonance (dip centre) under the given load, in Hz.

        Mass loading: the shift scales with fill fraction and with the
        fluid's density relative to water.
        """
        if load is None or load.fill_fraction == 0.0:
            return self.resonance_hz
        density_ratio = load.fluid.density / WATER.density
        shift = self.mass_shift_fraction * load.fill_fraction * density_ratio
        return self.resonance_hz * (1.0 - shift)

    def dip_depth(self, load: EffusionLoad | None) -> float:
        """Fractional amplitude dip depth under the given load.

        Depth grows with fill fraction and the fluid/air impedance
        mismatch, saturating via ``tanh`` in the spirit of the paper's
        thickness-impedance relation (Eq. (2)).
        """
        if load is None or load.fill_fraction == 0.0:
            return self.clear_dip_depth
        impedance_ratio = load.fluid.impedance / WATER.impedance
        drive = 2.0 * load.fill_fraction * impedance_ratio
        return self.clear_dip_depth + self.max_extra_depth * float(np.tanh(drive))

    def dip_width_hz(self, load: EffusionLoad | None) -> float:
        """Dip half-width under the given load, in Hz.

        Viscous damping broadens the resonance; width grows with the
        logarithm of the viscosity ratio to water and with fill.
        """
        if load is None or load.fill_fraction == 0.0:
            return self.clear_dip_width_hz
        viscosity_ratio = load.fluid.viscosity / max(WATER.viscosity, 1e-9)
        broadening = 1.0 + 0.75 * np.log10(1.0 + viscosity_ratio) * load.fill_fraction
        return float(self.clear_dip_width_hz * broadening)

    # ------------------------------------------------------------------
    # Reflectance curves
    # ------------------------------------------------------------------

    def reflectance(
        self, frequencies_hz: np.ndarray, load: EffusionLoad | None = None
    ) -> np.ndarray:
        """Amplitude reflectance ``r(f)`` in (0, 1] at each frequency.

        The dip is Lorentzian — the lineshape of a damped resonance —
        centred at :meth:`dip_center_hz` with depth :meth:`dip_depth`
        and half-width :meth:`dip_width_hz`.
        """
        freqs = np.asarray(frequencies_hz, dtype=float)
        center = self.dip_center_hz(load)
        depth = self.dip_depth(load)
        width = self.dip_width_hz(load)
        lorentz = width**2 / ((freqs - center) ** 2 + width**2)
        r = self.base_reflectance * (1.0 - depth * lorentz)
        return np.clip(r, 0.02, 1.0)

    def absorbed_energy_fraction(
        self, frequencies_hz: np.ndarray, load: EffusionLoad | None = None
    ) -> np.ndarray:
        """Fraction of incident energy absorbed, ``1 - r(f)^2``."""
        r = self.reflectance(frequencies_hz, load)
        return 1.0 - r**2

    def air_reference(self) -> Medium:
        """The canal-side medium used for impedance comparisons."""
        return AIR
