"""Ear-canal geometry and in-ear channel construction.

Combines the anatomy (canal length 2-3.5 cm per the paper, citing
Keefe), the earphone insertion state (depth, wearing angle, seal), and
the eardrum reflectance model into the multipath channel of paper
Eq. (4)-(5): a strong direct speaker-to-mic path, canal-wall
reflections, the eardrum echo (the target), and a weak second-order
drum bounce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError
from .absorption import EardrumReflectanceModel, EffusionLoad
from .propagation import MultipathChannel, PropagationPath

if TYPE_CHECKING:  # circular-import-free annotation only
    from .reverb import ReverbConfig

__all__ = ["EarCanalGeometry", "InsertionState", "build_ear_channel"]

#: Speed of sound in the warm ear canal (m/s).
CANAL_SOUND_SPEED = 350.0


@dataclass(frozen=True)
class EarCanalGeometry:
    """Static anatomy of one ear canal.

    Attributes
    ----------
    length_m:
        Canal length from entrance to drum; 0.02-0.035 m in the paper's
        population (children 4-6 years sit at the lower end).
    radius_m:
        Mean canal radius; sets spreading loss of the drum echo.
    wall_reflectivity:
        Amplitude reflectance of the canal wall per bounce.
    """

    length_m: float = 0.025
    radius_m: float = 0.0035
    wall_reflectivity: float = 0.28

    def __post_init__(self) -> None:
        if not 0.01 <= self.length_m <= 0.05:
            raise ConfigurationError(
                f"canal length {self.length_m} m outside plausible 0.01-0.05 m"
            )
        if self.radius_m <= 0:
            raise ConfigurationError(f"radius_m must be positive, got {self.radius_m}")
        if not 0.0 <= self.wall_reflectivity < 1.0:
            raise ConfigurationError(
                f"wall_reflectivity must be in [0, 1), got {self.wall_reflectivity}"
            )


@dataclass(frozen=True)
class InsertionState:
    """How the earphone sits in the canal for one session.

    Attributes
    ----------
    depth_m:
        Insertion depth of the earbud tip into the canal.
    angle_deg:
        Wearing angle away from the canal axis; 0 is the paper's
        standard posture, experiments sweep 0-40 degrees.
    seal_quality:
        1.0 is a perfect silicone seal; lower values leak ambient noise
        and weaken the drum echo.
    """

    depth_m: float = 0.004
    angle_deg: float = 0.0
    seal_quality: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.depth_m <= 0.02:
            raise ConfigurationError(f"depth_m must be in [0, 0.02], got {self.depth_m}")
        if not 0.0 <= self.angle_deg <= 90.0:
            raise ConfigurationError(f"angle_deg must be in [0, 90], got {self.angle_deg}")
        if not 0.0 < self.seal_quality <= 1.0:
            raise ConfigurationError(
                f"seal_quality must be in (0, 1], got {self.seal_quality}"
            )

    @property
    def axial_alignment(self) -> float:
        """Cosine-law projection of the transducer onto the canal axis.

        An angled earbud points its beam at the canal wall instead of
        the drum; the drum-path gain decays with the angle while the
        wall paths strengthen (paper Sec. VI-C1).  The exponent is
        calibrated against Table I: the paper loses only ~6 points of
        accuracy at 40 degrees, so the coupling degrades gently (the
        canal itself wave-guides the beam toward the drum).
        """
        return float(np.cos(np.radians(self.angle_deg)))


def build_ear_channel(
    geometry: EarCanalGeometry,
    drum_model: EardrumReflectanceModel,
    load: EffusionLoad | None,
    insertion: InsertionState | None = None,
    *,
    sound_speed: float = CANAL_SOUND_SPEED,
    reverb: "ReverbConfig | None" = None,
) -> MultipathChannel:
    """Construct the speaker-to-microphone multipath channel of one ear.

    Paths (paper Eq. (5) splits the received sum into drum paths ``F``
    and canal/foreign-body paths ``C``):

    * **direct** — transducer front cavity, sub-millimetre acoustics;
      dominates the recording.
    * **canal walls** — two bounces at fractions of the free canal,
      stronger when the earbud is angled.
    * **eardrum** — the target echo: round trip over the free canal,
      amplitude shaped by the drum reflectance curve (the ~18 kHz dip).
    * **drum double bounce** — second-order reflection, twice the
      delay, reflectance squared.
    * **early reflections** (optional) — the seeded reverberation comb
      of :mod:`repro.acoustics.reverb`, appended only when ``reverb``
      is enabled; an absent or disabled config leaves the channel (and
      every downstream RNG draw) exactly as before.
    """
    insertion = insertion or InsertionState()
    free_len = max(geometry.length_m - insertion.depth_m, 0.005)
    align = insertion.axial_alignment
    misalign = 1.0 - align

    # Spreading + boundary loss of the drum echo: a longer, narrower
    # canal attenuates more.
    spreading = (0.02 / (free_len + 0.015)) ** 1.2

    # The prototype orients the extra microphone toward the eardrum
    # precisely "to facilitate the acquisition of echoes" (paper
    # Sec. V): the directional mic plus the sealing silicone tip
    # suppress the direct speaker-to-mic leak, so the drum echo is of
    # the same order as the direct component rather than buried 10 dB
    # beneath it.
    direct = PropagationPath(
        delay_s=0.0015 / sound_speed,
        gain=0.55,
        label="direct",
    )
    wall_a = PropagationPath(
        delay_s=2.0 * 0.35 * free_len / sound_speed,
        gain=geometry.wall_reflectivity * (0.55 + 0.2 * misalign),
        label="canal-wall-a",
    )
    wall_b = PropagationPath(
        delay_s=2.0 * 0.65 * free_len / sound_speed,
        gain=geometry.wall_reflectivity * (0.35 + 0.15 * misalign),
        label="canal-wall-b",
    )
    drum_gain = 1.25 * spreading * (0.75 + 0.25 * align) * insertion.seal_quality

    def drum_response(freqs: np.ndarray) -> np.ndarray:
        return drum_model.reflectance(freqs, load)

    eardrum = PropagationPath(
        delay_s=2.0 * free_len / sound_speed,
        gain=drum_gain,
        response=drum_response,
        label="eardrum",
    )

    def drum_response_sq(freqs: np.ndarray) -> np.ndarray:
        return drum_model.reflectance(freqs, load) ** 2

    double_bounce = PropagationPath(
        delay_s=4.0 * free_len / sound_speed,
        gain=drum_gain * geometry.wall_reflectivity * 0.35,
        response=drum_response_sq,
        label="eardrum-double",
    )
    paths = [direct, wall_a, wall_b, eardrum, double_bounce]
    if reverb is not None and reverb.enabled:
        from .reverb import reverb_paths

        paths.extend(
            reverb_paths(
                reverb,
                free_len,
                geometry.wall_reflectivity,
                sound_speed=sound_speed,
            )
        )
    return MultipathChannel(paths)
