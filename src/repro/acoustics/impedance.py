"""Impedance relations of paper Sec. II-A (Eq. (1)-(3)).

These functions are the quantitative backbone of the simulator: they
map media and effusion thickness to reflectance, which in turn shapes
the eardrum echo the DSP pipeline analyses.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .media import Medium

__all__ = [
    "characteristic_impedance",
    "reflection_coefficient",
    "transmission_coefficient",
    "absorbed_fraction",
    "layer_impedance",
    "effusion_reflectance",
]


def characteristic_impedance(medium: Medium) -> float:
    """``Z0 = rho0 * c0`` of a medium, in rayl."""
    return medium.impedance


def reflection_coefficient(z_from: float, z_to: float) -> float:
    """Pressure reflection coefficient at a normal-incidence boundary.

    Paper Eq. (1): ``R = (Z_to - Z_from) / (Z_to + Z_from)``.  (The
    paper's printed equation has a typo — identical numerator and
    denominator — the standard form is implemented here.)
    """
    if z_from <= 0 or z_to <= 0:
        raise ConfigurationError(f"impedances must be positive, got {z_from}, {z_to}")
    return (z_to - z_from) / (z_to + z_from)


def transmission_coefficient(z_from: float, z_to: float) -> float:
    """Pressure transmission coefficient ``T = 2 Z_to / (Z_to + Z_from)``."""
    if z_from <= 0 or z_to <= 0:
        raise ConfigurationError(f"impedances must be positive, got {z_from}, {z_to}")
    return 2.0 * z_to / (z_to + z_from)


def absorbed_fraction(z_from: float, z_to: float) -> float:
    """Fraction of incident *energy* not reflected at the boundary.

    Energy reflectance is ``R^2``; the remainder either transmits into
    or dissipates inside the far medium — from the microphone's point
    of view both are "absorbed".
    """
    r = reflection_coefficient(z_from, z_to)
    return 1.0 - r * r


def layer_impedance(
    thickness: float, permeability: float, dielectric: float, wavelength: float
) -> float:
    """Input impedance of a lossy backed layer, paper Eq. (2).

    ``Z = sqrt(mu / xi) * tanh(2 pi d sqrt(xi mu) / lambda)`` — the
    radar-absorber analogy the paper borrows from Rozanov: impedance
    grows monotonically with layer thickness ``d`` and saturates once
    the layer is acoustically thick.  All arguments must be positive.
    """
    if thickness < 0:
        raise ConfigurationError(f"thickness must be >= 0, got {thickness}")
    if permeability <= 0 or dielectric <= 0 or wavelength <= 0:
        raise ConfigurationError("permeability, dielectric and wavelength must be positive")
    return float(
        np.sqrt(permeability / dielectric)
        * np.tanh(2.0 * np.pi * thickness * np.sqrt(dielectric * permeability) / wavelength)
    )


def effusion_reflectance(fluid: Medium, air: Medium, fill_fraction: float) -> float:
    """Magnitude of the eardrum reflectance reduction due to effusion.

    Combines Eq. (1) and Eq. (2): the effective fluid layer thickness is
    proportional to the cavity fill fraction, the layer impedance grows
    with thickness (tanh saturation), and the boundary reflectance
    follows from the air/layer impedance mismatch.

    Returns the *energy absorption* fraction in [0, 1): 0 for an empty
    cavity, approaching the full-mismatch limit as the cavity fills.
    """
    if not 0.0 <= fill_fraction <= 1.0:
        raise ConfigurationError(f"fill_fraction must be in [0, 1], got {fill_fraction}")
    if fill_fraction == 0.0:
        return 0.0
    # Middle-ear cavity depth is ~ 2-4 mm front-to-back; the effective
    # fluid layer thickness scales with the fill fraction.
    cavity_depth_m = 3.0e-3
    thickness = cavity_depth_m * fill_fraction
    wavelength = fluid.wavelength(18_000.0)
    # Map the acoustic analogue onto Eq. (2): permeability ~ rho,
    # dielectric ~ 1 / (rho c^2) (compressibility), so sqrt(mu/xi) = Z0.
    permeability = fluid.density
    dielectric = 1.0 / (fluid.density * fluid.sound_speed**2)
    z_layer = layer_impedance(thickness, permeability, dielectric, wavelength)
    # Saturated layer -> full fluid impedance; reflectance of air against
    # the loaded drum rises toward 1, i.e. absorption of the *drum echo*
    # (which normally transmits and resonates) rises.
    r = abs(reflection_coefficient(air.impedance, air.impedance + z_layer))
    return float(r * r)
