"""Acoustic media and their bulk properties.

The paper's physical story (Sec. II-A) is impedance-driven: the
characteristic impedance ``Z0 = rho0 * c0`` of the fluid behind the
eardrum controls how much probe energy is absorbed rather than
reflected.  This module defines the media involved and literature-based
property values:

* air in the ear canal,
* the three clinical effusion fluids the paper distinguishes —
  *serous* (thin, watery), *mucoid* (thick, glue-ear), *purulent*
  (pus-laden) — whose density, sound speed and especially viscosity
  increase in that order.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["Medium", "AIR", "WATER", "SEROUS_FLUID", "MUCOID_FLUID", "PURULENT_FLUID"]


@dataclass(frozen=True)
class Medium:
    """A homogeneous acoustic medium.

    Attributes
    ----------
    name:
        Human-readable label.
    density:
        Mass density ``rho0`` in kg/m^3.
    sound_speed:
        Longitudinal sound speed ``c0`` in m/s.
    viscosity:
        Dynamic viscosity in Pa*s; drives the absorption bandwidth of
        the effusion notch (thicker fluids damp over a wider band).
    """

    name: str
    density: float
    sound_speed: float
    viscosity: float = 0.0

    def __post_init__(self) -> None:
        if self.density <= 0:
            raise ConfigurationError(f"density must be positive, got {self.density}")
        if self.sound_speed <= 0:
            raise ConfigurationError(f"sound_speed must be positive, got {self.sound_speed}")
        if self.viscosity < 0:
            raise ConfigurationError(f"viscosity must be >= 0, got {self.viscosity}")

    @property
    def impedance(self) -> float:
        """Characteristic acoustic impedance ``Z0 = rho0 * c0`` (rayl)."""
        return self.density * self.sound_speed

    def wavelength(self, frequency_hz: float) -> float:
        """Wavelength of a ``frequency_hz`` tone in this medium (m)."""
        if frequency_hz <= 0:
            raise ConfigurationError(f"frequency must be positive, got {frequency_hz}")
        return self.sound_speed / frequency_hz


#: Air at ~35 degC inside the ear canal.
AIR = Medium("air", density=1.15, sound_speed=350.0, viscosity=1.9e-5)

#: Pure water reference (Ludwig 1950 gives soft tissue close to this).
WATER = Medium("water", density=998.0, sound_speed=1482.0, viscosity=1.0e-3)

#: Serous effusion: thin transudate, close to water.
SEROUS_FLUID = Medium("serous", density=1010.0, sound_speed=1500.0, viscosity=2.0e-3)

#: Mucoid effusion ("glue ear"): thick, mucin-rich.
MUCOID_FLUID = Medium("mucoid", density=1040.0, sound_speed=1520.0, viscosity=0.25)

#: Purulent effusion: cell- and debris-laden pus, the most viscous.
PURULENT_FLUID = Medium("purulent", density=1150.0, sound_speed=1580.0, viscosity=0.9)
