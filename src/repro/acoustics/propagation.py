"""Multipath acoustic propagation (paper Eq. (4)-(5)).

The received microphone signal is a superposition of delayed, scaled,
and (for the eardrum path) spectrally shaped copies of the transmitted
chirp.  :class:`MultipathChannel` composes :class:`PropagationPath`
objects into a single frequency-domain transfer function

``H(f) = sum_i g_i * F_i(f) * exp(-j 2 pi f tau_i)``

and applies it with one FFT round trip, which supports fractional
sample delays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["PropagationPath", "MultipathChannel"]

ResponseFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class PropagationPath:
    """One acoustic path from speaker to microphone.

    Attributes
    ----------
    delay_s:
        Total propagation delay in seconds (may be fractional samples).
    gain:
        Broadband amplitude gain (spreading + boundary losses).
    response:
        Optional frequency-dependent amplitude response evaluated on a
        frequency array in Hz (e.g. the eardrum reflectance curve).
    phase:
        Carrier phase offset in radians applied to the path.  In-ear
        reflections off compliant tissue have unstable phase; the
        paper's signal model (Eq. (5)) sums path amplitudes without
        phase terms, which the simulator realises by randomising this
        offset per chirp.
    label:
        Diagnostic name ("direct", "canal-wall", "eardrum", ...).
    """

    delay_s: float
    gain: float
    response: ResponseFn | None = None
    phase: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ConfigurationError(f"delay_s must be >= 0, got {self.delay_s}")


@dataclass
class MultipathChannel:
    """A linear time-invariant multipath channel."""

    paths: list[PropagationPath] = field(default_factory=list)

    def add(self, path: PropagationPath) -> "MultipathChannel":
        """Append a path; returns self for chaining."""
        self.paths.append(path)
        return self

    def transfer_function(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """Complex channel response at the given frequencies."""
        freqs = np.asarray(frequencies_hz, dtype=float)
        h = np.zeros(freqs.shape, dtype=complex)
        for path in self.paths:
            phase = np.exp(-2j * np.pi * freqs * path.delay_s + 1j * path.phase)
            shaped = path.gain * phase
            if path.response is not None:
                shaped = shaped * np.asarray(path.response(freqs), dtype=complex)
            h += shaped
        return h

    def apply(self, signal: np.ndarray, sample_rate: float, *, extra_samples: int | None = None) -> np.ndarray:
        """Propagate ``signal`` through the channel.

        The output is extended by the largest path delay (rounded up)
        unless ``extra_samples`` overrides the padding, so no echo is
        truncated.
        """
        signal = np.asarray(signal, dtype=float)
        if signal.size == 0:
            raise ConfigurationError("cannot propagate an empty signal")
        if sample_rate <= 0:
            raise ConfigurationError(f"sample_rate must be positive, got {sample_rate}")
        if not self.paths:
            return np.zeros_like(signal)
        max_delay = max(p.delay_s for p in self.paths)
        pad = extra_samples if extra_samples is not None else int(np.ceil(max_delay * sample_rate)) + 1
        n = signal.size + pad
        nfft = 1 << (max(n, 2) - 1).bit_length()
        freqs = np.fft.rfftfreq(nfft, d=1.0 / sample_rate)
        spectrum = np.fft.rfft(signal, nfft)
        received = np.fft.irfft(spectrum * self.transfer_function(freqs), nfft)
        return received[:n]

    def impulse_response(self, sample_rate: float, length: int) -> np.ndarray:
        """Channel impulse response sampled at ``sample_rate``."""
        impulse = np.zeros(length)
        impulse[0] = 1.0
        return self.apply(impulse, sample_rate, extra_samples=0)

    @property
    def path_labels(self) -> list[str]:
        """Labels of all paths, for diagnostics."""
        return [p.label for p in self.paths]

    @classmethod
    def from_paths(cls, paths: Sequence[PropagationPath]) -> "MultipathChannel":
        """Build a channel from an iterable of paths."""
        return cls(list(paths))
