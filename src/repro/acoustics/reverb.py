"""Seeded early-reflection synthesis for reverberant ear canals.

The base channel of :func:`repro.acoustics.ear.build_ear_channel` is an
anechoic ideal: two canal-wall bounces, the drum echo, and one
second-order bounce.  Real canals are rougher — cerumen ridges, canal
bends, and a loosely seated ear tip each scatter part of the probe
chirp back early, producing a comb of weak reflections *between* the
direct pulse and the drum echo.  This module synthesizes that comb as
extra :class:`~repro.acoustics.propagation.PropagationPath` entries so
reverberation composes with the existing notch model (and with the
batched session kernel) instead of replacing it.

Design constraints, in order:

- **Off is off.**  ``ReverbConfig.enabled`` defaults to False and a
  disabled config adds no paths, consumes no RNG, and changes no
  arithmetic — the bit-identity contract of every robustness layer in
  this repo.
- **Fingerprintable.**  ``ReverbConfig`` is a frozen dataclass of plain
  numbers, so :func:`repro.core.config.config_fingerprint` digests it
  and the plan/feature caches key on it.
- **Geometry-derived.**  Tap delays are fractions of the drum
  round-trip computed from the *free* canal length, and tap gains stem
  from the canal's wall reflectivity; the same config produces
  physically consistent reverberation across participants.
- **Seeded dither.**  Within those physical envelopes the exact tap
  placement is drawn from ``default_rng(tap_seed)``, so two canals with
  the same geometry still differ unless configured not to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .propagation import MultipathChannel, PropagationPath

__all__ = [
    "ReverbConfig",
    "ReflectionTap",
    "reverb_taps",
    "reverb_paths",
    "reverb_impulse_response",
]


@dataclass(frozen=True)
class ReverbConfig:
    """Early-reflection model of one ear canal, plus its rake antidote.

    Attributes
    ----------
    enabled:
        Master switch.  False (the default) is the anechoic seed
        behaviour: no paths are added and no RNG is consumed, so
        disabled runs stay bit-identical to the pre-reverb pipeline.
    num_taps:
        Number of early-reflection taps between the direct pulse and
        the drum echo.
    strength:
        Linear gain multiplier on every tap; the severity axis of the
        reverb sweep (0 silences the taps, 1 is the calibrated model,
        2 is a harshly scattering canal).
    tap_decay:
        Geometric per-tap decay of successive reflections, in (0, 1).
    delay_spread:
        Fraction of the drum round-trip the taps span, in (0, 1).  Kept
        below the segmenter's eardrum-distance prior so reflections
        crowd the direct pulse rather than masquerading as the drum.
    tap_seed:
        Seed of the per-config tap dither (delay stratification jitter
        and per-tap gain wobble).
    rake_threshold:
        Analysis side: minimum estimated tap amplitude, relative to the
        direct pulse, for the rake stage to subtract it.  Below this
        the "tap" is indistinguishable from noise and subtracting it
        would inject the estimation error instead.
    """

    enabled: bool = False
    num_taps: int = 4
    strength: float = 1.0
    tap_decay: float = 0.6
    delay_spread: float = 0.55
    tap_seed: int = 0
    rake_threshold: float = 0.12

    def __post_init__(self) -> None:
        if self.num_taps < 1:
            raise ConfigurationError(f"num_taps must be >= 1, got {self.num_taps}")
        if self.strength < 0.0:
            raise ConfigurationError(f"strength must be >= 0, got {self.strength}")
        if not 0.0 < self.tap_decay < 1.0:
            raise ConfigurationError(
                f"tap_decay must be in (0, 1), got {self.tap_decay}"
            )
        if not 0.0 < self.delay_spread < 1.0:
            raise ConfigurationError(
                f"delay_spread must be in (0, 1), got {self.delay_spread}"
            )
        if self.rake_threshold < 0.0:
            raise ConfigurationError(
                f"rake_threshold must be >= 0, got {self.rake_threshold}"
            )


@dataclass(frozen=True)
class ReflectionTap:
    """One early reflection: a pure delay-and-attenuate copy."""

    delay_s: float
    gain: float

    def __post_init__(self) -> None:
        if self.delay_s < 0.0:
            raise ConfigurationError(f"delay_s must be >= 0, got {self.delay_s}")


def reverb_taps(
    config: ReverbConfig,
    free_length_m: float,
    wall_reflectivity: float,
    *,
    sound_speed: float,
) -> tuple[ReflectionTap, ...]:
    """The early-reflection taps of one canal, deterministically dithered.

    Tap ``k`` sits in the ``k``-th stratum of the interval
    ``(0, delay_spread * round_trip)`` where ``round_trip`` is the drum
    echo's two-way travel time over the free canal; within its stratum
    the exact position is seeded dither.  Gains decay geometrically
    from the wall reflectivity, scaled by ``strength`` and wobbled a
    few percent per tap.  Disabled configs return no taps and draw no
    random numbers.
    """
    if not config.enabled or config.strength == 0.0:
        return ()
    if free_length_m <= 0.0:
        raise ConfigurationError(
            f"free_length_m must be positive, got {free_length_m}"
        )
    round_trip_s = 2.0 * free_length_m / sound_speed
    rng = np.random.default_rng(config.tap_seed)
    position_dither = rng.uniform(0.2, 0.8, size=config.num_taps)
    gain_wobble = rng.uniform(0.85, 1.15, size=config.num_taps)
    taps = []
    for k in range(config.num_taps):
        fraction = (k + position_dither[k]) / config.num_taps
        delay = fraction * config.delay_spread * round_trip_s
        gain = (
            config.strength
            * wall_reflectivity
            * config.tap_decay ** (k + 1)
            * gain_wobble[k]
        )
        taps.append(ReflectionTap(delay_s=float(delay), gain=float(gain)))
    return tuple(taps)


def reverb_paths(
    config: ReverbConfig,
    free_length_m: float,
    wall_reflectivity: float,
    *,
    sound_speed: float,
) -> list[PropagationPath]:
    """The taps as propagation paths ready to extend an ear channel.

    Labels are ``reverb-<k>`` — anything but ``"direct"`` — so the
    session synthesizer treats reflections like tissue echoes: each
    chirp sees them with fresh micro-movement jitter and stratified
    carrier phase, matching the incoherent-sum signal model.
    """
    return [
        PropagationPath(delay_s=tap.delay_s, gain=tap.gain, label=f"reverb-{k}")
        for k, tap in enumerate(
            reverb_taps(
                config, free_length_m, wall_reflectivity, sound_speed=sound_speed
            )
        )
    ]


def reverb_impulse_response(
    config: ReverbConfig,
    free_length_m: float,
    wall_reflectivity: float,
    sample_rate: float,
    length: int,
    *,
    sound_speed: float,
) -> np.ndarray:
    """Discrete impulse response of the reflection comb alone.

    The fingerprint-facing view of the model: tests assert this is
    bit-reproducible under a fixed config and identically zero when the
    config is disabled.
    """
    paths = reverb_paths(
        config, free_length_m, wall_reflectivity, sound_speed=sound_speed
    )
    if not paths:
        return np.zeros(length)
    return MultipathChannel(paths).impulse_response(sample_rate, length)
