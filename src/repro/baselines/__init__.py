"""Comparison baselines.

``Chan2019Detector`` reimplements the prior smartphone-acoustic method
the paper compares against; ``ThresholdDetector`` is the naive
band-energy floor baseline; ``LogisticRegression`` is the from-scratch
classifier backing the binary task.
"""

from .chan2019 import Chan2019Config, Chan2019Detector
from .logistic import LogisticRegression
from .threshold import ThresholdConfig, ThresholdDetector

__all__ = [
    "Chan2019Config",
    "Chan2019Detector",
    "LogisticRegression",
    "ThresholdConfig",
    "ThresholdDetector",
]
