"""The prior acoustic MEE detector of Chan et al. (2019).

Chan et al. ("Detecting middle ear fluid using smartphones", Science
Translational Medicine 2019) probe the ear with a chirp and classify
the *whole reflected spectrum* around the acoustic dip with logistic
regression — binary fluid/no-fluid, no echo segmentation, no
fine-grained feature engineering.  The EarSonar paper attributes its
~8 % accuracy advantage to exactly that missing fine-grained stage
(Sec. I, VI-B).

This adaptation runs on the same earphone recordings as EarSonar (the
published system used a smartphone and paper funnel; the acoustic
principle is identical):

* coarse features: the band amplitude spectrum of the *entire*
  band-passed recording, averaged into a small number of bins — no
  event detection, no eardrum-echo segmentation, no TX deconvolution;
* **binary** detection (their published task) via from-scratch
  logistic regression;
* **four-state** grading (for the head-to-head with EarSonar) via the
  same k-means backend EarSonar uses, but over the coarse features —
  isolating the contribution of the fine-grained pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.results import index_to_state, state_to_index
from ..errors import ConfigurationError, ModelError, NotFittedError
from ..learning.kmeans import KMeans
from ..learning.mapping import map_clusters_to_labels
from ..learning.scaling import StandardScaler
from ..signal.filters import butterworth_bandpass
from ..signal.spectral import amplitude_spectrum
from ..simulation.effusion import MeeState
from ..simulation.session import Recording
from .logistic import LogisticRegression

__all__ = ["Chan2019Config", "Chan2019Detector"]


@dataclass(frozen=True)
class Chan2019Config:
    """Coarse-spectrum feature settings for the baseline."""

    sample_rate: float = 48_000.0
    band_low_hz: float = 16_000.0
    band_high_hz: float = 20_000.0
    num_bins: int = 24
    filter_order: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.band_low_hz < self.band_high_hz:
            raise ConfigurationError("need 0 < band_low_hz < band_high_hz")
        if self.num_bins < 2:
            raise ConfigurationError(f"num_bins must be >= 2, got {self.num_bins}")


class Chan2019Detector:
    """Coarse-spectrum MEE detector (binary and four-state variants)."""

    def __init__(self, config: Chan2019Config | None = None, *, seed: int = 0) -> None:
        self.config = config or Chan2019Config()
        self.seed = seed
        cfg = self.config
        self._bandpass = butterworth_bandpass(
            cfg.filter_order,
            cfg.band_low_hz - 1_000.0,
            cfg.band_high_hz + 1_000.0,
            cfg.sample_rate,
        )
        self._scaler: StandardScaler | None = None
        self._logistic: LogisticRegression | None = None
        self._kmeans: KMeans | None = None
        self._cluster_to_label: dict[int, int] | None = None

    # ------------------------------------------------------------------
    # Features
    # ------------------------------------------------------------------

    def features(self, recording: Recording) -> np.ndarray:
        """Coarse normalised band-spectrum features of one recording."""
        if abs(recording.sample_rate - self.config.sample_rate) > 1e-6:
            raise ModelError(
                f"recording rate {recording.sample_rate} != config rate "
                f"{self.config.sample_rate}"
            )
        filtered = self._bandpass.apply(recording.waveform)
        spectrum = amplitude_spectrum(filtered, recording.sample_rate)
        band = spectrum.band(self.config.band_low_hz, self.config.band_high_hz)
        if band.values.size < self.config.num_bins:
            raise ModelError("recording too short for the configured bin count")
        # Average the band into coarse bins and peak-normalise.
        edges = np.linspace(0, band.values.size, self.config.num_bins + 1).astype(int)
        coarse = np.array(
            [band.values[a:b].mean() if b > a else 0.0 for a, b in zip(edges[:-1], edges[1:])]
        )
        peak = coarse.max()
        return coarse / peak if peak > 0 else coarse

    def feature_matrix(self, recordings: list[Recording]) -> np.ndarray:
        """Stack of coarse feature vectors for many recordings."""
        if not recordings:
            raise ModelError("need at least one recording")
        return np.stack([self.features(r) for r in recordings])

    # ------------------------------------------------------------------
    # Binary task (their published classifier)
    # ------------------------------------------------------------------

    def fit_binary(self, recordings: list[Recording], states: list[MeeState]) -> "Chan2019Detector":
        """Fit the fluid/no-fluid logistic regression."""
        matrix = self.feature_matrix(recordings)
        labels = np.array([1.0 if s.is_effusion else 0.0 for s in states])
        self._scaler = StandardScaler()
        scaled = self._scaler.fit_transform(matrix)
        self._logistic = LogisticRegression()
        self._logistic.fit(scaled, labels)
        return self

    def predict_fluid(self, recordings: list[Recording]) -> np.ndarray:
        """Binary fluid predictions (1 = effusion present)."""
        if self._logistic is None or self._scaler is None:
            raise NotFittedError("fit_binary must run before predict_fluid")
        matrix = self.feature_matrix(recordings)
        return self._logistic.predict(self._scaler.transform(matrix))

    def predict_fluid_proba(self, recordings: list[Recording]) -> np.ndarray:
        """Binary fluid probabilities."""
        if self._logistic is None or self._scaler is None:
            raise NotFittedError("fit_binary must run before predict_fluid_proba")
        matrix = self.feature_matrix(recordings)
        return self._logistic.predict_proba(self._scaler.transform(matrix))

    # ------------------------------------------------------------------
    # Four-state task (head-to-head with EarSonar)
    # ------------------------------------------------------------------

    def fit_states(self, recordings: list[Recording], states: list[MeeState]) -> "Chan2019Detector":
        """Fit the four-state variant (coarse features + k-means)."""
        matrix = self.feature_matrix(recordings)
        labels = np.array([state_to_index(s) for s in states])
        self._scaler = StandardScaler()
        scaled = self._scaler.fit_transform(matrix)
        num_states = len(MeeState.ordered())
        self._kmeans = KMeans(num_clusters=num_states, seed=self.seed)
        clusters = self._kmeans.fit_predict(scaled)
        self._cluster_to_label = map_clusters_to_labels(
            clusters, labels, num_states, num_states
        )
        return self

    def predict_states(self, recordings: list[Recording]) -> list[MeeState]:
        """Four-state predictions."""
        if self._kmeans is None or self._cluster_to_label is None or self._scaler is None:
            raise NotFittedError("fit_states must run before predict_states")
        matrix = self.feature_matrix(recordings)
        clusters = self._kmeans.predict(self._scaler.transform(matrix))
        return [index_to_state(self._cluster_to_label[int(c)]) for c in clusters]
