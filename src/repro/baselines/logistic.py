"""Binary logistic regression, implemented from scratch.

Used by the Chan-et-al. baseline (their published classifier for
middle-ear fluid is a logistic-regression model over acoustic dip
features).  Plain batch gradient descent with L2 regularisation is
ample at this feature dimensionality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, ModelError, NotFittedError

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


@dataclass
class LogisticRegression:
    """L2-regularised binary logistic regression via gradient descent.

    Attributes
    ----------
    learning_rate:
        Gradient step size.
    num_iterations:
        Fixed iteration budget (full-batch steps).
    l2:
        Ridge penalty on the weights (not the intercept).
    tolerance:
        Early-stop threshold on the gradient norm.
    """

    learning_rate: float = 0.1
    num_iterations: int = 2000
    l2: float = 1e-3
    tolerance: float = 1e-7

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.num_iterations < 1:
            raise ConfigurationError(
                f"num_iterations must be >= 1, got {self.num_iterations}"
            )
        if self.l2 < 0:
            raise ConfigurationError(f"l2 must be >= 0, got {self.l2}")
        self.weights_: np.ndarray | None = None
        self.intercept_: float | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Fit on binary ``labels`` (0/1)."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if features.ndim != 2:
            raise ModelError(f"features must be 2-D, got shape {features.shape}")
        if labels.shape != (features.shape[0],):
            raise ModelError(
                f"labels shape {labels.shape} incompatible with {features.shape[0]} samples"
            )
        if not np.all(np.isin(labels, (0.0, 1.0))):
            raise ModelError("labels must be binary 0/1")
        n, d = features.shape
        weights = np.zeros(d)
        intercept = 0.0
        for _ in range(self.num_iterations):
            logits = features @ weights + intercept
            error = _sigmoid(logits) - labels
            grad_w = features.T @ error / n + self.l2 * weights
            grad_b = float(error.mean())
            weights -= self.learning_rate * grad_w
            intercept -= self.learning_rate * grad_b
            if np.sqrt(np.sum(grad_w**2) + grad_b**2) < self.tolerance:
                break
        self.weights_ = weights
        self.intercept_ = intercept
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(label = 1) for each sample."""
        if self.weights_ is None or self.intercept_ is None:
            raise NotFittedError("LogisticRegression.predict_proba called before fit")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        return _sigmoid(features @ self.weights_ + self.intercept_)

    def predict(self, features: np.ndarray, *, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(features) >= threshold).astype(int)
