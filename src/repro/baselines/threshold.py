"""Naive band-energy threshold detector.

The floor baseline: effusion absorbs energy near the resonance, so the
ratio of dip-region energy to total band energy drops when fluid is
present.  A single threshold learned on training data separates the
two — no clustering, no fine features.  Used in the ablation benches
to show what the learning machinery contributes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, ModelError, NotFittedError
from ..signal.filters import butterworth_bandpass
from ..signal.spectral import amplitude_spectrum
from ..simulation.effusion import MeeState
from ..simulation.session import Recording

__all__ = ["ThresholdConfig", "ThresholdDetector"]


@dataclass(frozen=True)
class ThresholdConfig:
    """Dip-region definition for the ratio statistic."""

    sample_rate: float = 48_000.0
    band_low_hz: float = 16_000.0
    band_high_hz: float = 20_000.0
    dip_low_hz: float = 17_200.0
    dip_high_hz: float = 18_800.0

    def __post_init__(self) -> None:
        if not (
            0.0
            < self.band_low_hz
            <= self.dip_low_hz
            < self.dip_high_hz
            <= self.band_high_hz
        ):
            raise ConfigurationError(
                "need band_low <= dip_low < dip_high <= band_high (all positive)"
            )


class ThresholdDetector:
    """One-statistic binary effusion screen."""

    def __init__(self, config: ThresholdConfig | None = None) -> None:
        self.config = config or ThresholdConfig()
        self._bandpass = butterworth_bandpass(
            4,
            self.config.band_low_hz - 1_000.0,
            self.config.band_high_hz + 1_000.0,
            self.config.sample_rate,
        )
        self.threshold_: float | None = None

    def statistic(self, recording: Recording) -> float:
        """Dip-to-band energy ratio; lower means more absorption."""
        filtered = self._bandpass.apply(recording.waveform)
        spectrum = amplitude_spectrum(filtered, recording.sample_rate)
        band = spectrum.band(self.config.band_low_hz, self.config.band_high_hz)
        dip = spectrum.band(self.config.dip_low_hz, self.config.dip_high_hz)
        total = float(np.sum(band.values**2))
        if total <= 0.0:
            raise ModelError("recording has no in-band energy")
        return float(np.sum(dip.values**2) / total)

    def fit(self, recordings: list[Recording], states: list[MeeState]) -> "ThresholdDetector":
        """Learn the midpoint threshold between class-conditional medians."""
        if len(recordings) != len(states) or not recordings:
            raise ModelError("recordings and states must be non-empty and aligned")
        stats = np.array([self.statistic(r) for r in recordings])
        fluid = np.array([s.is_effusion for s in states])
        if not fluid.any() or fluid.all():
            raise ModelError("training data needs both fluid and clear examples")
        self.threshold_ = float(
            (np.median(stats[fluid]) + np.median(stats[~fluid])) / 2.0
        )
        return self

    def predict_fluid(self, recordings: list[Recording]) -> np.ndarray:
        """1 where the statistic indicates effusion, else 0."""
        if self.threshold_ is None:
            raise NotFittedError("ThresholdDetector.predict_fluid called before fit")
        stats = np.array([self.statistic(r) for r in recordings])
        return (stats < self.threshold_).astype(int)
