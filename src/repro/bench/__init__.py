"""Perf-trajectory harness for the planned/batched DSP kernels.

``python -m repro.bench`` times every batched kernel against its serial
``*_reference`` oracle and writes two JSON reports next to the working
directory: ``BENCH_kernels.json`` (isolated kernel micro-benchmarks)
and ``BENCH_pipeline.json`` (pipeline-shaped stages: chirp-train
synthesis, device coloration, absorption curves, the Welch/MFCC feature
path).  Each record carries the op name, a human-readable shape string,
p50/p95 wall-clock milliseconds for the batched kernel and for its
serial oracle, and the p50 speedup — so successive commits can be
compared file-to-file.

The harness lives outside the science subpackages on purpose: it is
allowed to read wall clocks, while :mod:`repro.kernels` itself stays
clock-free and deterministic under QA001.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

__all__ = [
    "SCHEMA_VERSION",
    "BenchResult",
    "time_op",
    "compare_ops",
    "write_report",
]

#: Bumped whenever the JSON layout changes shape incompatibly.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchResult:
    """Timing record for one op, batched vs (optionally) serial oracle.

    All times are wall-clock milliseconds over ``repeats`` calls after
    one untimed warmup; ``speedup`` is ``serial_p50_ms / p50_ms``.
    """

    op: str
    shape: str
    repeats: int
    p50_ms: float
    p95_ms: float
    serial_p50_ms: float | None = None
    serial_p95_ms: float | None = None
    speedup: float | None = None


def time_op(fn: Callable[[], Any], repeats: int) -> tuple[float, float]:
    """(p50_ms, p95_ms) of ``repeats`` timed calls after one warmup."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    fn()  # warmup: plan-cache population and allocator churn stay untimed
    samples = np.empty(repeats)
    for i in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples[i] = (time.perf_counter() - t0) * 1e3
    return float(np.percentile(samples, 50)), float(np.percentile(samples, 95))


def compare_ops(
    op: str,
    shape: str,
    batched: Callable[[], Any],
    serial: Callable[[], Any] | None = None,
    *,
    repeats: int = 7,
) -> BenchResult:
    """Time ``batched`` (and optionally ``serial``) and build the record."""
    p50, p95 = time_op(batched, repeats)
    if serial is None:
        return BenchResult(op=op, shape=shape, repeats=repeats, p50_ms=p50, p95_ms=p95)
    s50, s95 = time_op(serial, repeats)
    speedup = s50 / p50 if p50 > 0.0 else float("inf")
    return BenchResult(
        op=op,
        shape=shape,
        repeats=repeats,
        p50_ms=p50,
        p95_ms=p95,
        serial_p50_ms=s50,
        serial_p95_ms=s95,
        speedup=speedup,
    )


def write_report(
    path: Path,
    results: list[BenchResult],
    *,
    label: str,
    quick: bool,
    seed: int,
) -> Path:
    """Serialise ``results`` to ``path`` with schema/run metadata."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "label": label,
        "quick": quick,
        "seed": seed,
        "results": [asdict(r) for r in results],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
