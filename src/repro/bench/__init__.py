"""Perf-trajectory harness for the planned/batched DSP kernels.

``python -m repro.bench`` times every batched kernel against its serial
``*_reference`` oracle and writes two JSON reports next to the working
directory: ``BENCH_kernels.json`` (isolated kernel micro-benchmarks)
and ``BENCH_pipeline.json`` (pipeline-shaped stages: chirp-train
synthesis, device coloration, absorption curves, the Welch/MFCC feature
path).  Each record carries the op name, a human-readable shape string,
p50/p95 wall-clock milliseconds for the batched kernel and for its
serial oracle, and the p50 speedup — so successive commits can be
compared file-to-file.

The harness lives outside the science subpackages on purpose: it is
allowed to read wall clocks, while :mod:`repro.kernels` itself stays
clock-free and deterministic under QA001.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

__all__ = [
    "SCHEMA_VERSION",
    "BenchResult",
    "time_op",
    "time_ops_interleaved",
    "compare_ops",
    "git_sha",
    "machine_fingerprint",
    "write_report",
]

#: Bumped whenever the JSON layout changes shape incompatibly.
#: v2: reports hold a ``runs`` list keyed by (git_sha, seed, quick,
#: machine) instead of a single clobber-on-write result set.
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class BenchResult:
    """Timing record for one op, batched vs (optionally) serial oracle.

    All times are wall-clock milliseconds over ``repeats`` calls after
    one untimed warmup; ``speedup`` is ``serial_p50_ms / p50_ms``.
    """

    op: str
    shape: str
    repeats: int
    p50_ms: float
    p95_ms: float
    serial_p50_ms: float | None = None
    serial_p95_ms: float | None = None
    speedup: float | None = None


def time_op(fn: Callable[[], Any], repeats: int) -> tuple[float, float]:
    """(p50_ms, p95_ms) of ``repeats`` timed calls after one warmup."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    fn()  # warmup: plan-cache population and allocator churn stay untimed
    samples = np.empty(repeats)
    for i in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples[i] = (time.perf_counter() - t0) * 1e3
    return float(np.percentile(samples, 50)), float(np.percentile(samples, 95))


def time_ops_interleaved(
    a: Callable[[], Any], b: Callable[[], Any], repeats: int
) -> tuple[tuple[float, float], tuple[float, float]]:
    """Paired ``((a_p50, a_p95), (b_p50, b_p95))`` from alternating calls.

    :func:`time_op` times each side as one contiguous block, so clock
    drift (frequency scaling, thermal throttle, background load) lands
    wholesale on whichever side ran second.  That bias is invisible
    next to a 10x kernel speedup but dominates near-1.0 comparisons
    like the tracing-overhead gate, where a few percent of drift reads
    as a regression.  Alternating A,B,A,B spreads any drift evenly
    across both sample sets, so their p50 ratio isolates the real
    difference between the two paths.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    a()  # warmups stay untimed, mirroring time_op
    b()
    sa = np.empty(repeats)
    sb = np.empty(repeats)
    for i in range(repeats):
        t0 = time.perf_counter()
        a()
        sa[i] = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        b()
        sb[i] = (time.perf_counter() - t0) * 1e3
    return (
        (float(np.percentile(sa, 50)), float(np.percentile(sa, 95))),
        (float(np.percentile(sb, 50)), float(np.percentile(sb, 95))),
    )


def compare_ops(
    op: str,
    shape: str,
    batched: Callable[[], Any],
    serial: Callable[[], Any] | None = None,
    *,
    repeats: int = 7,
    interleave: bool = False,
) -> BenchResult:
    """Time ``batched`` (and optionally ``serial``) and build the record.

    ``interleave=True`` alternates the two sides call-by-call (see
    :func:`time_ops_interleaved`) — use it when the expected ratio is
    near 1.0 and block-order drift would swamp the signal.
    """
    if interleave and serial is not None:
        (p50, p95), (s50, s95) = time_ops_interleaved(batched, serial, repeats)
        speedup = s50 / p50 if p50 > 0.0 else float("inf")
        return BenchResult(
            op=op,
            shape=shape,
            repeats=repeats,
            p50_ms=p50,
            p95_ms=p95,
            serial_p50_ms=s50,
            serial_p95_ms=s95,
            speedup=speedup,
        )
    p50, p95 = time_op(batched, repeats)
    if serial is None:
        return BenchResult(op=op, shape=shape, repeats=repeats, p50_ms=p50, p95_ms=p95)
    s50, s95 = time_op(serial, repeats)
    speedup = s50 / p50 if p50 > 0.0 else float("inf")
    return BenchResult(
        op=op,
        shape=shape,
        repeats=repeats,
        p50_ms=p50,
        p95_ms=p95,
        serial_p50_ms=s50,
        serial_p95_ms=s95,
        speedup=speedup,
    )


def git_sha() -> str:
    """HEAD commit of the enclosing repo, or ``"unknown"`` outside one."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if sha else "unknown"


def machine_fingerprint() -> str:
    """Short stable digest of the benchmarking host.

    Timings are only comparable on the same machine class, so every
    run/trajectory entry is stamped with a hash of the CPU architecture,
    OS, core count, and Python/NumPy versions; the regression gate only
    compares entries whose fingerprints match.
    """
    identity = "|".join(
        (
            platform.machine(),
            platform.system(),
            str(os.cpu_count() or 0),
            platform.python_version(),
            np.__version__,
        )
    )
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()[:12]


def _load_runs(path: Path) -> list[dict]:
    """Existing runs in ``path``, migrating v1 single-run payloads."""
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(payload, dict):
        return []
    if payload.get("schema_version") == 1:
        # v1 wrote one anonymous result set at the top level; keep it
        # as a run with an unknown SHA rather than dropping history.
        return [
            {
                "git_sha": "unknown",
                "seed": payload.get("seed"),
                "quick": payload.get("quick"),
                "machine": "unknown",
                "config_fingerprint": None,
                "results": payload.get("results", []),
            }
        ]
    runs = payload.get("runs", [])
    return runs if isinstance(runs, list) else []


def write_report(
    path: Path,
    results: list[BenchResult],
    *,
    label: str,
    quick: bool,
    seed: int,
    sha: str | None = None,
    machine: str | None = None,
    config_fingerprint: str | None = None,
) -> Path:
    """Record ``results`` in ``path`` without clobbering other commits.

    The report is multi-run: each run is keyed by ``(git_sha, seed,
    quick, machine)``.  Re-benchmarking the same commit on the same
    machine replaces that run in place; a run from a *different* commit
    is appended, never overwritten, so a report file accumulates the
    perf trajectory across the stacked PRs instead of erasing it on
    every invocation.
    """
    sha = sha if sha is not None else git_sha()
    machine = machine if machine is not None else machine_fingerprint()
    run = {
        "git_sha": sha,
        "seed": seed,
        "quick": quick,
        "machine": machine,
        "config_fingerprint": config_fingerprint,
        "results": [asdict(r) for r in results],
    }
    key = (sha, seed, quick, machine)
    runs = _load_runs(path)
    for i, existing in enumerate(runs):
        if (
            existing.get("git_sha"),
            existing.get("seed"),
            existing.get("quick"),
            existing.get("machine"),
        ) == key:
            runs[i] = run
            break
    else:
        runs.append(run)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "label": label,
        "runs": runs,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
