"""CLI entry point: ``python -m repro.bench [--quick] [--repeats N] ...``.

Writes ``BENCH_kernels.json`` (kernel micro-benchmarks against their
serial oracles) and ``BENCH_pipeline.json`` (pipeline-shaped stages on
a real simulated recording) into ``--output-dir`` and prints a summary
table.  ``--quick`` shrinks every problem size so the whole run fits in
a CI smoke job; the default sizes match the pipeline's real workloads
so the reported speedups are the ones users see.
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from . import BenchResult, compare_ops, write_report


def _kernel_suite(rng: np.random.Generator, quick: bool, repeats: int) -> list[BenchResult]:
    """Micro-benchmarks: each batched kernel vs its serial oracle."""
    from ..features.laplacian import laplacian_scores, laplacian_scores_reference
    from ..kernels.spectral import batched_amplitude_spectrum
    from ..signal.chirp import (
        ChirpDesign,
        chirp_train,
        chirp_train_reference,
        matched_filter,
        matched_filter_reference,
    )
    from ..signal.correlation import correlation_matrix, correlation_matrix_reference
    from ..signal.mfcc import MfccConfig, mfcc, mfcc_reference
    from ..signal.spectral import amplitude_spectrum, welch_psd, welch_psd_reference

    results: list[BenchResult] = []
    fs = ChirpDesign().sample_rate

    n = 16_384 if quick else 96_000
    x = rng.standard_normal(n)
    results.append(
        compare_ops(
            "welch_psd",
            f"n={n},segment=256,overlap=0.5",
            lambda: welch_psd(x, fs, segment_length=256, overlap=0.5),
            lambda: welch_psd_reference(x, fs, segment_length=256, overlap=0.5),
            repeats=repeats,
        )
    )

    rows, cols = (50, 1024) if quick else (200, 4096)
    stack = rng.standard_normal((rows, cols))
    results.append(
        compare_ops(
            "amplitude_spectrum_batch",
            f"batch={rows},n={cols}",
            lambda: batched_amplitude_spectrum(stack, fs),
            lambda: [amplitude_spectrum(row, fs) for row in stack],
            repeats=repeats,
        )
    )

    mfcc_cfg = MfccConfig(
        sample_rate=384_000.0,
        frame_length=256,
        frame_hop=128,
        nfft=1024,
        num_filters=20,
        num_coefficients=17,
        low_hz=15_000.0,
        high_hz=21_000.0,
    )
    m = 4_096 if quick else 16_384
    seg = rng.standard_normal(m)
    results.append(
        compare_ops(
            "mfcc",
            f"n={m},frame=256,hop=128,nfft=1024",
            lambda: mfcc(seg, mfcc_cfg),
            lambda: mfcc_reference(seg, mfcc_cfg),
            repeats=repeats,
        )
    )

    sessions, bins = (24, 128) if quick else (64, 512)
    curves = rng.standard_normal((sessions, bins))
    results.append(
        compare_ops(
            "correlation_matrix",
            f"sessions={sessions},bins={bins}",
            lambda: correlation_matrix(curves),
            lambda: correlation_matrix_reference(curves),
            repeats=repeats,
        )
    )

    samples, feats = (60, 40) if quick else (240, 105)
    table = rng.standard_normal((samples, feats))
    results.append(
        compare_ops(
            "laplacian_scores",
            f"samples={samples},features={feats}",
            lambda: laplacian_scores(table),
            lambda: laplacian_scores_reference(table),
            repeats=repeats,
        )
    )

    design = ChirpDesign()
    chirps = 50 if quick else 200
    results.append(
        compare_ops(
            "chirp_train",
            f"chirps={chirps}",
            lambda: chirp_train(design, chirps),
            lambda: chirp_train_reference(design, chirps),
            repeats=repeats,
        )
    )

    k = 8_192 if quick else 48_000
    capture = rng.standard_normal(k)
    results.append(
        compare_ops(
            "matched_filter",
            f"n={k}",
            lambda: matched_filter(capture, design),
            lambda: matched_filter_reference(capture, design),
            repeats=repeats,
        )
    )
    return results


def _pipeline_suite(seed: int, quick: bool, repeats: int) -> list[BenchResult]:
    """Pipeline-shaped stages on one real simulated recording."""
    from ..acoustics.ear import InsertionState, build_ear_channel
    from ..core.config import EarSonarConfig
    from ..core.pipeline import EarSonarPipeline
    from ..signal.mfcc import MfccConfig, mfcc, mfcc_reference
    from ..signal.spectral import welch_psd, welch_psd_reference
    from ..simulation.earphone import PROTOTYPE
    from ..simulation.participant import sample_participant
    from ..simulation.session import (
        SessionConfig,
        _apply_device,
        _apply_device_reference,
        _synthesize_train,
        _synthesize_train_reference,
        record_session,
    )

    results: list[BenchResult] = []
    setup_rng = np.random.default_rng(seed)
    participant = sample_participant(setup_rng, "BENCH")
    session_cfg = SessionConfig(duration_s=0.2 if quick else 1.0)
    insertion = InsertionState(
        depth_m=session_cfg.insertion_depth_m, angle_deg=0.0, seal_quality=0.95
    )
    load = participant.load_on(0.0, setup_rng)
    channel = build_ear_channel(
        participant.geometry, participant.drum_model, load, insertion
    )

    def synth_batched() -> np.ndarray:
        return _synthesize_train(channel, session_cfg, np.random.default_rng(seed))

    def synth_serial() -> np.ndarray:
        return _synthesize_train_reference(
            channel, session_cfg, np.random.default_rng(seed)
        )

    results.append(
        compare_ops(
            "record_session_synthesis",
            f"chirps={session_cfg.num_chirps}",
            synth_batched,
            synth_serial,
            repeats=repeats,
        )
    )

    waveform = synth_batched()
    fs = session_cfg.chirp.sample_rate
    results.append(
        compare_ops(
            "device_coloration",
            f"n={waveform.size}",
            lambda: _apply_device(waveform, PROTOTYPE, fs),
            lambda: _apply_device_reference(waveform, PROTOTYPE, fs),
            repeats=repeats,
        )
    )

    pipeline = EarSonarPipeline(EarSonarConfig())
    recording = record_session(
        participant, 0.0, session_cfg, np.random.default_rng(seed + 1)
    )
    filtered = pipeline.preprocess(recording.waveform)
    echoes = pipeline.extract_echoes(filtered)
    if echoes:
        results.append(
            compare_ops(
                "absorption_curves",
                f"echoes={len(echoes)},nfft=8192",
                lambda: pipeline.absorption_curves(echoes),
                lambda: [pipeline.absorption_curve(e) for e in echoes],
                repeats=repeats,
            )
        )
        mean_segment = np.stack([e.segment for e in echoes]).mean(axis=0)
        rate = echoes[0].sample_rate
        mfcc_cfg = MfccConfig(
            sample_rate=rate,
            frame_length=256,
            frame_hop=128,
            nfft=1024,
            num_filters=20,
            num_coefficients=17,
            low_hz=15_000.0,
            high_hz=21_000.0,
        )
        # The spectral feature path as the experiments run it: Welch PSD
        # of the band-passed capture (the Fig. 9 consistency input) plus
        # MFCCs of the mean eardrum-echo segment (the Sec. IV-C input).
        results.append(
            compare_ops(
                "welch_mfcc_feature_path",
                f"capture={filtered.size},segment={mean_segment.size}",
                lambda: (
                    welch_psd(filtered, fs, segment_length=512),
                    mfcc(mean_segment, mfcc_cfg),
                ),
                lambda: (
                    welch_psd_reference(filtered, fs, segment_length=512),
                    mfcc_reference(mean_segment, mfcc_cfg),
                ),
                repeats=repeats,
            )
        )
    return results


def _obs_suite(
    seed: int, quick: bool, repeats: int, trace_dir: Path | None = None
) -> list[BenchResult]:
    """Tracing overhead: one batch run traced vs the NullTracer path.

    The ``serial`` side is the default (tracing disabled) run, so
    ``speedup`` reads as ``untraced_p50 / traced_p50`` — 1.0 means free
    tracing, and the overhead percentage is ``(1/speedup - 1) * 100``.
    When ``trace_dir`` is given, the artifacts of one traced run
    (run record, Chrome trace, events, Prometheus text) are written
    there so CI can upload them next to the BENCH reports.
    """
    from ..core.config import EarSonarConfig
    from ..core.pipeline import EarSonarPipeline
    from ..obs import EventLog, Tracer, capture_manifest, use_event_log, use_tracer
    from ..obs.export import write_run_record
    from ..runtime.executor import BatchExecutor
    from ..runtime.metrics import RuntimeMetrics
    from ..simulation.cohort import StudyDesign, build_cohort, simulate_study
    from ..simulation.session import SessionConfig

    rng = np.random.default_rng(seed)
    participants = 2 if quick else 4
    cohort = build_cohort(participants, rng, total_days=8)
    design = StudyDesign(
        total_days=2 if quick else 4,
        sessions_per_day=1,
        session_config=SessionConfig(duration_s=0.1 if quick else 0.25),
    )
    recordings = simulate_study(cohort, design, rng).recordings
    config = EarSonarConfig()
    untraced_exec = BatchExecutor(EarSonarPipeline(config))
    traced_metrics = RuntimeMetrics()
    traced_exec = BatchExecutor(EarSonarPipeline(config), metrics=traced_metrics)
    last: dict = {}

    def run_traced():
        tracer, log = Tracer(), EventLog()
        with use_tracer(tracer), use_event_log(log):
            result = traced_exec.run(recordings)
        last["tracer"], last["log"] = tracer, log
        return result

    comparison = compare_ops(
        "batch_screening_traced",
        f"recordings={len(recordings)}",
        run_traced,
        lambda: untraced_exec.run(recordings),
        repeats=repeats,
    )
    if trace_dir is not None:
        write_run_record(
            trace_dir,
            spans=last["tracer"].traces,
            metrics=traced_metrics,
            manifest=capture_manifest(config=config, seed=seed),
            events=last["log"],
        )
    return [comparison]


def overhead_pct(result: BenchResult) -> float | None:
    """Tracing overhead percent from an obs-suite comparison record."""
    if result.serial_p50_ms is None or result.serial_p50_ms <= 0.0:
        return None
    return (result.p50_ms / result.serial_p50_ms - 1.0) * 100.0


def _print_table(title: str, results: list[BenchResult]) -> None:
    """Echo one report as an aligned terminal table."""
    print(f"\n{title}")
    header = f"{'op':<28}{'shape':<34}{'p50 ms':>10}{'serial p50':>12}{'speedup':>9}"
    print(header)
    print("-" * len(header))
    for r in results:
        serial = f"{r.serial_p50_ms:.3f}" if r.serial_p50_ms is not None else "-"
        speed = f"{r.speedup:.1f}x" if r.speedup is not None else "-"
        print(f"{r.op:<28}{r.shape:<34}{r.p50_ms:>10.3f}{serial:>12}{speed:>9}")


def main(argv: list[str] | None = None) -> int:
    """Run both suites and write the BENCH_*.json reports."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark batched DSP kernels against their serial oracles.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small problem sizes for CI smoke runs"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timed calls per op (default 7, quick 3)"
    )
    parser.add_argument(
        "--output-dir", type=Path, default=Path("."), help="where BENCH_*.json land"
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed for inputs")
    parser.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="write one traced run's record/Chrome-trace artifacts here",
    )
    parser.add_argument(
        "--fail-overhead-pct",
        type=float,
        default=None,
        help="exit 1 if tracing-enabled batch p50 exceeds the disabled "
        "path by more than this percent",
    )
    args = parser.parse_args(argv)

    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 7)
    rng = np.random.default_rng(args.seed)

    kernel_results = _kernel_suite(rng, args.quick, repeats)
    pipeline_results = _pipeline_suite(args.seed, args.quick, repeats)
    obs_results = _obs_suite(args.seed, args.quick, repeats, args.trace_dir)

    args.output_dir.mkdir(parents=True, exist_ok=True)
    kernels_path = write_report(
        args.output_dir / "BENCH_kernels.json",
        kernel_results,
        label="kernels",
        quick=args.quick,
        seed=args.seed,
    )
    pipeline_path = write_report(
        args.output_dir / "BENCH_pipeline.json",
        pipeline_results,
        label="pipeline",
        quick=args.quick,
        seed=args.seed,
    )
    obs_path = write_report(
        args.output_dir / "BENCH_obs.json",
        obs_results,
        label="obs",
        quick=args.quick,
        seed=args.seed,
    )

    _print_table("kernel micro-benchmarks (batched vs serial oracle)", kernel_results)
    _print_table("pipeline stages (batched vs serial oracle)", pipeline_results)
    _print_table("observability overhead (traced vs disabled)", obs_results)
    overhead = overhead_pct(obs_results[0])
    if overhead is not None:
        print(f"\ntracing overhead: {overhead:+.2f}% on batch p50")
    print(f"wrote {kernels_path}, {pipeline_path} and {obs_path}")
    if (
        args.fail_overhead_pct is not None
        and overhead is not None
        and overhead > args.fail_overhead_pct
    ):
        print(
            f"FAIL: tracing overhead {overhead:+.2f}% exceeds "
            f"{args.fail_overhead_pct:g}% budget"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
