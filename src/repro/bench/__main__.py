"""CLI entry point: ``python -m repro.bench [--quick] [--repeats N] ...``.

Writes ``BENCH_kernels.json`` (kernel micro-benchmarks against their
serial oracles) and ``BENCH_pipeline.json`` (pipeline-shaped stages on
a real simulated recording) into ``--output-dir`` and prints a summary
table.  ``--quick`` shrinks every problem size so the whole run fits in
a CI smoke job; the default sizes match the pipeline's real workloads
so the reported speedups are the ones users see.
"""

from __future__ import annotations

import argparse
import dataclasses
from pathlib import Path

import numpy as np

from . import BenchResult, compare_ops, git_sha, machine_fingerprint, write_report
from .trajectory import append_entry, check_gate


def _backend_suite(
    rng: np.random.Generator, quick: bool, repeats: int
) -> list[BenchResult]:
    """The float32 fast lane vs the float64 reference lane, per hot op.

    ``speedup`` reads as ``float64_p50 / float32_p50`` — how much the
    dispatched lane (autotuned candidates, fused float32 recipes,
    zoom-DFT, optional JIT epilogues) buys over the bit-exact default.
    The float64 side *is* the planned kernel of the previous perf
    round, so these numbers are the additional trajectory on top of it.
    """
    from ..core.config import EarSonarConfig
    from ..core.pipeline import EarSonarPipeline
    from ..features.laplacian import laplacian_scores
    from ..kernels import backends
    from ..kernels.mfcc import mfcc_batched
    from ..kernels.chirp import chirp_train_planned, matched_filter_batched
    from ..kernels.spectral import welch_periodograms
    from ..signal.chirp import ChirpDesign
    from ..signal.correlation import correlation_matrix
    from ..signal.mfcc import MfccConfig
    from ..simulation.participant import sample_participant
    from ..simulation.session import SessionConfig, record_session

    results: list[BenchResult] = []
    design = ChirpDesign()
    fs = design.sample_rate
    backends.ensure_ready()

    def lanes(
        op: str, shape: str, run, arr64: np.ndarray
    ) -> BenchResult:
        arr32 = arr64.astype(np.float32)
        return compare_ops(
            op, shape, lambda: run(arr32), lambda: run(arr64), repeats=repeats
        )

    n = 16_384 if quick else 96_000
    x = rng.standard_normal(n)
    results.append(
        lanes(
            "f32.welch_power",
            f"n={n},segment=256,overlap=0.5",
            lambda a: welch_periodograms(a, fs, segment_length=256, overlap=0.5),
            x,
        )
    )

    captures, k = (8, 4_096) if quick else (16, 16_384)
    sig = rng.standard_normal((captures, k))
    results.append(
        lanes(
            "f32.matched_filter_rows",
            f"batch={captures},n={k}",
            lambda a: matched_filter_batched(a, design),
            sig,
        )
    )

    mfcc_cfg = MfccConfig(
        sample_rate=384_000.0,
        frame_length=256,
        frame_hop=128,
        nfft=1024,
        num_filters=20,
        num_coefficients=17,
        low_hz=15_000.0,
        high_hz=21_000.0,
    )
    segs, m = (8, 2_048) if quick else (16, 8_192)
    segments = rng.standard_normal((segs, m))
    results.append(
        lanes(
            "f32.mfcc",
            f"batch={segs},n={m},nfft=1024",
            lambda a: mfcc_batched(a, mfcc_cfg),
            segments,
        )
    )

    chirps = 200 if quick else 1_000
    results.append(
        compare_ops(
            "f32.chirp_train",
            f"chirps={chirps}",
            lambda: chirp_train_planned(design, chirps, dtype=np.float32),
            lambda: chirp_train_planned(design, chirps),
            repeats=repeats,
        )
    )

    sessions, bins = (64, 128) if quick else (1_024, 2_048)
    curves = rng.standard_normal((sessions, bins))
    results.append(
        lanes(
            "f32.correlation_matrix",
            f"sessions={sessions},bins={bins}",
            correlation_matrix,
            curves,
        )
    )

    samples, feats = (240, 105) if quick else (960, 105)
    table = rng.standard_normal((samples, feats))
    results.append(
        lanes(
            "f32.laplacian_scores",
            f"samples={samples},features={feats}",
            laplacian_scores,
            table,
        )
    )

    # The hottest op of the whole screening path: absorption curves for
    # every extracted eardrum echo of one real capture, float32 pipeline
    # (zoom-DFT lane) vs the bit-exact float64 default.
    participant = sample_participant(rng, "BENCH32")
    session_cfg = SessionConfig(duration_s=0.2 if quick else 1.0)
    recording = record_session(participant, 0.0, session_cfg, rng)
    pipe64 = EarSonarPipeline(EarSonarConfig())
    pipe32 = EarSonarPipeline(EarSonarConfig(precision="float32"))
    filtered = pipe64.preprocess(recording.waveform)
    echoes = pipe64.extract_echoes(filtered)
    if echoes:
        results.append(
            compare_ops(
                "f32.absorption_curves",
                f"echoes={len(echoes)},nfft=8192",
                lambda: pipe32.absorption_curves(echoes),
                lambda: pipe64.absorption_curves(echoes),
                repeats=repeats,
            )
        )
    return results


def _runtime_suite(seed: int, quick: bool, repeats: int) -> list[BenchResult]:
    """Dispatch-overhead pair: shared-memory handoff vs pickled dispatch.

    Times exactly the bytes-moving half of pool dispatch for one chunk
    of real recordings, with the DSP excluded.  The shm side is the
    arena round-trip the executor runs (pack into a recycled segment,
    worker-side attach + zero-copy view rebuild, release); the baseline
    is what pickled dispatch actually pays — the chunk pickled through a
    real ``multiprocessing`` pipe and unpickled on the far end, which is
    the transport ``ProcessPoolExecutor`` uses.  ``speedup`` reads as
    ``pickled_p50 / shm_p50``; the acceptance bar (>= 30% lower
    overhead) corresponds to speedup >= 1.43.
    """
    import multiprocessing
    import threading

    from ..runtime import shm
    from ..runtime.metrics import RuntimeMetrics
    from ..simulation.participant import sample_participant
    from ..simulation.session import SessionConfig, record_session

    setup_rng = np.random.default_rng(seed)
    participant = sample_participant(setup_rng, "BENCH")
    session_cfg = SessionConfig(duration_s=0.1 if quick else 1.0)
    chunk = [
        record_session(participant, 0.5 * day, session_cfg, setup_rng)
        for day in range(4 if quick else 16)
    ]
    total_bytes = sum(int(r.waveform.nbytes) for r in chunk)
    if not shm.shared_memory_available():
        return []
    metrics = RuntimeMetrics()
    arena = shm.WaveformArena(metrics)
    send_end, recv_end = multiprocessing.Pipe()

    def shm_handoff() -> int:
        payload, segment = arena.share_chunk(chunk)
        rebuilt = shm.materialize_chunk(payload)
        count = len(rebuilt)
        rebuilt = None
        shm.release_attachments()
        arena.release(segment)
        return count

    def pickled_handoff() -> int:
        # Reader thread drains the pipe concurrently, exactly like the
        # pool's worker end; sending 6 MB into an undrained pipe would
        # deadlock on the OS buffer instead of measuring transport cost.
        received: list = []
        reader = threading.Thread(target=lambda: received.append(recv_end.recv()))
        reader.start()
        send_end.send(chunk)
        reader.join()
        return len(received[0])

    try:
        return [
            compare_ops(
                "runtime.waveform_handoff",
                f"recordings={len(chunk)},bytes={total_bytes}",
                shm_handoff,
                pickled_handoff,
                repeats=repeats,
            )
        ]
    finally:
        arena.close()
        send_end.close()
        recv_end.close()


def _kernel_suite(rng: np.random.Generator, quick: bool, repeats: int) -> list[BenchResult]:
    """Micro-benchmarks: each batched kernel vs its serial oracle."""
    from ..features.laplacian import laplacian_scores, laplacian_scores_reference
    from ..kernels.spectral import batched_amplitude_spectrum
    from ..signal.chirp import (
        ChirpDesign,
        chirp_train,
        chirp_train_reference,
        matched_filter,
        matched_filter_reference,
    )
    from ..signal.correlation import correlation_matrix, correlation_matrix_reference
    from ..signal.mfcc import MfccConfig, mfcc, mfcc_reference
    from ..signal.spectral import amplitude_spectrum, welch_psd, welch_psd_reference

    results: list[BenchResult] = []
    fs = ChirpDesign().sample_rate

    n = 16_384 if quick else 96_000
    x = rng.standard_normal(n)
    results.append(
        compare_ops(
            "welch_psd",
            f"n={n},segment=256,overlap=0.5",
            lambda: welch_psd(x, fs, segment_length=256, overlap=0.5),
            lambda: welch_psd_reference(x, fs, segment_length=256, overlap=0.5),
            repeats=repeats,
        )
    )

    rows, cols = (50, 1024) if quick else (200, 4096)
    stack = rng.standard_normal((rows, cols))
    results.append(
        compare_ops(
            "amplitude_spectrum_batch",
            f"batch={rows},n={cols}",
            lambda: batched_amplitude_spectrum(stack, fs),
            lambda: [amplitude_spectrum(row, fs) for row in stack],
            repeats=repeats,
        )
    )

    mfcc_cfg = MfccConfig(
        sample_rate=384_000.0,
        frame_length=256,
        frame_hop=128,
        nfft=1024,
        num_filters=20,
        num_coefficients=17,
        low_hz=15_000.0,
        high_hz=21_000.0,
    )
    m = 4_096 if quick else 16_384
    seg = rng.standard_normal(m)
    results.append(
        compare_ops(
            "mfcc",
            f"n={m},frame=256,hop=128,nfft=1024",
            lambda: mfcc(seg, mfcc_cfg),
            lambda: mfcc_reference(seg, mfcc_cfg),
            repeats=repeats,
        )
    )

    sessions, bins = (24, 128) if quick else (64, 512)
    curves = rng.standard_normal((sessions, bins))
    results.append(
        compare_ops(
            "correlation_matrix",
            f"sessions={sessions},bins={bins}",
            lambda: correlation_matrix(curves),
            lambda: correlation_matrix_reference(curves),
            repeats=repeats,
        )
    )

    samples, feats = (60, 40) if quick else (240, 105)
    table = rng.standard_normal((samples, feats))
    results.append(
        compare_ops(
            "laplacian_scores",
            f"samples={samples},features={feats}",
            lambda: laplacian_scores(table),
            lambda: laplacian_scores_reference(table),
            repeats=repeats,
        )
    )

    design = ChirpDesign()
    chirps = 50 if quick else 200
    results.append(
        compare_ops(
            "chirp_train",
            f"chirps={chirps}",
            lambda: chirp_train(design, chirps),
            lambda: chirp_train_reference(design, chirps),
            repeats=repeats,
        )
    )

    k = 8_192 if quick else 48_000
    capture = rng.standard_normal(k)
    results.append(
        compare_ops(
            "matched_filter",
            f"n={k}",
            lambda: matched_filter(capture, design),
            lambda: matched_filter_reference(capture, design),
            repeats=repeats,
        )
    )
    return results


def _pipeline_suite(seed: int, quick: bool, repeats: int) -> list[BenchResult]:
    """Pipeline-shaped stages on one real simulated recording."""
    from ..acoustics.ear import InsertionState, build_ear_channel
    from ..core.config import EarSonarConfig
    from ..core.pipeline import EarSonarPipeline
    from ..signal.mfcc import MfccConfig, mfcc, mfcc_reference
    from ..signal.spectral import welch_psd, welch_psd_reference
    from ..simulation.earphone import PROTOTYPE
    from ..simulation.participant import sample_participant
    from ..simulation.session import (
        SessionConfig,
        _apply_device,
        _apply_device_reference,
        _synthesize_train,
        _synthesize_train_reference,
        record_session,
    )

    results: list[BenchResult] = []
    setup_rng = np.random.default_rng(seed)
    participant = sample_participant(setup_rng, "BENCH")
    session_cfg = SessionConfig(duration_s=0.2 if quick else 1.0)
    insertion = InsertionState(
        depth_m=session_cfg.insertion_depth_m, angle_deg=0.0, seal_quality=0.95
    )
    load = participant.load_on(0.0, setup_rng)
    channel = build_ear_channel(
        participant.geometry, participant.drum_model, load, insertion
    )

    def synth_batched() -> np.ndarray:
        return _synthesize_train(channel, session_cfg, np.random.default_rng(seed))

    def synth_serial() -> np.ndarray:
        return _synthesize_train_reference(
            channel, session_cfg, np.random.default_rng(seed)
        )

    results.append(
        compare_ops(
            "record_session_synthesis",
            f"chirps={session_cfg.num_chirps}",
            synth_batched,
            synth_serial,
            repeats=repeats,
        )
    )

    waveform = synth_batched()
    fs = session_cfg.chirp.sample_rate
    results.append(
        compare_ops(
            "device_coloration",
            f"n={waveform.size}",
            lambda: _apply_device(waveform, PROTOTYPE, fs),
            lambda: _apply_device_reference(waveform, PROTOTYPE, fs),
            repeats=repeats,
        )
    )

    pipeline = EarSonarPipeline(EarSonarConfig())
    recording = record_session(
        participant, 0.0, session_cfg, np.random.default_rng(seed + 1)
    )
    filtered = pipeline.preprocess(recording.waveform)
    echoes = pipeline.extract_echoes(filtered)
    if echoes:
        results.append(
            compare_ops(
                "absorption_curves",
                f"echoes={len(echoes)},nfft=8192",
                lambda: pipeline.absorption_curves(echoes),
                lambda: [pipeline.absorption_curve(e) for e in echoes],
                repeats=repeats,
            )
        )
        mean_segment = np.stack([e.segment for e in echoes]).mean(axis=0)
        rate = echoes[0].sample_rate
        mfcc_cfg = MfccConfig(
            sample_rate=rate,
            frame_length=256,
            frame_hop=128,
            nfft=1024,
            num_filters=20,
            num_coefficients=17,
            low_hz=15_000.0,
            high_hz=21_000.0,
        )
        # The spectral feature path as the experiments run it: Welch PSD
        # of the band-passed capture (the Fig. 9 consistency input) plus
        # MFCCs of the mean eardrum-echo segment (the Sec. IV-C input).
        results.append(
            compare_ops(
                "welch_mfcc_feature_path",
                f"capture={filtered.size},segment={mean_segment.size}",
                lambda: (
                    welch_psd(filtered, fs, segment_length=512),
                    mfcc(mean_segment, mfcc_cfg),
                ),
                lambda: (
                    welch_psd_reference(filtered, fs, segment_length=512),
                    mfcc_reference(mean_segment, mfcc_cfg),
                ),
                repeats=repeats,
            )
        )
    return results


def _obs_suite(
    seed: int, quick: bool, repeats: int, trace_dir: Path | None = None
) -> list[BenchResult]:
    """Tracing overhead: one batch run traced vs the NullTracer path.

    The ``serial`` side is the default (tracing disabled) run, so
    ``speedup`` reads as ``untraced_p50 / traced_p50`` — 1.0 means free
    tracing, and the overhead percentage is ``(1/speedup - 1) * 100``.
    When ``trace_dir`` is given, the artifacts of one traced run
    (run record, Chrome trace, events, Prometheus text) are written
    there so CI can upload them next to the BENCH reports.
    """
    from ..core.config import EarSonarConfig
    from ..core.pipeline import EarSonarPipeline
    from ..obs import EventLog, Tracer, capture_manifest, use_event_log, use_tracer
    from ..obs.export import write_run_record
    from ..runtime.executor import BatchExecutor
    from ..runtime.metrics import RuntimeMetrics
    from ..simulation.cohort import StudyDesign, build_cohort, simulate_study
    from ..simulation.session import SessionConfig

    rng = np.random.default_rng(seed)
    participants = 2 if quick else 4
    cohort = build_cohort(participants, rng, total_days=8)
    design = StudyDesign(
        total_days=2 if quick else 4,
        sessions_per_day=1,
        session_config=SessionConfig(duration_s=0.1 if quick else 0.25),
    )
    recordings = simulate_study(cohort, design, rng).recordings
    config = EarSonarConfig()
    untraced_exec = BatchExecutor(EarSonarPipeline(config))
    traced_metrics = RuntimeMetrics()
    traced_exec = BatchExecutor(EarSonarPipeline(config), metrics=traced_metrics)
    last: dict = {}

    def run_traced():
        tracer, log = Tracer(), EventLog()
        with use_tracer(tracer), use_event_log(log):
            result = traced_exec.run(recordings)
        last["tracer"], last["log"] = tracer, log
        return result

    comparison = compare_ops(
        "batch_screening_traced",
        f"recordings={len(recordings)}",
        run_traced,
        lambda: untraced_exec.run(recordings),
        repeats=repeats,
        # The expected ratio is ~1.0, so block-ordered timing would let
        # clock drift masquerade as tracing overhead; interleave pairs.
        interleave=True,
    )
    if trace_dir is not None:
        write_run_record(
            trace_dir,
            spans=last["tracer"].traces,
            metrics=traced_metrics,
            manifest=capture_manifest(config=config, seed=seed),
            events=last["log"],
        )
    return [comparison]


def overhead_pct(result: BenchResult) -> float | None:
    """Tracing overhead percent from an obs-suite comparison record."""
    if result.serial_p50_ms is None or result.serial_p50_ms <= 0.0:
        return None
    return (result.p50_ms / result.serial_p50_ms - 1.0) * 100.0


def _print_table(title: str, results: list[BenchResult]) -> None:
    """Echo one report as an aligned terminal table."""
    print(f"\n{title}")
    header = f"{'op':<28}{'shape':<34}{'p50 ms':>10}{'serial p50':>12}{'speedup':>9}"
    print(header)
    print("-" * len(header))
    for r in results:
        serial = f"{r.serial_p50_ms:.3f}" if r.serial_p50_ms is not None else "-"
        speed = f"{r.speedup:.1f}x" if r.speedup is not None else "-"
        print(f"{r.op:<28}{r.shape:<34}{r.p50_ms:>10.3f}{serial:>12}{speed:>9}")


def main(argv: list[str] | None = None) -> int:
    """Run both suites and write the BENCH_*.json reports."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark batched DSP kernels against their serial oracles.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small problem sizes for CI smoke runs"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timed calls per op (default 7, quick 3)"
    )
    parser.add_argument(
        "--output-dir", type=Path, default=Path("."), help="where BENCH_*.json land"
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed for inputs")
    parser.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="write one traced run's record/Chrome-trace artifacts here",
    )
    parser.add_argument(
        "--fail-overhead-pct",
        type=float,
        default=None,
        help="exit 1 if tracing-enabled batch p50 exceeds the disabled "
        "path by more than this percent",
    )
    parser.add_argument(
        "--trajectory",
        type=Path,
        default=None,
        help="append this run's per-op numbers to the given "
        "BENCH_trajectory.json (append-only perf history)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="after appending, fail if any op regressed past "
        "--gate-tolerance on both p50 and speedup vs the previous "
        "same-machine trajectory entry",
    )
    parser.add_argument(
        "--gate-tolerance",
        type=float,
        default=0.20,
        help="fractional slowdown the gate tolerates on each signal "
        "(default 0.20)",
    )
    args = parser.parse_args(argv)

    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 7)
    rng = np.random.default_rng(args.seed)

    kernel_results = _kernel_suite(rng, args.quick, repeats)
    backend_results = _backend_suite(rng, args.quick, repeats)
    pipeline_results = _pipeline_suite(args.seed, args.quick, repeats)
    runtime_results = _runtime_suite(args.seed, args.quick, repeats)
    obs_results = _obs_suite(args.seed, args.quick, repeats, args.trace_dir)

    from ..core.config import EarSonarConfig

    sha = git_sha()
    machine = machine_fingerprint()
    fingerprint = EarSonarConfig().fingerprint()
    stamp = {
        "quick": args.quick,
        "seed": args.seed,
        "sha": sha,
        "machine": machine,
        "config_fingerprint": fingerprint,
    }
    args.output_dir.mkdir(parents=True, exist_ok=True)
    kernels_path = write_report(
        args.output_dir / "BENCH_kernels.json", kernel_results, label="kernels", **stamp
    )
    backends_path = write_report(
        args.output_dir / "BENCH_backends.json",
        backend_results,
        label="backends",
        **stamp,
    )
    pipeline_path = write_report(
        args.output_dir / "BENCH_pipeline.json",
        pipeline_results,
        label="pipeline",
        **stamp,
    )
    runtime_path = write_report(
        args.output_dir / "BENCH_runtime.json", runtime_results, label="runtime", **stamp
    )
    obs_path = write_report(
        args.output_dir / "BENCH_obs.json", obs_results, label="obs", **stamp
    )

    _print_table("kernel micro-benchmarks (batched vs serial oracle)", kernel_results)
    _print_table("backend lanes (float32 fast lane vs float64 reference)", backend_results)
    _print_table("pipeline stages (batched vs serial oracle)", pipeline_results)
    if runtime_results:
        _print_table("runtime dispatch (zero-copy shm vs pickled handoff)", runtime_results)
    _print_table("observability overhead (traced vs disabled)", obs_results)
    overhead = overhead_pct(obs_results[0])
    if overhead is not None:
        print(f"\ntracing overhead: {overhead:+.2f}% on batch p50")
    print(
        f"wrote {kernels_path}, {backends_path}, {pipeline_path}, "
        f"{runtime_path} and {obs_path}"
    )

    failed = False
    if args.trajectory is not None:
        # The obs op is namespaced like the f32./runtime. suites so the
        # ratchet tracks tracing overhead per entry: its speedup is
        # untraced/traced p50, so a drop past tolerance (more overhead)
        # plus a p50 rise fails the gate like any kernel regression.
        trajectory_results = (
            kernel_results
            + backend_results
            + runtime_results
            + [dataclasses.replace(r, op=f"obs.{r.op}") for r in obs_results]
        )
        append_entry(
            args.trajectory,
            trajectory_results,
            seed=args.seed,
            quick=args.quick,
            sha=sha,
            machine=machine,
        )
        print(f"appended trajectory entry ({len(trajectory_results)} ops) to {args.trajectory}")
        if args.gate:
            regressions, detail = check_gate(
                args.trajectory, tolerance=args.gate_tolerance
            )
            print(f"bench-gate: {detail}")
            for reg in regressions:
                speedup_note = ""
                if reg.baseline_speedup is not None and reg.current_speedup is not None:
                    speedup_note = (
                        f", speedup {reg.baseline_speedup:.2f}x -> "
                        f"{reg.current_speedup:.2f}x"
                    )
                print(
                    f"FAIL: {reg.op} regressed {reg.ratio:.2f}x "
                    f"({reg.baseline_p50_ms:.3f} ms -> "
                    f"{reg.current_p50_ms:.3f} ms{speedup_note})"
                )
            failed = failed or bool(regressions)

    if (
        args.fail_overhead_pct is not None
        and overhead is not None
        and overhead > args.fail_overhead_pct
    ):
        print(
            f"FAIL: tracing overhead {overhead:+.2f}% exceeds "
            f"{args.fail_overhead_pct:g}% budget"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
