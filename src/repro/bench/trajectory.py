"""Append-only perf trajectory and its regression gate.

``BENCH_trajectory.json`` is the committed, machine-readable history of
kernel performance across the stacked PRs: one entry per benchmark
invocation, stamped with the git SHA, seed, and machine fingerprint,
holding per-op p50/p95/speedup numbers.  Entries are *appended*, never
rewritten — the file is the trajectory, so a regression is visible as
two adjacent entries, not as a silently replaced number.

:func:`check_gate` implements the CI bench-gate: the newest entry is
compared against the most recent *prior* entry from the same machine
fingerprint and problem-size class (``quick``), and an op fails the
gate when **both** regression signals agree: its p50 slowed beyond the
noise tolerance *and* its in-run speedup (batched vs the serial twin
measured seconds apart under identical load) dropped beyond the same
tolerance.  Raw p50s are hostage to CPU frequency scaling and noisy
neighbours — on a busy runner a 30 µs op can "regress" 30% between two
invocations of the same binary — but a genuine kernel regression moves
both numbers, because the serial oracle it is measured against did not
change.  Cross-machine entries are never compared — a laptop following
a CI runner in the file is history, not a regression.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from . import BenchResult, git_sha, machine_fingerprint

__all__ = [
    "TRAJECTORY_SCHEMA_VERSION",
    "Regression",
    "append_entry",
    "load_entries",
    "check_gate",
]

TRAJECTORY_SCHEMA_VERSION = 1

#: Default slowdown tolerance of the gate: p50 may drift up to 20%
#: before the gate fails, absorbing shared-runner timing noise.
DEFAULT_TOLERANCE = 0.20


@dataclass(frozen=True)
class Regression:
    """One op that slowed past the gate tolerance on both signals."""

    op: str
    baseline_p50_ms: float
    current_p50_ms: float
    baseline_speedup: float | None = None
    current_speedup: float | None = None

    @property
    def ratio(self) -> float:
        """Slowdown factor (current / baseline); > 1 is slower."""
        if self.baseline_p50_ms <= 0.0:
            return float("inf")
        return self.current_p50_ms / self.baseline_p50_ms


def load_entries(path: Path) -> list[dict]:
    """Entries of a trajectory file (empty for missing/unreadable)."""
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    entries = payload.get("entries", []) if isinstance(payload, dict) else []
    return entries if isinstance(entries, list) else []


def append_entry(
    path: Path,
    results: list[BenchResult],
    *,
    seed: int,
    quick: bool,
    sha: str | None = None,
    machine: str | None = None,
) -> dict:
    """Append one trajectory entry summarising ``results`` to ``path``.

    Returns the entry appended.  Ops are keyed by their record name;
    callers merging several suites into one entry must namespace the
    op names (the CLI uses ``f32.*`` / ``runtime.*`` prefixes).
    """
    entry = {
        "git_sha": sha if sha is not None else git_sha(),
        "seed": seed,
        "quick": quick,
        "machine": machine if machine is not None else machine_fingerprint(),
        "ops": {
            r.op: {
                "p50_ms": r.p50_ms,
                "p95_ms": r.p95_ms,
                "speedup": r.speedup,
            }
            for r in results
        },
    }
    entries = load_entries(path)
    entries.append(entry)
    payload = {"schema_version": TRAJECTORY_SCHEMA_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return entry


def check_gate(
    path: Path, *, tolerance: float = DEFAULT_TOLERANCE
) -> tuple[list[Regression], str]:
    """Compare the newest entry against its same-machine predecessor.

    An op regresses only when both signals cross ``tolerance``: p50
    slowed by more than it *and* the in-run speedup dropped by more
    than it (an op without a recorded speedup gates on p50 alone).  A
    p50 rise with a stable speedup is machine noise — both lanes of
    the pair slowed together — not a kernel regression.

    Returns ``(regressions, explanation)``; an empty regression list
    with a descriptive message means the gate passes (including the
    vacuous cases: fewer than two comparable entries, or no shared
    ops).  Ops present in only one of the two entries are skipped —
    adding or retiring a benchmark is not a regression.
    """
    entries = load_entries(path)
    if not entries:
        return [], f"no trajectory entries in {path}"
    current = entries[-1]
    baseline = next(
        (
            e
            for e in reversed(entries[:-1])
            if e.get("machine") == current.get("machine")
            and e.get("quick") == current.get("quick")
        ),
        None,
    )
    if baseline is None:
        return [], "no prior same-machine entry to compare against"
    regressions: list[Regression] = []
    shared = 0
    for op, stats in current.get("ops", {}).items():
        base = baseline.get("ops", {}).get(op)
        if base is None:
            continue
        shared += 1
        base_p50 = float(base.get("p50_ms", 0.0))
        cur_p50 = float(stats.get("p50_ms", 0.0))
        if not (base_p50 > 0.0 and cur_p50 > base_p50 * (1.0 + tolerance)):
            continue
        base_speedup = base.get("speedup")
        cur_speedup = stats.get("speedup")
        if base_speedup is not None and cur_speedup is not None:
            if float(cur_speedup) >= float(base_speedup) * (1.0 - tolerance):
                continue  # speedup held up: the pair slowed together (noise)
        regressions.append(
            Regression(
                op=op,
                baseline_p50_ms=base_p50,
                current_p50_ms=cur_p50,
                baseline_speedup=(
                    float(base_speedup) if base_speedup is not None else None
                ),
                current_speedup=(
                    float(cur_speedup) if cur_speedup is not None else None
                ),
            )
        )
    message = (
        f"compared {shared} op(s) against {baseline.get('git_sha', '?')[:12]} "
        f"at {tolerance:.0%} tolerance"
    )
    return regressions, message
