"""EarSonar core: the paper's primary contribution.

Composes the DSP, acoustics, feature and learning substrates into the
four-module system of Fig. 5 — acoustic signal collection (see
``repro.simulation``), signal preprocessing, acoustic absorption
analysis, and MEE detection — plus the study-level evaluation protocol
and the home-screening API.
"""

from .config import (
    BandpassConfig,
    CalibrationConfig,
    DetectorConfig,
    EarSonarConfig,
    config_fingerprint,
)
from .detector import MeeDetector
from .diagnostics import QualityThresholds, RecordingQuality, diagnose
from .evaluation import (
    FeatureTable,
    evaluate_loocv,
    evaluate_split,
    extract_features,
    time_inference,
)
from .pipeline import EarSonarPipeline
from .results import (
    EvaluationResult,
    ProcessedRecording,
    ScreeningResult,
    index_to_state,
    state_to_index,
)
from .screening import EarSonarScreener
from .severity import RidgeRegression, SeverityEstimator

__all__ = [
    "BandpassConfig",
    "CalibrationConfig",
    "DetectorConfig",
    "EarSonarConfig",
    "config_fingerprint",
    "MeeDetector",
    "QualityThresholds",
    "RecordingQuality",
    "diagnose",
    "FeatureTable",
    "evaluate_loocv",
    "evaluate_split",
    "extract_features",
    "time_inference",
    "EarSonarPipeline",
    "EvaluationResult",
    "ProcessedRecording",
    "ScreeningResult",
    "index_to_state",
    "state_to_index",
    "EarSonarScreener",
    "RidgeRegression",
    "SeverityEstimator",
]
