"""End-to-end EarSonar configuration.

One :class:`EarSonarConfig` object wires together every stage of the
paper's pipeline — chirp design, band-pass filter, event detection,
echo segmentation, feature extraction, and detection — with the
published defaults.  Stage configs remain independently usable; this
container exists so applications configure the system in one place.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum

from ..acoustics.reverb import ReverbConfig
from ..errors import ConfigurationError
from ..features.vector import FeatureVectorConfig
from ..signal.chirp import ChirpDesign
from ..signal.events import EventDetectorConfig
from ..signal.parity import EchoSegmenterConfig

__all__ = [
    "BandpassConfig",
    "CalibrationConfig",
    "DetectorConfig",
    "EarSonarConfig",
    "config_fingerprint",
]


def _canonicalize(value):
    """Reduce a config value to a deterministic JSON-serializable form.

    Dataclasses become ``{"<ClassName>": {field: ...}}`` so that moving a
    value between differently-named sub-configs cannot collide; floats go
    through ``repr`` to keep full precision across platforms.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonicalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {type(value).__name__: fields}
    if isinstance(value, Enum):
        return [type(value).__name__, value.name]
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return [_canonicalize(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonicalize(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise ConfigurationError(
        f"cannot fingerprint config value of type {type(value).__name__}"
    )


def config_fingerprint(config: object) -> str:
    """Stable SHA-256 hex digest of a (possibly nested) config dataclass.

    Two configs share a fingerprint iff every nested field is equal, so
    the digest is safe to use as a cache namespace: any parameter change
    anywhere in the tree invalidates previously cached results.
    """
    canonical = json.dumps(
        _canonicalize(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class BandpassConfig:
    """Butterworth band-pass settings for noise removal (Sec. IV-B1)."""

    order: int = 4
    low_hz: float = 15_000.0
    high_hz: float = 21_000.0

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ConfigurationError(f"order must be >= 1, got {self.order}")
        if not 0.0 < self.low_hz < self.high_hz:
            raise ConfigurationError("need 0 < low_hz < high_hz")


@dataclass(frozen=True)
class DetectorConfig:
    """K-means detection settings (Sec. IV-C3/C4).

    Attributes
    ----------
    num_states:
        Number of effusion states (paper: 4).
    clusters_per_state:
        Sub-clusters per state for the paper's *in-group* k-means
        (Sec. IV-C3): each state's recordings spread along a severity
        continuum, so several Euclidean sub-clusters per state fit the
        manifold; every sub-cluster maps to its majority training
        state.  1 recovers plain one-cluster-per-state k-means.
    selected_features:
        Features kept by Laplacian score (paper: 25 of 105).
    kmeans_restarts:
        k-means++ restarts per fit.
    outlier_removal:
        Whether to run the multi-loop outlier confirmation before the
        final fit.
    outlier_loops:
        Independent clusterings used to confirm outliers.
    seed:
        Seed for all stochastic learning components.
    """

    num_states: int = 4
    clusters_per_state: int = 4
    selected_features: int = 25
    kmeans_restarts: int = 10
    outlier_removal: bool = True
    outlier_loops: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_states < 2:
            raise ConfigurationError(f"num_states must be >= 2, got {self.num_states}")
        if self.clusters_per_state < 1:
            raise ConfigurationError(
                f"clusters_per_state must be >= 1, got {self.clusters_per_state}"
            )
        if self.selected_features < 1:
            raise ConfigurationError(
                f"selected_features must be >= 1, got {self.selected_features}"
            )
        if self.kmeans_restarts < 1:
            raise ConfigurationError(
                f"kmeans_restarts must be >= 1, got {self.kmeans_restarts}"
            )
        if self.outlier_loops < 1:
            raise ConfigurationError(f"outlier_loops must be >= 1, got {self.outlier_loops}")


@dataclass(frozen=True)
class RobustnessConfig:
    """Graceful-degradation policy of the signal pipeline.

    Attributes
    ----------
    sanitize_nonfinite:
        When true, NaN/Inf samples are zero-filled (becoming ordinary
        dropouts) and processing continues with a reduced confidence
        tag, provided their fraction stays below
        ``max_nonfinite_fraction``.  When false (the default), any
        non-finite sample raises
        :class:`~repro.errors.InvalidWaveformError` — a loud, typed
        failure instead of NaN-poisoned features.
    max_nonfinite_fraction:
        Ceiling on the salvageable NaN/Inf fraction; beyond it the
        recording is rejected even under ``sanitize_nonfinite``.
    drop_corrupted_chirps:
        When true (the default), chirps whose echo segment or
        absorption curve is non-finite or identically zero are dropped
        from the train and the survivors are averaged; the result
        carries ``confidence < 1`` and ``num_chirps_dropped``.  On a
        clean recording nothing is dropped and the output is
        bit-identical to the strict path.
    """

    sanitize_nonfinite: bool = False
    max_nonfinite_fraction: float = 0.1
    drop_corrupted_chirps: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_nonfinite_fraction <= 1.0:
            raise ConfigurationError(
                "max_nonfinite_fraction must be in [0, 1], "
                f"got {self.max_nonfinite_fraction}"
            )


@dataclass(frozen=True)
class CalibrationConfig:
    """On-device calibration-offset estimation (à la Xu & Kollmeier).

    Consumer earphones drift out of calibration over weeks of use: a
    broadband gain error plus a spectral tilt across the probe band.
    When enabled, the pipeline fits a dB-linear baseline (gain + tilt)
    to the *band edges* of every per-echo absorption curve — away from
    the diagnostic ~18 kHz notch — divides the pooled baseline out, and
    reports the recovered gain as
    ``ProcessedRecording.calibration_offset_db``.

    Attributes
    ----------
    enabled:
        Master switch; False (the default) skips the stage entirely, so
        disabled runs stay bit-identical to the seed pipeline.
    edge_fraction:
        Fraction of grid bins at *each* band edge used for the baseline
        fit; kept small so the notch region never leaks into the fit.
    max_offset_db:
        Clamp on the estimated gain and tilt; estimates beyond this are
        physically implausible (a device that far out of spec fails the
        quality gate long before calibration matters).
    reference_level_db:
        Fleet-average band-edge level of a *calibrated* device on the
        default TX reference; the reported
        ``ProcessedRecording.calibration_offset_db`` is the fitted
        baseline gain relative to this anchor, so a calibrated capture
        reports ~0 dB and a drifted one reports its broadband gain
        error (the Xu & Kollmeier deviation-from-reference estimate).
        The anchor only shifts the *report*; the correction divides out
        the full fitted baseline either way.
    instability_db:
        Ceiling on the per-echo spread (standard deviation) of the
        fitted gain.  Beyond it the estimate is judged unstable: the
        correction is still applied (it is the pooled median, robust to
        a few bad echoes) but the recording's confidence is downgraded
        and tagged ``calibration_unstable``.
    unstable_confidence:
        Multiplier applied to ``ProcessedRecording.confidence`` when
        the estimate is unstable.
    """

    enabled: bool = False
    edge_fraction: float = 0.15
    max_offset_db: float = 12.0
    reference_level_db: float = -1.7
    instability_db: float = 6.0
    unstable_confidence: float = 0.75

    def __post_init__(self) -> None:
        if not 0.0 < self.edge_fraction <= 0.4:
            raise ConfigurationError(
                f"edge_fraction must be in (0, 0.4], got {self.edge_fraction}"
            )
        if self.max_offset_db <= 0.0:
            raise ConfigurationError(
                f"max_offset_db must be positive, got {self.max_offset_db}"
            )
        if self.instability_db <= 0.0:
            raise ConfigurationError(
                f"instability_db must be positive, got {self.instability_db}"
            )
        if not 0.0 < self.unstable_confidence <= 1.0:
            raise ConfigurationError(
                f"unstable_confidence must be in (0, 1], got {self.unstable_confidence}"
            )


@dataclass(frozen=True)
class EarSonarConfig:
    """Complete EarSonar system configuration with the paper's defaults."""

    chirp: ChirpDesign = field(default_factory=ChirpDesign)
    bandpass: BandpassConfig = field(default_factory=BandpassConfig)
    events: EventDetectorConfig = field(default_factory=EventDetectorConfig)
    segmenter: EchoSegmenterConfig = field(default_factory=EchoSegmenterConfig)
    features: FeatureVectorConfig = field(default_factory=FeatureVectorConfig)
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    robustness: RobustnessConfig = field(default_factory=RobustnessConfig)
    #: Echo-aware separation: when ``reverb.enabled`` the pipeline runs
    #: the rake stage that estimates and subtracts early canal
    #: reflections before echo segmentation.  Disabled (the default) is
    #: bit-identical to the anechoic seed pipeline.
    reverb: ReverbConfig = field(default_factory=ReverbConfig)
    #: On-device calibration-offset estimation; disabled by default.
    calibration: CalibrationConfig = field(default_factory=CalibrationConfig)
    #: Minimum echoes that must be extracted for a recording to count.
    min_echoes: int = 3
    #: Numeric lane of the spectral/feature half of the pipeline:
    #: ``"float64"`` (default) is bit-identical to the serial
    #: references; ``"float32"`` runs the backend-dispatched fast lane,
    #: equivalent within the tolerance budget documented in DESIGN.md.
    #: Pre-DSP stages (band-pass, event detection, segmentation) and
    #: the quality gate always run in float64, so gate decisions and
    #: echo boundaries are precision-independent by construction.
    precision: str = "float64"

    def __post_init__(self) -> None:
        if self.min_echoes < 1:
            raise ConfigurationError(f"min_echoes must be >= 1, got {self.min_echoes}")
        if self.precision not in ("float64", "float32"):
            raise ConfigurationError(
                f"precision must be 'float64' or 'float32', got {self.precision!r}"
            )
        if self.segmenter.sample_rate != self.chirp.sample_rate:
            raise ConfigurationError(
                "segmenter sample_rate must match the chirp design sample_rate"
            )
        if not (
            self.bandpass.low_hz
            <= self.chirp.start_frequency
            < self.chirp.end_frequency
            <= self.bandpass.high_hz
        ):
            raise ConfigurationError(
                "band-pass filter must contain the chirp sweep band"
            )

    def fingerprint(self) -> str:
        """Content hash of the full configuration tree.

        Used by :mod:`repro.runtime.cache` as part of every cache key:
        features computed under one configuration are never served for
        another, however small the difference.
        """
        return config_fingerprint(self)
