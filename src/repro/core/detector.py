"""MEE detection: feature selection + k-means + cluster naming.

``MeeDetector`` implements the paper's detection module (Sec. IV-C3/C4):
z-score the training vectors, keep the 25 most important features by
Laplacian score, optionally confirm-and-drop outliers over several
clustering loops, fit k-means with four clusters, and name the clusters
with the ground-truth states of the training recordings (the paper's
LOOCV "training" step).  Prediction assigns new vectors to the nearest
centre and reports the mapped state.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError, NotFittedError
from ..features.laplacian import LaplacianScoreSelector
from ..learning.kmeans import KMeans
from ..learning.mapping import map_clusters_to_labels
from ..learning.outliers import remove_outliers_multiloop
from ..learning.scaling import StandardScaler
from ..simulation.effusion import MeeState
from .config import DetectorConfig
from .results import index_to_state, state_to_index

__all__ = ["MeeDetector"]


class MeeDetector:
    """Cluster-based four-state MEE classifier."""

    def __init__(self, config: DetectorConfig | None = None) -> None:
        self.config = config or DetectorConfig()
        self._scaler: StandardScaler | None = None
        self._selector: LaplacianScoreSelector | None = None
        self._kmeans: KMeans | None = None
        self._cluster_to_label: dict[int, int] | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._cluster_to_label is not None

    # ------------------------------------------------------------------

    def fit(self, features: np.ndarray, states: list[MeeState]) -> "MeeDetector":
        """Fit the detection chain on labelled training recordings.

        ``states`` are the clinical ground-truth labels of the training
        vectors; clustering itself is unsupervised, the labels only
        name the resulting clusters.
        """
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise ModelError(f"features must be 2-D, got shape {features.shape}")
        if features.shape[0] != len(states):
            raise ModelError(
                f"{features.shape[0]} vectors vs {len(states)} labels"
            )
        cfg = self.config
        num_clusters = cfg.num_states * cfg.clusters_per_state
        if features.shape[0] < num_clusters:
            raise ModelError(
                f"need at least {num_clusters} training samples, got {features.shape[0]}"
            )
        labels = np.array([state_to_index(s) for s in states])

        scaler = StandardScaler()
        scaled = scaler.fit_transform(features)
        selector = LaplacianScoreSelector(num_features=cfg.selected_features)
        reduced = selector.fit_transform(scaled)

        keep = np.ones(reduced.shape[0], dtype=bool)
        if cfg.outlier_removal and reduced.shape[0] > 4 * num_clusters:
            keep = remove_outliers_multiloop(
                reduced,
                num_clusters=num_clusters,
                num_loops=cfg.outlier_loops,
                seed=cfg.seed,
            )
            if keep.sum() < num_clusters:
                keep = np.ones(reduced.shape[0], dtype=bool)

        model = KMeans(
            num_clusters=num_clusters,
            num_restarts=cfg.kmeans_restarts,
            seed=cfg.seed,
        )
        model.fit(reduced[keep])
        cluster_ids = model.predict(reduced)
        mapping = map_clusters_to_labels(
            cluster_ids, labels, num_clusters, len(MeeState.ordered())
        )
        self._scaler = scaler
        self._selector = selector
        self._kmeans = model
        self._cluster_to_label = mapping
        return self

    # ------------------------------------------------------------------

    def _transform(self, features: np.ndarray) -> np.ndarray:
        if self._scaler is None or self._selector is None:
            raise NotFittedError("MeeDetector used before fit")
        features = np.asarray(features, dtype=float)
        single = features.ndim == 1
        if single:
            features = features[None, :]
        return self._selector.transform(self._scaler.transform(features))

    def predict_indices(self, features: np.ndarray) -> np.ndarray:
        """Predicted class indices for one or more feature vectors."""
        if self._kmeans is None or self._cluster_to_label is None:
            raise NotFittedError("MeeDetector.predict called before fit")
        reduced = self._transform(features)
        clusters = self._kmeans.predict(reduced)
        return np.array([self._cluster_to_label[int(c)] for c in clusters])

    def predict(self, features: np.ndarray) -> list[MeeState]:
        """Predicted states for one or more feature vectors."""
        return [index_to_state(int(i)) for i in self.predict_indices(features)]

    def decision_distances(self, features: np.ndarray) -> np.ndarray:
        """Distance of each vector to each *state's* centre.

        Columns are ordered by class index (CLEAR..PURULENT); used by
        the screening API to derive a confidence margin.
        """
        if self._kmeans is None or self._cluster_to_label is None:
            raise NotFittedError("MeeDetector used before fit")
        reduced = self._transform(features)
        cluster_distances = self._kmeans.transform(reduced)
        num_labels = len(MeeState.ordered())
        out = np.full((reduced.shape[0], num_labels), np.inf)
        for cluster, label in self._cluster_to_label.items():
            # A label may receive several clusters when num_states >
            # num_labels; keep the closest centre per label.
            out[:, label] = np.minimum(out[:, label], cluster_distances[:, cluster])
        return out
