"""Recording-quality diagnostics: is this capture usable?

The paper recommends re-measuring when the earbud is badly placed or
the room is loud (Sec. VI-C).  A home-use system needs to *detect*
those conditions instead of silently mis-grading, so this module
scores a recording before screening:

* **in-band SNR** — chirp-event energy against the inter-event noise
  floor, in dB;
* **echo yield** — fraction of detected events that produced a valid
  eardrum echo;
* **chirp regularity** — how close the event spacing is to the 5 ms
  design (motion artifacts and clipping disturb it);
* **curve stability** — agreement between the absorption curves of the
  recording's two halves (a stationary ear gives nearly identical
  halves; movement and transients do not).

``diagnose`` aggregates these into a :class:`RecordingQuality` with a
conservative overall verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import NoEchoFoundError
from ..signal.correlation import pearson
from ..simulation.session import Recording
from .pipeline import EarSonarPipeline

__all__ = ["QualityThresholds", "RecordingQuality", "diagnose"]


@dataclass(frozen=True)
class QualityThresholds:
    """Acceptance thresholds for the individual quality scores."""

    min_snr_db: float = 12.0
    min_echo_yield: float = 0.6
    max_spacing_deviation: float = 0.1
    min_curve_stability: float = 0.9


@dataclass
class RecordingQuality:
    """Quality scores of one recording plus the overall verdict."""

    snr_db: float
    echo_yield: float
    spacing_deviation: float
    curve_stability: float
    thresholds: QualityThresholds

    @property
    def snr_ok(self) -> bool:
        """In-band SNR clears the threshold."""
        return self.snr_db >= self.thresholds.min_snr_db

    @property
    def yield_ok(self) -> bool:
        """Enough events produced eardrum echoes."""
        return self.echo_yield >= self.thresholds.min_echo_yield

    @property
    def spacing_ok(self) -> bool:
        """Events arrive on the chirp grid."""
        return self.spacing_deviation <= self.thresholds.max_spacing_deviation

    @property
    def stability_ok(self) -> bool:
        """First- and second-half curves agree."""
        return self.curve_stability >= self.thresholds.min_curve_stability

    @property
    def usable(self) -> bool:
        """Conservative verdict: all checks must pass."""
        return self.snr_ok and self.yield_ok and self.spacing_ok and self.stability_ok

    def issues(self) -> list[str]:
        """Human-readable list of failed checks."""
        problems = []
        if not self.snr_ok:
            problems.append(
                f"low in-band SNR ({self.snr_db:.1f} dB < {self.thresholds.min_snr_db:.0f} dB): "
                "room too loud or seal leaking"
            )
        if not self.yield_ok:
            problems.append(
                f"low echo yield ({100 * self.echo_yield:.0f}%): earbud likely misplaced"
            )
        if not self.spacing_ok:
            problems.append(
                f"irregular chirp events (deviation {100 * self.spacing_deviation:.0f}%): "
                "movement or clipping"
            )
        if not self.stability_ok:
            problems.append(
                f"unstable spectrum (half-to-half corr {self.curve_stability:.2f}): "
                "conditions changed during the capture"
            )
        return problems


def diagnose(
    recording: Recording,
    pipeline: EarSonarPipeline | None = None,
    thresholds: QualityThresholds | None = None,
) -> RecordingQuality:
    """Score a recording's usability without requiring a fitted model."""
    pipeline = pipeline or EarSonarPipeline()
    thresholds = thresholds or QualityThresholds()
    filtered = pipeline.preprocess(recording.waveform)
    events = pipeline.detect_chirp_events(filtered)

    # In-band SNR: event power vs inter-event power.
    mask = np.zeros(filtered.size, dtype=bool)
    for event in events:
        mask[event.start : event.end] = True
    signal_power = float(np.mean(filtered[mask] ** 2)) if mask.any() else 0.0
    noise_power = float(np.mean(filtered[~mask] ** 2)) if (~mask).any() else 0.0
    if noise_power <= 0.0:
        snr_db = np.inf if signal_power > 0 else 0.0
    elif signal_power <= 0.0:
        snr_db = 0.0
    else:
        snr_db = 10.0 * np.log10(signal_power / noise_power)

    # Chirp regularity against the designed interval.
    nominal = pipeline.config.chirp.samples_per_interval
    starts = np.array([e.start for e in events], dtype=float)
    if starts.size >= 3:
        spacing = np.diff(starts)
        spacing_deviation = float(
            np.median(np.abs(spacing - nominal)) / nominal
        )
    else:
        spacing_deviation = 1.0

    echoes = pipeline.extract_echoes(filtered, events)
    echo_yield = len(echoes) / len(events) if events else 0.0

    # Half-vs-half curve agreement.
    if len(echoes) >= 4:
        half = len(echoes) // 2
        try:
            first = pipeline.mean_absorption_curve(echoes[:half])
            second = pipeline.mean_absorption_curve(echoes[half:])
            curve_stability = pearson(first, second)
        except NoEchoFoundError:  # pragma: no cover - guarded by len check
            curve_stability = 0.0
    else:
        curve_stability = 0.0

    return RecordingQuality(
        snr_db=float(snr_db),
        echo_yield=echo_yield,
        spacing_deviation=spacing_deviation,
        curve_stability=curve_stability,
        thresholds=thresholds,
    )
