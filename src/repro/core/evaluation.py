"""Study-level evaluation: the paper's LOOCV protocol (Sec. VI-A).

``extract_features`` runs the signal pipeline over a study dataset;
``evaluate_loocv`` then reproduces the paper's leave-one-participant-out
protocol: for each of the N children, fit the detector on the other
N-1 and score the held-out child's recordings.  ``evaluate_split``
supports the training-size study.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..errors import NoEchoFoundError
from ..learning.crossval import leave_one_group_out, train_fraction_split
from ..learning.metrics import accuracy
from ..simulation.cohort import StudyDataset
from ..simulation.effusion import MeeState
from .config import DetectorConfig
from .detector import MeeDetector
from .pipeline import EarSonarPipeline
from .results import EvaluationResult, ProcessedRecording, state_to_index

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..runtime.cache import FeatureCache
    from ..runtime.executor import BatchExecutor
    from ..runtime.faults import FailedRecording
    from ..runtime.metrics import RuntimeMetrics

__all__ = ["FeatureTable", "extract_features", "evaluate_loocv", "evaluate_split"]


@dataclass
class FeatureTable:
    """Pipeline outputs for a whole study, ready for cross-validation.

    Attributes
    ----------
    features:
        Matrix ``(n_ok, 105)`` of recordings the pipeline processed.
    states:
        Ground-truth state per processed recording.
    groups:
        Participant id per processed recording.
    processed:
        Full per-recording pipeline outputs.
    num_failed:
        Recordings the pipeline could not process.
    failed_states:
        Ground-truth states of the failed recordings (rejections).
    quarantine:
        Structured :class:`~repro.runtime.faults.FailedRecording`
        entries for every failure, in study order.
    """

    features: np.ndarray
    states: list[MeeState]
    groups: list[str]
    processed: list[ProcessedRecording]
    num_failed: int = 0
    failed_states: list[MeeState] = field(default_factory=list)
    quarantine: "list[FailedRecording]" = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.states)

    @property
    def state_indices(self) -> np.ndarray:
        """Ground-truth class indices of the processed recordings."""
        return np.array([state_to_index(s) for s in self.states])


def extract_features(
    dataset: StudyDataset,
    pipeline: EarSonarPipeline,
    *,
    workers: int = 1,
    cache: "FeatureCache | None" = None,
    metrics: "RuntimeMetrics | None" = None,
    executor: "BatchExecutor | None" = None,
) -> FeatureTable:
    """Run the signal pipeline over every recording of a study.

    Executes on the batch runtime (:mod:`repro.runtime`): recordings
    where no eardrum echo is found (bad seal, extreme noise or motion)
    are quarantined rather than aborting the study — in deployment these
    would prompt a re-measurement.  The default ``workers=1`` keeps
    extraction serial and in-process; ``workers > 1`` fans out over a
    process pool with byte-identical results in the same order, and a
    ``cache`` skips the DSP for already-seen waveforms.  Pass a
    pre-built ``executor`` to override all of the above.
    """
    from ..runtime.executor import BatchExecutor

    if executor is None:
        executor = BatchExecutor(
            pipeline, workers=workers, cache=cache, metrics=metrics
        )
    batch = executor.run(list(dataset))
    vectors: list[np.ndarray] = []
    states: list[MeeState] = []
    groups: list[str] = []
    processed: list[ProcessedRecording] = []
    for result in batch.processed:
        vectors.append(result.features)
        states.append(result.true_state)
        groups.append(result.participant_id)
        processed.append(result)
    if not vectors:
        raise NoEchoFoundError("no recording in the study produced echoes")
    quarantine = batch.quarantine
    return FeatureTable(
        features=np.stack(vectors),
        states=states,
        groups=groups,
        processed=processed,
        num_failed=len(quarantine),
        failed_states=[f.true_state for f in quarantine],
        quarantine=quarantine,
    )


def evaluate_loocv(
    table: FeatureTable,
    detector_config: DetectorConfig | None = None,
) -> EvaluationResult:
    """Leave-one-participant-out evaluation of the detector.

    Each fold fits scaler, Laplacian selection, outlier removal and
    k-means on the training participants only, then predicts the
    held-out participant's recordings.
    """
    detector_config = detector_config or DetectorConfig()
    true_all: list[int] = []
    pred_all: list[int] = []
    fold_accuracies: dict[str, float] = {}
    labels = table.state_indices
    for fold in leave_one_group_out(table.groups):
        detector = MeeDetector(detector_config)
        train_states = [table.states[i] for i in fold.train_indices]
        detector.fit(table.features[fold.train_indices], train_states)
        predicted = detector.predict_indices(table.features[fold.test_indices])
        truth = labels[fold.test_indices]
        true_all.extend(truth.tolist())
        pred_all.extend(predicted.tolist())
        fold_accuracies[fold.group] = accuracy(truth, predicted)
    return EvaluationResult(
        true_indices=np.array(true_all),
        predicted_indices=np.array(pred_all),
        num_failed=table.num_failed,
        fold_accuracies=fold_accuracies,
    )


def evaluate_split(
    table: FeatureTable,
    train_fraction: float,
    rng: np.random.Generator,
    detector_config: DetectorConfig | None = None,
) -> EvaluationResult:
    """Train on a participant fraction, test on the rest (Fig. 15b).

    With ``train_fraction >= 1`` the evaluation degenerates to
    resubstitution (train and test on everyone), which the training-size
    study uses as its 100 % point.
    """
    detector_config = detector_config or DetectorConfig()
    train_idx, test_idx = train_fraction_split(table.groups, train_fraction, rng)
    detector = MeeDetector(detector_config)
    detector.fit(
        table.features[train_idx], [table.states[i] for i in train_idx]
    )
    predicted = detector.predict_indices(table.features[test_idx])
    truth = table.state_indices[test_idx]
    return EvaluationResult(
        true_indices=truth,
        predicted_indices=predicted,
        num_failed=table.num_failed,
    )


def time_inference(detector: MeeDetector, features: np.ndarray, *, repeats: int = 10) -> float:
    """Median wall-clock latency of a single-vector prediction, in ms."""
    features = np.asarray(features, dtype=float)
    if features.ndim == 1:
        features = features[None, :]
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        detector.predict_indices(features[:1])
        times.append((time.perf_counter() - t0) * 1e3)
    return float(np.median(times))
