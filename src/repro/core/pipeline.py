"""The EarSonar signal pipeline (paper Sec. IV, Fig. 5).

``EarSonarPipeline`` implements the three signal stages:

1. **Signal preprocessing** — Butterworth band-pass, adaptive energy
   event detection, parity-decomposition echo segmentation;
2. **Acoustic absorption analysis** — per-echo FFT, deconvolution by
   the known transmitted chirp (removing the probe's own spectral
   envelope so the absorption dip stands out), averaging over chirps
   onto a uniform band grid;
3. **Feature extraction** — the 105-element vector of curve bins,
   statistics, and MFCCs.

The pipeline is stateless with respect to recordings; all state is the
immutable configuration plus cached filter/template designs.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import InvalidWaveformError, NoEchoFoundError, SignalProcessingError
from ..features.vector import FeatureVectorBuilder
from ..obs import names as obs_names
from ..obs.health import current_health
from ..obs.tracer import current_tracer
from ..signal.chirp import linear_chirp
from ..signal.events import Event, detect_events
from ..signal.filters import butterworth_bandpass
from ..signal.parity import EardrumEcho, segment_eardrum_echo
from ..signal.resample import upsample
from ..signal.spectral import amplitude_spectrum
from ..simulation.hardware import StageLatencies
from ..simulation.session import Recording
from .config import EarSonarConfig
from .results import ProcessedRecording

__all__ = ["EarSonarPipeline"]


class EarSonarPipeline:
    """End-to-end signal processing from raw waveform to feature vector."""

    def __init__(self, config: EarSonarConfig | None = None) -> None:
        self.config = config or EarSonarConfig()
        cfg = self.config
        self._bandpass = butterworth_bandpass(
            cfg.bandpass.order,
            cfg.bandpass.low_hz,
            cfg.bandpass.high_hz,
            cfg.chirp.sample_rate,
        )
        self._builder = FeatureVectorBuilder(cfg.features)
        self._grid = cfg.features.frequency_grid()
        self._nfft = 8192
        self._tx_reference = self._reference_spectrum()
        # Numeric lane of the spectral/feature half (config.precision).
        # Pre-DSP stages and the quality gate always run float64; the
        # float32 lane starts at the absorption/MFCC boundary below.
        self._dtype = np.dtype(
            np.float32 if cfg.precision == "float32" else np.float64
        )
        self._tx_reference32 = self._tx_reference.astype(np.float32)
        # Rake geometry: early reflections live strictly *before* the
        # segmenter's eardrum-delay prior, so only delays up to the
        # prior's lower edge (input-rate samples) may be subtracted —
        # the drum echo itself is never touched.
        lo_up, _ = cfg.segmenter.delay_window_samples()
        factor = cfg.segmenter.upsample_factor
        self._rake_protect = max(1, lo_up // factor)
        # Calibration-offset estimation: dB-linear baseline fit over the
        # band-edge bins of the absorption grid (away from the notch).
        centre = 0.5 * (self._grid[0] + self._grid[-1])
        half_span = max(0.5 * (self._grid[-1] - self._grid[0]), 1.0)
        self._cal_x = (self._grid - centre) / half_span
        edge = max(2, int(round(cfg.calibration.edge_fraction * self._grid.size)))
        edge = min(edge, self._grid.size // 2)
        self._cal_edges = np.r_[0:edge, self._grid.size - edge : self._grid.size]
        design = np.column_stack(
            [np.ones(self._cal_edges.size), self._cal_x[self._cal_edges]]
        )
        self._cal_solver = np.linalg.pinv(design)

    # ------------------------------------------------------------------
    # Stage implementations
    # ------------------------------------------------------------------

    def _reference_spectrum(self) -> np.ndarray:
        """|spectrum| of the upsampled TX pulse on the band grid.

        Deconvolving the received echo spectrum by this template
        removes the chirp's own envelope; floored away from zero so
        the division stays stable at the band edges.
        """
        cfg = self.config
        pulse = upsample(linear_chirp(cfg.chirp), cfg.segmenter.upsample_factor)
        spec = amplitude_spectrum(pulse, cfg.segmenter.upsampled_rate, nfft=self._nfft)
        band = spec.band(self._grid[0], self._grid[-1] + 1.0)
        values = np.interp(self._grid, band.frequencies, band.values)
        floor = max(values.max() * 1e-3, 1e-12)
        return np.maximum(values, floor)

    def preprocess(self, waveform: np.ndarray) -> np.ndarray:
        """Band-pass the raw microphone signal (noise removal stage).

        Raises :class:`~repro.errors.InvalidWaveformError` on an empty
        buffer, and on NaN/Inf samples unless the robustness config
        permits sanitizing them (non-finite samples become zeros, i.e.
        ordinary dropouts, provided their fraction stays below
        ``robustness.max_nonfinite_fraction``).
        """
        waveform = np.asarray(waveform, dtype=float)
        if waveform.size == 0:
            raise InvalidWaveformError("waveform is empty")
        finite = np.isfinite(waveform)
        if not finite.all():
            rb = self.config.robustness
            fraction = 1.0 - float(finite.mean())
            if not rb.sanitize_nonfinite or fraction > rb.max_nonfinite_fraction:
                raise InvalidWaveformError(
                    f"waveform contains {fraction:.2%} non-finite samples"
                )
            waveform = np.where(finite, waveform, 0.0)
        return self._bandpass.apply(waveform)

    def detect_chirp_events(self, filtered: np.ndarray) -> list[Event]:
        """Locate chirp/echo events in the band-passed stream."""
        return detect_events(filtered, self.config.events)

    def extract_echoes(
        self, filtered: np.ndarray, events: list[Event] | None = None
    ) -> list[EardrumEcho]:
        """Segment the eardrum echo of every event that yields one."""
        if events is None:
            events = self.detect_chirp_events(filtered)
        echoes: list[EardrumEcho] = []
        for event in events:
            try:
                echoes.append(
                    segment_eardrum_echo(event.slice(filtered), self.config.segmenter)
                )
            except NoEchoFoundError:
                continue
        return echoes

    def cancel_reflections(
        self, filtered: np.ndarray, events: list[Event]
    ) -> tuple[np.ndarray, int]:
        """Rake-cancel early canal reflections from every chirp event.

        Each event runs the orthogonal-least-squares rake (plan-cached
        I/Q templates): reflections landing before the eardrum-delay
        prior and above the configured amplitude threshold are jointly
        fit and subtracted from the event.  Returns the cleaned stream
        (the input array itself when nothing was subtracted) and the
        total number of reflections removed.
        """
        from ..kernels.chirp import rake_cancel_planned

        reverb = self.config.reverb
        cleaned = filtered
        removed_total = 0
        for event in events:
            segment = cleaned[event.start : event.end]
            new_segment, removed = rake_cancel_planned(
                segment,
                self.config.chirp,
                protect_from=self._rake_protect,
                threshold=reverb.rake_threshold,
            )
            if removed:
                if cleaned is filtered:
                    cleaned = filtered.copy()
                cleaned[event.start : event.end] = new_segment
                removed_total += removed
        return cleaned, removed_total

    def estimate_calibration(
        self, curves: np.ndarray
    ) -> tuple[np.ndarray, float, bool]:
        """Divide the pooled dB-linear device baseline out of ``curves``.

        Fits gain + tilt (in dB, over the normalized band coordinate)
        to the band-edge bins of every per-echo curve, pools the fits
        with a median, and divides the pooled baseline out of every
        row.  Returns the corrected curves, the gain relative to
        ``calibration.reference_level_db`` (clamped to
        ``calibration.max_offset_db``), and whether the per-echo
        estimates were stable (spread within
        ``calibration.instability_db``).
        """
        cal = self.config.calibration
        edges = np.asarray(curves, dtype=np.float64)[:, self._cal_edges]
        edges_db = 20.0 * np.log10(np.maximum(edges, 1e-12))
        theta = self._cal_solver @ edges_db.T
        offset = float(
            np.clip(
                np.median(theta[0]) - cal.reference_level_db,
                -cal.max_offset_db,
                cal.max_offset_db,
            )
        )
        gain = cal.reference_level_db + offset
        tilt = float(np.clip(np.median(theta[1]), -cal.max_offset_db, cal.max_offset_db))
        stable = bool(np.std(theta[0]) <= cal.instability_db)
        baseline = 10.0 ** ((gain + tilt * self._cal_x) / 20.0)
        corrected = curves / baseline.astype(curves.dtype)
        return corrected, offset, stable

    def absorption_curve(self, echo: EardrumEcho) -> np.ndarray:
        """TX-deconvolved band spectrum of one echo on the uniform grid."""
        spec = amplitude_spectrum(echo.segment, echo.sample_rate, nfft=self._nfft)
        band = spec.band(self._grid[0], self._grid[-1] + 1.0)
        values = np.interp(self._grid, band.frequencies, band.values)
        return values / self._tx_reference

    def absorption_curves(self, echoes: list[EardrumEcho]) -> np.ndarray:
        """Absorption curves of many echoes as a ``(num_echoes, bins)`` stack.

        Echoes of equal length share one batched multi-row FFT instead
        of one transform per echo; the per-row band interpolation and
        TX deconvolution are unchanged, so each row equals
        :meth:`absorption_curve` of the same echo.  Mixed lengths are
        grouped by length and batched per group.
        """
        if not echoes:
            raise NoEchoFoundError("cannot average zero echoes")
        if self._dtype == np.float32:
            return self._absorption_curves32(echoes)
        from ..kernels.spectral import batched_amplitude_spectrum

        curves = np.empty((len(echoes), self._grid.size))
        lengths = np.array([e.segment.size for e in echoes])
        rates = np.array([e.sample_rate for e in echoes])
        for key in {(int(n), float(r)) for n, r in zip(lengths, rates)}:
            idx = np.flatnonzero((lengths == key[0]) & (rates == key[1]))
            stack = np.stack([echoes[i].segment for i in idx])
            freqs, values = batched_amplitude_spectrum(stack, key[1], nfft=self._nfft)
            mask = (freqs >= self._grid[0]) & (freqs <= self._grid[-1] + 1.0)
            band_freqs = freqs[mask]
            for row, i in enumerate(idx):
                interped = np.interp(self._grid, band_freqs, values[row][mask])
                curves[i] = interped / self._tx_reference
        return curves

    def _absorption_curves32(self, echoes: list[EardrumEcho]) -> np.ndarray:
        """float32-lane absorption curves via the band-zoom DFT kernel.

        Instead of a full ``nfft``-point FFT per echo group followed by
        interpolation onto the band grid, the dispatched
        ``band_zoom_amplitude`` op evaluates the spectrum only at the
        ~1% of bins inside the probe band (one complex64 matmul) and
        interpolates with the plan's precomputed weights — the same
        clamped linear interpolation ``np.interp`` performs.
        """
        from ..kernels import backends
        from ..kernels.plan import band_zoom_plan
        from ..kernels.spectral import batched_amplitude_spectrum

        curves = np.empty((len(echoes), self._grid.size), dtype=np.float32)
        lengths = np.array([e.segment.size for e in echoes])
        rates = np.array([e.sample_rate for e in echoes])
        for key in {(int(n), float(r)) for n, r in zip(lengths, rates)}:
            idx = np.flatnonzero((lengths == key[0]) & (rates == key[1]))
            stack = np.stack([echoes[i].segment for i in idx]).astype(np.float32)
            zoom = band_zoom_plan(key[0], self._nfft, key[1], self._grid)
            if zoom is None:  # degenerate band: fewer than 2 bins inside
                freqs, values = batched_amplitude_spectrum(
                    stack, key[1], nfft=self._nfft
                )
                mask = (freqs >= self._grid[0]) & (freqs <= self._grid[-1] + 1.0)
                band_freqs = freqs[mask]
                for row, i in enumerate(idx):
                    interped = np.interp(self._grid, band_freqs, values[row][mask])
                    curves[i] = interped / self._tx_reference32
                continue
            band = backends.run_op("band_zoom_amplitude", stack, zoom, self._nfft)
            curves[idx] = band / self._tx_reference32
        return curves

    def mean_absorption_curve(self, echoes: list[EardrumEcho]) -> np.ndarray:
        """Chirp-averaged, peak-normalised absorption curve."""
        curves = self.absorption_curves(echoes)
        mean_curve = curves.mean(axis=0)
        peak = mean_curve.max()
        if peak <= 0.0:
            raise SignalProcessingError("absorption curve is identically zero")
        return mean_curve / peak

    # ------------------------------------------------------------------
    # End-to-end
    # ------------------------------------------------------------------

    def _process_staged(
        self, recording: Recording
    ) -> tuple[ProcessedRecording, StageLatencies]:
        """Single implementation behind :meth:`process`/:meth:`timed_process`.

        Always records the Table-II stage boundaries (two extra
        ``perf_counter`` calls are free next to the DSP), so the timed
        and untimed entry points can never drift apart.
        """
        rb = self.config.robustness
        tracer = current_tracer()
        # In-worker fleet-health hooks: per-device-model rake-tap and
        # calibration-drift rollups live here (the stages run wherever
        # the DSP runs); the executor merges worker-local aggregates.
        health = current_health()
        device_model = recording.config.earphone.name if health.enabled else ""
        t0 = time.perf_counter()
        raw = np.asarray(recording.waveform, dtype=float)
        nonfinite_fraction = (
            1.0 - float(np.isfinite(raw).mean()) if raw.size else 1.0
        )
        with tracer.span(obs_names.SPAN_STAGE_BANDPASS):
            filtered = self.preprocess(raw)
        t1 = time.perf_counter()
        with tracer.span(obs_names.SPAN_STAGE_EVENTS) as span:
            events = self.detect_chirp_events(filtered)
            span.set("events", len(events))
        reflections_removed = 0
        if self.config.reverb.enabled:
            with tracer.span(obs_names.SPAN_STAGE_RAKE) as span:
                filtered, reflections_removed = self.cancel_reflections(
                    filtered, events
                )
                span.set("removed", reflections_removed)
            if health.enabled and reflections_removed > 0:
                health.increment(
                    obs_names.HEALTH_RAKE_TAPS,
                    reflections_removed,
                    labels={"device_model": device_model},
                )
        with tracer.span(obs_names.SPAN_STAGE_PARITY) as span:
            echoes = self.extract_echoes(filtered, events)
            span.set("echoes", len(echoes))
        num_extracted = len(echoes)
        dropped = 0
        calibration_offset_db = 0.0
        calibration_stable = True
        reasons: list[str] = []
        if rb.drop_corrupted_chirps:
            survivors = [
                e for e in echoes
                if np.isfinite(e.segment).all() and np.any(e.segment)
            ]
            dropped = len(echoes) - len(survivors)
            if dropped:
                reasons.append("corrupt_chirps")
                echoes = survivors
        if len(echoes) < self.config.min_echoes:
            raise NoEchoFoundError(
                f"only {len(echoes)} of {len(events)} events produced usable "
                f"echoes (need >= {self.config.min_echoes})"
            )
        with tracer.span(obs_names.SPAN_STAGE_SPECTRUM):
            curves = self.absorption_curves(echoes)
            row_ok = np.isfinite(curves).all(axis=1)
            if not row_ok.all():
                if not rb.drop_corrupted_chirps:
                    raise SignalProcessingError(
                        "absorption curves contain non-finite values"
                    )
                idx = np.flatnonzero(row_ok)
                if idx.size < self.config.min_echoes:
                    raise NoEchoFoundError(
                        f"only {idx.size} finite absorption curves "
                        f"(need >= {self.config.min_echoes})"
                    )
                dropped += int(curves.shape[0] - idx.size)
                if "corrupt_chirps" not in reasons:
                    reasons.append("corrupt_chirps")
                curves = curves[idx]
                echoes = [echoes[i] for i in idx]
            if self.config.calibration.enabled:
                with tracer.span(obs_names.SPAN_STAGE_CALIBRATION) as span:
                    curves, calibration_offset_db, calibration_stable = (
                        self.estimate_calibration(curves)
                    )
                    span.set("offset_db", calibration_offset_db)
                    span.set("stable", calibration_stable)
                if health.enabled:
                    health.observe(
                        obs_names.HEALTH_CALIB_OFFSET_DB,
                        calibration_offset_db,
                        labels={"device_model": device_model},
                    )
                if not calibration_stable:
                    reasons.append("calibration_unstable")
            mean_curve = curves.mean(axis=0)
            peak = mean_curve.max()
            if peak <= 0.0:
                raise SignalProcessingError("absorption curve is identically zero")
            curve = mean_curve / peak
        segments = np.stack([e.segment for e in echoes])
        mean_segment = segments.mean(axis=0)
        rate = echoes[0].sample_rate
        with tracer.span(obs_names.SPAN_STAGE_FEATURES):
            features = self._builder.build(curve, mean_segment, rate, dtype=self._dtype)
        t2 = time.perf_counter()
        if nonfinite_fraction > 0.0:
            reasons.append("non_finite")
        # survivors/extracted is 1.0 on the clean path, so the clean
        # output (confidence included) is bit-identical to the strict
        # pipeline; any quarantine or sanitization pulls it below 1.
        confidence = (
            len(echoes) / num_extracted if num_extracted else 0.0
        ) * (1.0 - nonfinite_fraction)
        if not calibration_stable:
            confidence *= self.config.calibration.unstable_confidence
        processed = ProcessedRecording(
            features=features,
            # The result contract is float64 regardless of lane; for the
            # default lane this asarray is the identity.
            curve=np.asarray(curve, dtype=np.float64),
            mean_segment=mean_segment,
            segment_rate=rate,
            num_events=len(events),
            num_echoes=len(echoes),
            participant_id=recording.participant_id,
            day=recording.day,
            true_state=recording.state,
            confidence=confidence,
            num_chirps_dropped=dropped,
            quality_reasons=tuple(reasons),
            calibration_offset_db=calibration_offset_db,
            num_reflections_removed=reflections_removed,
        )
        latencies = StageLatencies(
            bandpass_ms=(t1 - t0) * 1e3,
            feature_extract_ms=(t2 - t1) * 1e3,
            inference_ms=0.0,
        )
        return processed, latencies

    def process(self, recording: Recording) -> ProcessedRecording:
        """Run the full pipeline on one recording.

        Raises :class:`NoEchoFoundError` if fewer than
        ``config.min_echoes`` events produced a usable eardrum echo.
        """
        return self._process_staged(recording)[0]

    def timed_process(self, recording: Recording) -> tuple[ProcessedRecording, StageLatencies]:
        """Process a recording while timing the Table-II stages.

        Stage boundaries follow the paper: band-pass filtering, feature
        extraction (events + segmentation + curve + vector), and
        inference is timed separately by the detector.
        """
        return self._process_staged(recording)
