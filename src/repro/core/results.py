"""Result containers for the EarSonar pipeline and screening API."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..simulation.effusion import MeeState

__all__ = [
    "state_to_index",
    "index_to_state",
    "ProcessedRecording",
    "ScreeningResult",
    "EvaluationResult",
]


def state_to_index(state: MeeState) -> int:
    """Class index of a state (CLEAR=0, SEROUS=1, MUCOID=2, PURULENT=3)."""
    return MeeState.ordered().index(state)


def index_to_state(index: int) -> MeeState:
    """Inverse of :func:`state_to_index`."""
    return MeeState.ordered()[index]


@dataclass(frozen=True)
class ProcessedRecording:
    """Output of the signal pipeline for one recording.

    Attributes
    ----------
    features:
        The 105-element feature vector.
    curve:
        Mean TX-deconvolved absorption curve (peak-normalised) on the
        feature config's uniform frequency grid.
    mean_segment:
        Time-domain mean of the aligned eardrum-echo segments.
    segment_rate:
        Sample rate of ``mean_segment`` in Hz.
    num_events / num_echoes:
        Chirp events detected and echoes successfully segmented.
    participant_id / day / true_state:
        Provenance copied from the recording (``true_state`` is None
        for field recordings without ground truth).
    confidence:
        Pipeline trust in this result, in (0, 1].  Exactly 1.0 for a
        clean recording; reduced when chirps were quarantined from the
        train or non-finite samples were sanitized away.
    num_chirps_dropped:
        Corrupted chirps removed from the train before averaging.
    quality_reasons:
        Reason codes explaining any degradation (empty when clean).
    calibration_offset_db:
        Estimated per-device broadband gain error divided out of the
        absorption curves, in dB; 0.0 when the calibration stage is
        disabled (or estimated nothing).
    num_reflections_removed:
        Early canal reflections subtracted by the rake stage across
        all chirp events; 0 when the rake is disabled or the capture
        is anechoic.
    """

    features: np.ndarray
    curve: np.ndarray
    mean_segment: np.ndarray
    segment_rate: float
    num_events: int
    num_echoes: int
    participant_id: str = ""
    day: float = 0.0
    true_state: MeeState | None = None
    confidence: float = 1.0
    num_chirps_dropped: int = 0
    quality_reasons: tuple[str, ...] = ()
    calibration_offset_db: float = 0.0
    num_reflections_removed: int = 0

    @property
    def echo_yield(self) -> float:
        """Fraction of detected events that produced a usable echo."""
        if self.num_events == 0:
            return 0.0
        return self.num_echoes / self.num_events


@dataclass(frozen=True)
class ScreeningResult:
    """Outcome of screening one recording.

    Attributes
    ----------
    state:
        Predicted effusion state.
    confidence:
        Soft score in (0, 1]: the relative margin between the nearest
        and second-nearest cluster centres (1 = unambiguous).
    cluster_distances:
        Distance to each state's centre, indexed by class id.
    processed:
        The underlying pipeline output.
    """

    state: MeeState
    confidence: float
    cluster_distances: np.ndarray
    processed: ProcessedRecording

    @property
    def has_effusion(self) -> bool:
        """Binary screening outcome: any fluid-positive state."""
        return self.state.is_effusion

    @property
    def severity(self) -> int:
        """Ordinal severity 0-3 of the predicted state."""
        return self.state.severity


@dataclass(frozen=True)
class EvaluationResult:
    """Aggregate outcome of a study evaluation (e.g. one LOOCV run).

    Attributes
    ----------
    true_indices / predicted_indices:
        Class ids of every scored recording.
    num_failed:
        Recordings the pipeline could not process (no echo found).
    fold_accuracies:
        Per-fold accuracy, keyed by held-out group.
    """

    true_indices: np.ndarray
    predicted_indices: np.ndarray
    num_failed: int = 0
    fold_accuracies: dict[str, float] = field(default_factory=dict)

    def report(self):
        """Classification report over all scored recordings."""
        from ..learning.metrics import classification_report

        return classification_report(
            self.true_indices, self.predicted_indices, len(MeeState.ordered())
        )
