"""High-level home-screening API.

``EarSonarScreener`` is the library's front door: fit it once on a
reference study (or load the bundled virtual study), then screen
individual recordings — exactly the paper's envisioned usage where a
caregiver runs a measurement and receives an effusion state with a
confidence estimate.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError, NotFittedError
from ..simulation.cohort import StudyDataset
from ..simulation.effusion import MeeState
from ..simulation.session import Recording
from .config import EarSonarConfig
from .detector import MeeDetector
from .evaluation import FeatureTable, extract_features
from .pipeline import EarSonarPipeline
from .results import ScreeningResult, state_to_index

__all__ = ["EarSonarScreener"]


class EarSonarScreener:
    """Fit-once, screen-many interface around pipeline + detector."""

    def __init__(self, config: EarSonarConfig | None = None) -> None:
        self.config = config or EarSonarConfig()
        self.pipeline = EarSonarPipeline(self.config)
        self.detector = MeeDetector(self.config.detector)
        self._feature_table: FeatureTable | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether the screener has been calibrated on a study."""
        return self.detector.is_fitted

    def fit(
        self,
        dataset: StudyDataset,
        *,
        workers: int = 1,
        cache=None,
        metrics=None,
    ) -> "EarSonarScreener":
        """Calibrate the detector on a labelled reference study.

        Feature extraction runs on the batch runtime: ``workers > 1``
        fans the DSP out over a process pool (identical results, less
        wall-clock) and a :class:`~repro.runtime.cache.FeatureCache`
        makes re-fits on unchanged studies skip signal processing.
        """
        table = extract_features(
            dataset, self.pipeline, workers=workers, cache=cache, metrics=metrics
        )
        self.detector.fit(table.features, table.states)
        self._feature_table = table
        return self

    def fit_from_table(self, table: FeatureTable) -> "EarSonarScreener":
        """Calibrate from pre-extracted features (skips signal processing)."""
        if len(table) == 0:
            raise ModelError("feature table is empty")
        self.detector.fit(table.features, table.states)
        self._feature_table = table
        return self

    def screen(self, recording: Recording) -> ScreeningResult:
        """Screen one recording and return the predicted state.

        Confidence is the relative margin between the closest and
        second-closest state centres: 0 means a coin flip between two
        states, values near 1 mean an unambiguous assignment.
        """
        if not self.is_fitted:
            raise NotFittedError("EarSonarScreener.screen called before fit")
        processed = self.pipeline.process(recording)
        distances = self.detector.decision_distances(processed.features)[0]
        order = np.argsort(distances)
        best, second = distances[order[0]], distances[order[1]]
        if not np.isfinite(second) or second == 0.0:
            confidence = 1.0
        else:
            confidence = float(np.clip(1.0 - best / second, 0.0, 1.0))
        state = MeeState.ordered()[int(order[0])]
        return ScreeningResult(
            state=state,
            confidence=confidence,
            cluster_distances=distances,
            processed=processed,
        )

    def screen_course(self, recordings: list[Recording]) -> list[ScreeningResult]:
        """Screen a chronological series (recovery tracking use case)."""
        return [self.screen(r) for r in recordings]

    def effusion_score(self, recording: Recording) -> float:
        """Continuous fluid-presence score for ROC-style evaluation.

        Defined as the distance to the CLEAR centre minus the distance
        to the nearest fluid-state centre: positive values indicate
        effusion, and larger magnitudes indicate a clearer margin.
        Thresholding at 0 recovers :attr:`ScreeningResult.has_effusion`.
        """
        if not self.is_fitted:
            raise NotFittedError("EarSonarScreener.effusion_score called before fit")
        processed = self.pipeline.process(recording)
        distances = self.detector.decision_distances(processed.features)[0]
        clear_idx = state_to_index(MeeState.CLEAR)
        fluid = [d for i, d in enumerate(distances) if i != clear_idx]
        return float(distances[clear_idx] - min(fluid))
