"""Continuous severity estimation (extension beyond the paper).

The paper grades effusion into four discrete states; clinically, the
*volume* of fluid behind the drum is continuous, and the paper's own
model (Sec. II-A) ties absorption directly to it.  This extension
regresses the cavity fill fraction from the same 105-element feature
vector with from-scratch ridge regression, giving the screening API a
0-1 severity score alongside the discrete grade.

In the virtual clinic the ground-truth fill fraction is known, so the
estimator can be trained and validated end to end; on real data the
targets would come from quantitative tympanometry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, ModelError, NotFittedError
from ..learning.scaling import StandardScaler

__all__ = ["RidgeRegression", "SeverityEstimator"]


@dataclass
class RidgeRegression:
    """Closed-form L2-regularised linear regression.

    Solves ``(X^T X + alpha I) w = X^T y`` with an unpenalised
    intercept (handled by centring).
    """

    alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {self.alpha}")
        self.weights_: np.ndarray | None = None
        self.intercept_: float | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeRegression":
        """Fit on ``features`` (n x d) against scalar ``targets``."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2:
            raise ModelError(f"features must be 2-D, got shape {features.shape}")
        if targets.shape != (features.shape[0],):
            raise ModelError(
                f"targets shape {targets.shape} incompatible with {features.shape[0]} rows"
            )
        x_mean = features.mean(axis=0)
        y_mean = float(targets.mean())
        x_c = features - x_mean
        y_c = targets - y_mean
        d = features.shape[1]
        gram = x_c.T @ x_c + self.alpha * np.eye(d)
        weights = np.linalg.solve(gram, x_c.T @ y_c)
        self.weights_ = weights
        self.intercept_ = y_mean - float(x_mean @ weights)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted targets for ``features``."""
        if self.weights_ is None or self.intercept_ is None:
            raise NotFittedError("RidgeRegression.predict called before fit")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        return features @ self.weights_ + self.intercept_


class SeverityEstimator:
    """Fill-fraction regressor on EarSonar feature vectors."""

    def __init__(self, *, alpha: float = 10.0) -> None:
        self._scaler: StandardScaler | None = None
        self._ridge = RidgeRegression(alpha=alpha)

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._scaler is not None

    def fit(self, features: np.ndarray, fill_fractions: np.ndarray) -> "SeverityEstimator":
        """Fit on labelled vectors; targets are cavity fill fractions."""
        fill_fractions = np.asarray(fill_fractions, dtype=float)
        if np.any(fill_fractions < 0.0) or np.any(fill_fractions > 1.0):
            raise ModelError("fill fractions must lie in [0, 1]")
        scaler = StandardScaler()
        scaled = scaler.fit_transform(np.asarray(features, dtype=float))
        self._ridge.fit(scaled, fill_fractions)
        self._scaler = scaler
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted fill fractions, clipped to [0, 1]."""
        if self._scaler is None:
            raise NotFittedError("SeverityEstimator.predict called before fit")
        scaled = self._scaler.transform(np.asarray(features, dtype=float))
        return np.clip(self._ridge.predict(scaled), 0.0, 1.0)

    def score_mae(self, features: np.ndarray, fill_fractions: np.ndarray) -> float:
        """Mean absolute error of the estimator on labelled data."""
        predictions = self.predict(features)
        return float(np.mean(np.abs(predictions - np.asarray(fill_fractions, dtype=float))))
