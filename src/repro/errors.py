"""Exception hierarchy for the EarSonar reproduction.

All library-specific failures derive from :class:`EarSonarError` so that
callers can catch a single base class at the application boundary while
still being able to discriminate specific failure modes.
"""

from __future__ import annotations


class EarSonarError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(EarSonarError):
    """A configuration value is out of range or internally inconsistent.

    Raised eagerly at object-construction time (e.g. a chirp whose band
    exceeds the Nyquist frequency, a filter with a non-positive order)
    so that invalid setups fail before any signal is processed.
    """


class SignalProcessingError(EarSonarError):
    """A signal-processing stage could not produce a result.

    Examples: event detection on an empty array, segmentation when no
    candidate echo satisfies the physical distance prior.
    """


class NoEchoFoundError(SignalProcessingError):
    """No eardrum echo could be located in a recording.

    This is an expected runtime condition (bad earphone seal, extreme
    noise) that callers of the screening API should handle gracefully.
    """


class ModelError(EarSonarError):
    """A learning component was used incorrectly.

    Examples: predicting with an unfitted model, fitting k-means with
    more clusters than samples.
    """


class NotFittedError(ModelError):
    """A model's ``predict``/``transform`` was called before ``fit``."""


class SimulationError(EarSonarError):
    """The virtual clinic could not generate a requested scenario."""
