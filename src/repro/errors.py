"""Exception hierarchy for the EarSonar reproduction.

All library-specific failures derive from :class:`EarSonarError` so that
callers can catch a single base class at the application boundary while
still being able to discriminate specific failure modes.
"""

from __future__ import annotations


class EarSonarError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(EarSonarError):
    """A configuration value is out of range or internally inconsistent.

    Raised eagerly at object-construction time (e.g. a chirp whose band
    exceeds the Nyquist frequency, a filter with a non-positive order)
    so that invalid setups fail before any signal is processed.
    """


class SignalProcessingError(EarSonarError):
    """A signal-processing stage could not produce a result.

    Examples: event detection on an empty array, segmentation when no
    candidate echo satisfies the physical distance prior.
    """


class NoEchoFoundError(SignalProcessingError):
    """No eardrum echo could be located in a recording.

    This is an expected runtime condition (bad earphone seal, extreme
    noise) that callers of the screening API should handle gracefully.
    """


class InvalidWaveformError(SignalProcessingError):
    """A waveform contains samples no DSP stage can process.

    Raised when NaN/Inf samples (a glitching ADC, a corrupted file) or
    an empty buffer reach the pipeline, *before* they can poison the
    filters and propagate garbage features to clustering.  Expected in
    deployment — the batch runtime quarantines it like any other
    acquisition failure.
    """


class QualityRejectedError(SignalProcessingError):
    """The signal-quality gate refused a recording before the DSP ran.

    The message carries the :mod:`repro.quality` reason codes (e.g.
    ``clipping; dropout``), so a quarantine entry records *why* the
    capture must be re-measured, not just that it failed.
    """


class ModelError(EarSonarError):
    """A learning component was used incorrectly.

    Examples: predicting with an unfitted model, fitting k-means with
    more clusters than samples.
    """


class NotFittedError(ModelError):
    """A model's ``predict``/``transform`` was called before ``fit``."""


class SimulationError(EarSonarError):
    """The virtual clinic could not generate a requested scenario."""


class CacheCorruptionError(EarSonarError):
    """A persisted cache entry failed validation on load.

    Covers truncated/garbled ``.npz`` payloads, checksum mismatches,
    and entries written under a different schema or config
    fingerprint.  The cache itself treats this as a miss (evicting the
    bad file); the class exists so the disk tier can signal the
    condition internally with a typed error instead of leaking
    ``BadZipFile``/``KeyError`` to callers.
    """


class ExecutionError(EarSonarError):
    """Base class for batch-runtime execution failures.

    These are *infrastructure* faults (a worker died, a deadline
    passed, the circuit breaker opened) as opposed to the per-signal
    :class:`SignalProcessingError` family; the executor converts them
    into structured quarantine entries rather than crashing a batch.
    """


class TaskTimeoutError(ExecutionError):
    """A dispatched chunk missed its per-task deadline."""


class WorkerCrashError(ExecutionError):
    """A pool worker died mid-chunk (segfault, OOM-kill, ``os._exit``)."""


class CircuitOpenError(ExecutionError):
    """Work was rejected because the executor's circuit breaker is open.

    Raised/recorded for recordings that were *not attempted* after
    ``failure_threshold`` consecutive worker failures halted fan-out.
    """


class InjectedFaultError(ExecutionError):
    """A deliberate failure raised by the chaos fault-injection hook."""


class ServiceError(EarSonarError):
    """Base class for online-serving (:mod:`repro.serve`) failures.

    Distinct from :class:`ExecutionError`: execution errors happen to
    work that was *accepted* (the executor quarantines them), while
    service errors describe the front door — requests that were never
    admitted, or a service used outside its lifecycle.
    """


class AdmissionRejected(ServiceError):
    """The service refused a request at the front door.

    Carries machine-readable shedding metadata so callers can implement
    polite retry:

    - ``reason`` — one of ``"rate_limited"`` (the tenant's token bucket
      is empty), ``"queue_full"`` (the bounded request queue is at
      capacity), ``"overload"`` (estimated queue wait exceeds the SLO
      headroom), or ``"shutdown"`` (the service is stopping);
    - ``retry_after_s`` — the earliest time, in seconds, at which a
      retry has a chance of being admitted.
    """

    def __init__(
        self,
        message: str = "request rejected by admission control",
        *,
        reason: str = "overload",
        retry_after_s: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = float(retry_after_s)


class ServiceStoppedError(ServiceError):
    """An operation was attempted on a service that is not running.

    Raised by ``submit`` before ``start`` or after ``stop`` — distinct
    from :class:`AdmissionRejected`, which describes load shedding on a
    *running* service.
    """
