"""Reproductions of every table and figure in the paper's evaluation.

One module per experiment; each exposes a ``run(config)`` returning a
result object with a ``render()`` method that prints a paper-vs-measured
comparison.  DESIGN.md's experiment index maps paper artefacts to these
modules; ``benchmarks/`` wraps them for ``pytest-benchmark``.
"""

from . import (
    ablations,
    baseline_comparison,
    calibration_drift,
    conditions,
    label_noise,
    fig02_feasibility,
    fig07_08_signals,
    fig09_consistency,
    fig10_11_spectra,
    fig13_overall,
    fig14_noise_motion,
    fig15_devices_training,
    robustness_curves,
    table1_angle,
    table2_3_system,
)
from .common import (
    ExperimentScale,
    build_feature_table,
    build_study,
    format_table,
    scale_from_env,
    sparkline,
)

__all__ = [
    "ablations",
    "baseline_comparison",
    "calibration_drift",
    "conditions",
    "label_noise",
    "fig02_feasibility",
    "fig07_08_signals",
    "fig09_consistency",
    "fig10_11_spectra",
    "fig13_overall",
    "fig14_noise_motion",
    "fig15_devices_training",
    "robustness_curves",
    "table1_angle",
    "table2_3_system",
    "ExperimentScale",
    "build_feature_table",
    "build_study",
    "format_table",
    "scale_from_env",
    "sparkline",
]
