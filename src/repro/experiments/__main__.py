"""Command-line experiment runner.

Run any paper experiment by name::

    python -m repro.experiments fig13
    python -m repro.experiments table1 --scale small
    python -m repro.experiments all --scale 8

Scale accepts the ``EARSONAR_SCALE`` presets (``small`` / ``default`` /
``paper``) or a participant count.

``--trace-dir DIR`` runs the experiments under the observability layer
and writes the run record (spans, JSONL events, manifest, Chrome trace)
there for ``python -m repro.obs`` to inspect.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time
from pathlib import Path

from ..obs import (
    EventLog,
    Tracer,
    capture_manifest,
    current_event_log,
    names as obs_names,
    use_event_log,
    use_tracer,
)
from ..obs.export import write_run_record

from . import (
    ablations,
    baseline_comparison,
    calibration_drift,
    label_noise,
    fig02_feasibility,
    fig07_08_signals,
    fig09_consistency,
    fig10_11_spectra,
    fig13_overall,
    fig14_noise_motion,
    fig15_devices_training,
    robustness_curves,
    table1_angle,
    table2_3_system,
)
from .common import scale_from_env

#: Experiment name -> (module, needs_scale).  Modules whose configs
#: carry an ExperimentScale receive the CLI-selected scale.
_EXPERIMENTS = {
    "fig02": (fig02_feasibility, False),
    "fig07": (fig07_08_signals, False),
    "fig08": (fig07_08_signals, False),
    "fig09": (fig09_consistency, False),
    "fig10": (fig10_11_spectra, False),
    "fig11": (fig10_11_spectra, False),
    "fig13": (fig13_overall, True),
    "fig14": (fig14_noise_motion, True),
    "fig15": (fig15_devices_training, True),
    "table1": (table1_angle, True),
    "table2": (table2_3_system, False),
    "table3": (table2_3_system, False),
    "baseline": (baseline_comparison, True),
    "ablations": (ablations, True),
    "labelnoise": (label_noise, True),
    "robustness": (robustness_curves, True),
    "calibdrift": (calibration_drift, True),
}


def _run_one(name: str) -> None:
    module, needs_scale = _EXPERIMENTS[name]
    current_event_log().emit(obs_names.EVENT_EXPERIMENT_STARTED, experiment=name)
    start = time.time()
    if needs_scale:
        scale = scale_from_env()
        # Every scaled experiment's default config takes `scale`.
        config_types = {
            "fig13": fig13_overall.Fig13Config,
            "fig14": fig14_noise_motion.Fig14Config,
            "fig15": fig15_devices_training.Fig15Config,
            "table1": table1_angle.Table1Config,
            "baseline": baseline_comparison.BaselineConfig,
            "ablations": ablations.AblationConfig,
            "labelnoise": label_noise.LabelNoiseConfig,
            "robustness": robustness_curves.RobustnessCurvesConfig,
            "calibdrift": calibration_drift.CalibrationDriftExperimentConfig,
        }
        result = module.run(config_types[name](scale=scale))
    else:
        result = module.run()
    print(result.render())
    elapsed = time.time() - start
    current_event_log().emit(
        obs_names.EVENT_EXPERIMENT_FINISHED,
        experiment=name,
        seconds=round(elapsed, 3),
    )
    print(f"[{name}: {elapsed:.0f}s]\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which paper artefact to regenerate",
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="workload scale: small / default / paper, or a participant count",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="enable tracing and write the run record to this directory",
    )
    args = parser.parse_args(argv)
    if args.scale is not None:
        os.environ["EARSONAR_SCALE"] = args.scale
    names = sorted(set(_EXPERIMENTS)) if args.experiment == "all" else [args.experiment]

    tracer: Tracer | None = None
    events: EventLog | None = None
    scopes = contextlib.ExitStack()
    if args.trace_dir is not None:
        tracer = Tracer()
        events = EventLog(path=Path(args.trace_dir) / "events.jsonl")
        scopes.enter_context(use_tracer(tracer))
        scopes.enter_context(use_event_log(events))

    with scopes:
        # fig07/fig08 and fig10/fig11 and table2/table3 share modules; dedupe.
        seen_modules = set()
        for name in names:
            module, _ = _EXPERIMENTS[name]
            if module in seen_modules:
                continue
            seen_modules.add(module)
            _run_one(name)

    if tracer is not None and events is not None:
        events.close()
        paths = write_run_record(
            args.trace_dir,
            spans=tracer.traces,
            manifest=capture_manifest(argv=argv),
            events=events,
        )
        print(f"trace written: {paths['record']}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
