"""Command-line experiment runner.

Run any paper experiment by name::

    python -m repro.experiments fig13
    python -m repro.experiments table1 --scale small
    python -m repro.experiments all --scale 8

Scale accepts the ``EARSONAR_SCALE`` presets (``small`` / ``default`` /
``paper``) or a participant count.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from . import (
    ablations,
    baseline_comparison,
    label_noise,
    fig02_feasibility,
    fig07_08_signals,
    fig09_consistency,
    fig10_11_spectra,
    fig13_overall,
    fig14_noise_motion,
    fig15_devices_training,
    robustness_curves,
    table1_angle,
    table2_3_system,
)
from .common import scale_from_env

#: Experiment name -> (module, needs_scale).  Modules whose configs
#: carry an ExperimentScale receive the CLI-selected scale.
_EXPERIMENTS = {
    "fig02": (fig02_feasibility, False),
    "fig07": (fig07_08_signals, False),
    "fig08": (fig07_08_signals, False),
    "fig09": (fig09_consistency, False),
    "fig10": (fig10_11_spectra, False),
    "fig11": (fig10_11_spectra, False),
    "fig13": (fig13_overall, True),
    "fig14": (fig14_noise_motion, True),
    "fig15": (fig15_devices_training, True),
    "table1": (table1_angle, True),
    "table2": (table2_3_system, False),
    "table3": (table2_3_system, False),
    "baseline": (baseline_comparison, True),
    "ablations": (ablations, True),
    "labelnoise": (label_noise, True),
    "robustness": (robustness_curves, True),
}


def _run_one(name: str) -> None:
    module, needs_scale = _EXPERIMENTS[name]
    start = time.time()
    if needs_scale:
        scale = scale_from_env()
        # Every scaled experiment's default config takes `scale`.
        config_types = {
            "fig13": fig13_overall.Fig13Config,
            "fig14": fig14_noise_motion.Fig14Config,
            "fig15": fig15_devices_training.Fig15Config,
            "table1": table1_angle.Table1Config,
            "baseline": baseline_comparison.BaselineConfig,
            "ablations": ablations.AblationConfig,
            "labelnoise": label_noise.LabelNoiseConfig,
            "robustness": robustness_curves.RobustnessCurvesConfig,
        }
        result = module.run(config_types[name](scale=scale))
    else:
        result = module.run()
    print(result.render())
    print(f"[{name}: {time.time() - start:.0f}s]\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which paper artefact to regenerate",
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="workload scale: small / default / paper, or a participant count",
    )
    args = parser.parse_args(argv)
    if args.scale is not None:
        os.environ["EARSONAR_SCALE"] = args.scale
    names = sorted(set(_EXPERIMENTS)) if args.experiment == "all" else [args.experiment]
    # fig07/fig08 and fig10/fig11 and table2/table3 share modules; dedupe.
    seen_modules = set()
    for name in names:
        module, _ = _EXPERIMENTS[name]
        if module in seen_modules:
            continue
        seen_modules.add(module)
        _run_one(name)
    return 0


if __name__ == "__main__":
    sys.exit(main())
