"""Ablations of EarSonar's design choices (DESIGN.md Sec. "worth ablating").

Four knobs, each isolated on the same study:

1. **segmentation** — parity-decomposition echo extraction vs the naive
   fixed-offset peak picker (the paper credits this stage for its
   margin over Chan et al.);
2. **in-group clustering** — several sub-clusters per state vs one;
3. **feature selection** — Laplacian-score top-25 vs the full 105;
4. **outlier removal** — the multi-loop confirmation on vs off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import DetectorConfig, EarSonarConfig
from ..core.evaluation import evaluate_loocv
from ..core.pipeline import EarSonarPipeline
from ..signal.parity import EchoSegmenterConfig
from .common import ExperimentScale, build_feature_table, format_table, percent

__all__ = ["AblationConfig", "AblationResult", "run"]


@dataclass(frozen=True)
class AblationConfig:
    """Which study to ablate on.

    With ``heterogeneous`` set, the study is recorded under the paper's
    varied conditions (Sec. VI-A: angle, room level, movement) instead
    of the standard quiet/seated protocol — the regime where the
    fine-grained stages are expected to earn their keep.
    """

    scale: ExperimentScale = field(default_factory=ExperimentScale)
    heterogeneous: bool = False


@dataclass
class AblationResult:
    """LOOCV accuracy per variant, keyed by variant label."""

    accuracies: dict[str, float]
    baseline_label: str = "full system"

    @property
    def baseline(self) -> float:
        """Accuracy of the unablated system."""
        return self.accuracies[self.baseline_label]

    def delta(self, label: str) -> float:
        """Accuracy change of a variant relative to the full system."""
        return self.accuracies[label] - self.baseline

    def render(self) -> str:
        rows = []
        for label, acc in self.accuracies.items():
            delta = "" if label == self.baseline_label else f"{100 * self.delta(label):+.1f}pp"
            rows.append([label, percent(acc), delta])
        return format_table(
            ["variant", "LOOCV accuracy", "vs full"],
            rows,
            title="Ablations — contribution of each design choice",
        )


def _table_for(config: AblationConfig, pipeline: EarSonarPipeline | None = None):
    """Feature table under the configured recording protocol."""
    if not config.heterogeneous:
        return build_feature_table(config.scale, pipeline=pipeline)
    from ..core.evaluation import extract_features
    from .baseline_comparison import BaselineConfig, _mixed_condition_study

    study = _mixed_condition_study(BaselineConfig(scale=config.scale))
    return extract_features(study, pipeline or EarSonarPipeline(EarSonarConfig()))


def run(config: AblationConfig | None = None) -> AblationResult:
    """Execute all ablation arms."""
    config = config or AblationConfig()
    table = _table_for(config)

    accuracies: dict[str, float] = {}
    accuracies["full system"] = evaluate_loocv(table, DetectorConfig()).report().accuracy
    accuracies["plain k-means (1 cluster/state)"] = (
        evaluate_loocv(table, DetectorConfig(clusters_per_state=1)).report().accuracy
    )
    accuracies["no feature selection (all 105)"] = (
        evaluate_loocv(table, DetectorConfig(selected_features=105)).report().accuracy
    )
    accuracies["no outlier removal"] = (
        evaluate_loocv(table, DetectorConfig(outlier_removal=False)).report().accuracy
    )

    # Segmentation ablation needs features re-extracted with the naive
    # peak picker.
    peak_config = EarSonarConfig(
        segmenter=EchoSegmenterConfig(method="peak"),
    )
    peak_table = _table_for(config, pipeline=EarSonarPipeline(peak_config))
    accuracies["peak picking instead of parity segmentation"] = (
        evaluate_loocv(peak_table, DetectorConfig()).report().accuracy
    )
    return AblationResult(accuracies=accuracies)
