"""Headline comparison — EarSonar vs the prior acoustic method.

The paper claims its fine-grained pipeline detects MEE at 92.8 %
accuracy, "8 % higher than the previous method based on acoustic
detection of MEE" (Chan et al. 2019, which the paper reports as not
exceeding 85 %).  This experiment trains both systems on the same
virtual cohort and scores them on held-out participants, plus the naive
band-energy threshold as a floor.

Following the paper's data-collection protocol (Sec. VI-A: "we also
set different experimental parameters, such as different room noises,
different earphone wearing modes"), sessions vary mildly in wearing
angle, room level, and movement.  This heterogeneity is where the
fine-grained stages earn their margin: EarSonar's event gating, echo
segmentation, and chirp averaging localise the drum signature, while
the baseline's whole-recording coarse spectrum soaks up every
disturbance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.chan2019 import Chan2019Detector
from ..baselines.threshold import ThresholdDetector
from ..core.config import DetectorConfig, EarSonarConfig
from ..core.detector import MeeDetector
from ..core.pipeline import EarSonarPipeline
from ..core.results import state_to_index
from ..errors import NoEchoFoundError
from ..simulation.session import Recording
from .common import ExperimentScale, format_table, percent

__all__ = ["BaselineConfig", "BaselineResult", "run"]

#: Paper numbers for the headline comparison.
PAPER_EARSONAR_ACCURACY = 0.928
PAPER_CHAN_ACCURACY = 0.85


@dataclass(frozen=True)
class BaselineConfig:
    """Shared-cohort head-to-head setup."""

    scale: ExperimentScale = field(default_factory=ExperimentScale)
    train_fraction: float = 0.75
    #: Session heterogeneity (paper Sec. VI-A): per-session wearing
    #: angle up to this bound, room level between quiet and this SPL,
    #: and a uniform mix of the prescribed body movements.
    max_angle_deg: float = 35.0
    max_noise_spl_db: float = 65.0


@dataclass
class BaselineResult:
    """Accuracies of all three systems on the same held-out children."""

    earsonar_accuracy: float
    chan_accuracy: float
    chan_binary_accuracy: float
    threshold_binary_accuracy: float
    num_test: int

    @property
    def earsonar_margin(self) -> float:
        """EarSonar minus Chan on the four-state task (paper: ~+8 %)."""
        return self.earsonar_accuracy - self.chan_accuracy

    def render(self) -> str:
        rows = [
            [
                "EarSonar (4-state)",
                percent(self.earsonar_accuracy),
                percent(PAPER_EARSONAR_ACCURACY),
            ],
            [
                "Chan et al. 2019 (4-state)",
                percent(self.chan_accuracy),
                f"<= {percent(PAPER_CHAN_ACCURACY)}",
            ],
            ["Chan et al. 2019 (binary fluid)", percent(self.chan_binary_accuracy), "-"],
            ["band-energy threshold (binary)", percent(self.threshold_binary_accuracy), "-"],
        ]
        table = format_table(
            ["system", "accuracy", "paper"],
            rows,
            title=(
                f"Baseline comparison on {self.num_test} held-out recordings "
                "(heterogeneous conditions per paper Sec. VI-A)"
            ),
        )
        return table + f"\nEarSonar margin over Chan: {percent(self.earsonar_margin)} (paper ~+8%)"


def _mixed_condition_study(config: BaselineConfig):
    """Simulate the study with per-session condition heterogeneity."""
    import numpy as np

    from ..simulation.cohort import StudyDataset, build_cohort
    from ..simulation.motion import Movement
    from ..simulation.noise import QUIET_ROOM_SPL_DB
    from ..simulation.session import SessionConfig, record_session

    scale = config.scale
    rng = np.random.default_rng(scale.seed)
    cohort = build_cohort(scale.num_participants, rng, total_days=scale.total_days)
    movements = (Movement.SIT, Movement.HEAD, Movement.WALKING, Movement.NODDING)
    recordings = []
    for participant in cohort:
        for day in range(scale.total_days):
            for s in range(scale.sessions_per_day):
                time_of_day = (s + 1) / (scale.sessions_per_day + 1)
                session = SessionConfig(
                    duration_s=scale.duration_s,
                    angle_deg=float(rng.uniform(0.0, config.max_angle_deg)),
                    noise_spl_db=float(
                        rng.uniform(QUIET_ROOM_SPL_DB, config.max_noise_spl_db)
                    ),
                    movement=movements[int(rng.integers(0, len(movements)))],
                )
                recordings.append(
                    record_session(participant, day + time_of_day, session, rng)
                )
    return StudyDataset(recordings)


def run(config: BaselineConfig | None = None) -> BaselineResult:
    """Train all systems on the same participants, test on the rest."""
    config = config or BaselineConfig()
    study = _mixed_condition_study(config)
    pids = study.participant_ids
    num_train = max(2, int(round(len(pids) * config.train_fraction)))
    train_pids = set(pids[:num_train])
    train: list[Recording] = [r for r in study if r.participant_id in train_pids]
    test: list[Recording] = [r for r in study if r.participant_id not in train_pids]

    # EarSonar: full pipeline + clustering detector.
    pipeline = EarSonarPipeline(EarSonarConfig())

    def process_all(recordings):
        features, states = [], []
        failed = 0
        for rec in recordings:
            try:
                features.append(pipeline.process(rec).features)
                states.append(rec.state)
            except NoEchoFoundError:
                failed += 1
        return np.stack(features), states, failed

    train_x, train_s, _ = process_all(train)
    test_x, test_s, test_failed = process_all(test)
    detector = MeeDetector(DetectorConfig()).fit(train_x, train_s)
    predicted = detector.predict_indices(test_x)
    truth = np.array([state_to_index(s) for s in test_s])
    earsonar_acc = float(np.sum(predicted == truth)) / (truth.size + test_failed)

    # Chan et al.: coarse spectrum, no segmentation.
    chan = Chan2019Detector()
    chan.fit_states(train, [r.state for r in train])
    chan_states = chan.predict_states(test)
    chan_acc = float(np.mean([p is r.state for p, r in zip(chan_states, test)]))

    chan_binary = Chan2019Detector()
    chan_binary.fit_binary(train, [r.state for r in train])
    binary_pred = chan_binary.predict_fluid(test)
    binary_truth = np.array([1 if r.state.is_effusion else 0 for r in test])
    chan_binary_acc = float(np.mean(binary_pred == binary_truth))

    threshold = ThresholdDetector()
    threshold.fit(train, [r.state for r in train])
    threshold_acc = float(np.mean(threshold.predict_fluid(test) == binary_truth))

    return BaselineResult(
        earsonar_accuracy=earsonar_acc,
        chan_accuracy=chan_acc,
        chan_binary_accuracy=chan_binary_acc,
        threshold_binary_accuracy=threshold_acc,
        num_test=len(test),
    )
