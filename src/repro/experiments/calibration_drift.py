"""Calibration-drift robustness — F1 across reverb strength x drift.

The echo-aware pipeline claims two things: the rake stage absorbs early
canal reflections, and the on-device calibration estimate divides out a
drifted earphone's gain/tilt error.  This experiment pressure-tests
both claims on a grid of (reverb strength, drift magnitude) capture
conditions, screening every cell twice:

- **compensated** — reverb and calibration stages enabled (the full
  echo-aware pipeline);
- **naive** — the plain robust pipeline, kept as the reference that
  shows what the compensation is worth.

Each arm trains its own detector on *clean* captures processed by its
own pipeline, so train and test always share an analysis path and the
comparison isolates capture-condition damage, not pipeline mismatch.
Common random numbers across cells (the session RNG is reset per cell)
mean every cell screens the *same* underlying recordings, differing
only through the simulated reverb/drift — so the grid differences are
pure treatment effects.

The artifact (``robustness_calibration_drift.json``) lands next to the
fault-sweep curves and carries F1, completion rate, and the mean
estimated calibration offset per cell.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..acoustics.reverb import ReverbConfig
from ..core.config import CalibrationConfig, DetectorConfig, EarSonarConfig
from ..core.config import RobustnessConfig as PipelineRobustnessConfig
from ..core.detector import MeeDetector
from ..core.pipeline import EarSonarPipeline
from ..core.results import index_to_state
from ..errors import SignalProcessingError
from ..simulation.calibration import CalibrationDriftConfig as DriftModelConfig
from ..simulation.cohort import build_cohort
from ..simulation.session import SessionConfig, record_session
from .common import ExperimentScale, build_feature_table, format_table
from .conditions import state_days

__all__ = [
    "CalibrationDriftExperimentConfig",
    "GridCell",
    "CalibrationDriftResult",
    "run",
]


@dataclass(frozen=True)
class CalibrationDriftExperimentConfig:
    """Grid sweep of reverb strength x calibration-drift magnitude.

    Attributes
    ----------
    scale:
        Study scale for detector training and the test cohort.
    reverb_strengths:
        Simulated reverb strength per column; 0 disables the reverb
        model entirely (bit-identical anechoic captures).
    drift_scales:
        Multiplier on the default drift magnitudes per row; 0 disables
        the drift model (factory-calibrated fleet).
    sessions_per_state:
        Test recordings per participant per ground-truth state.
    artifact_dir:
        Directory for the JSON artifact; ``None`` disables writing.
    """

    scale: ExperimentScale = field(default_factory=ExperimentScale)
    reverb_strengths: tuple[float, ...] = (0.0, 1.0, 2.0)
    drift_scales: tuple[float, ...] = (0.0, 1.0, 2.0)
    sessions_per_state: int = 1
    artifact_dir: str | None = "artifacts/robustness"


@dataclass(frozen=True)
class GridCell:
    """Both arms' screening outcome at one capture condition."""

    reverb_strength: float
    drift_scale: float
    f1_compensated: float
    f1_naive: float
    completion_compensated: float
    completion_naive: float
    mean_abs_offset_db: float

    def summary(self) -> dict:
        """JSON-serializable digest of this grid cell."""
        return {
            "reverb_strength": self.reverb_strength,
            "drift_scale": self.drift_scale,
            "f1_compensated": self.f1_compensated,
            "f1_naive": self.f1_naive,
            "completion_compensated": self.completion_compensated,
            "completion_naive": self.completion_naive,
            "mean_abs_offset_db": self.mean_abs_offset_db,
        }


@dataclass
class CalibrationDriftResult:
    """The full grid plus artifact bookkeeping."""

    cells: list[GridCell]
    artifact_paths: list[str] = field(default_factory=list)

    def cell(self, reverb_strength: float, drift_scale: float) -> GridCell:
        """The cell at one (reverb, drift) condition."""
        for c in self.cells:
            if (
                c.reverb_strength == reverb_strength
                and c.drift_scale == drift_scale
            ):
                return c
        raise KeyError(f"no cell at ({reverb_strength}, {drift_scale})")

    @property
    def clean_cell(self) -> GridCell:
        """The undamaged corner of the grid (both axes at zero)."""
        return self.cell(0.0, 0.0)

    def artifact(self) -> dict:
        """Full JSON artifact payload."""
        return {
            "experiment": "calibration_drift",
            "reverb_strengths": sorted({c.reverb_strength for c in self.cells}),
            "drift_scales": sorted({c.drift_scale for c in self.cells}),
            "cells": [c.summary() for c in self.cells],
        }

    def write_artifacts(self, directory: str | Path) -> list[str]:
        """Write ``robustness_calibration_drift.json``; returns paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "robustness_calibration_drift.json"
        path.write_text(
            json.dumps(self.artifact(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        self.artifact_paths = [str(path)]
        return self.artifact_paths

    def render(self) -> str:
        headers = [
            "reverb",
            "drift",
            "F1 comp",
            "F1 naive",
            "compl comp",
            "compl naive",
            "|offset| dB",
        ]
        rows = []
        for c in self.cells:
            rows.append(
                [
                    f"{c.reverb_strength:g}",
                    f"{c.drift_scale:g}",
                    f"{c.f1_compensated:.2f}",
                    f"{c.f1_naive:.2f}",
                    f"{c.completion_compensated:.2f}",
                    f"{c.completion_naive:.2f}",
                    f"{c.mean_abs_offset_db:.2f}",
                ]
            )
        table = format_table(
            headers,
            rows,
            title=(
                "Calibration drift — compensated vs naive screening across "
                "reverb x drift"
            ),
        )
        if self.artifact_paths:
            table += "\nartifacts: " + ", ".join(self.artifact_paths)
        return table


def _arm_configs() -> tuple[EarSonarConfig, EarSonarConfig]:
    """(compensated, naive) pipeline configurations.

    Both run with graceful degradation on, so damaged captures degrade
    before they fail; only the compensated arm turns on the rake and
    calibration stages.
    """
    compensated = EarSonarConfig(
        robustness=PipelineRobustnessConfig(sanitize_nonfinite=True),
        reverb=ReverbConfig(enabled=True),
        calibration=CalibrationConfig(enabled=True),
    )
    naive = EarSonarConfig(
        robustness=PipelineRobustnessConfig(sanitize_nonfinite=True)
    )
    return compensated, naive


def _cell_session_config(
    base: SessionConfig, reverb_strength: float, drift_scale: float
) -> SessionConfig:
    """The capture-side session config for one grid cell."""
    reverb = ReverbConfig(
        enabled=reverb_strength > 0.0,
        strength=reverb_strength if reverb_strength > 0.0 else 1.0,
    )
    defaults = DriftModelConfig()
    calibration = DriftModelConfig(
        enabled=drift_scale > 0.0,
        gain_drift_db=defaults.gain_drift_db * max(drift_scale, 1.0),
        tilt_drift_db=defaults.tilt_drift_db * max(drift_scale, 1.0),
    )
    return dataclasses.replace(base, reverb=reverb, calibration=calibration)


def run(
    config: CalibrationDriftExperimentConfig | None = None,
) -> CalibrationDriftResult:
    """Train both arms clean, then screen every grid cell with each."""
    config = config or CalibrationDriftExperimentConfig()
    comp_config, naive_config = _arm_configs()
    arms = []
    for arm_config in (comp_config, naive_config):
        pipeline = EarSonarPipeline(arm_config)
        table = build_feature_table(config.scale, pipeline=pipeline)
        detector = MeeDetector(DetectorConfig()).fit(table.features, table.states)
        arms.append((pipeline, detector))

    cohort = build_cohort(
        config.scale.num_participants,
        np.random.default_rng(config.scale.seed),
        total_days=config.scale.total_days,
    )
    base_session = SessionConfig(duration_s=config.scale.duration_s)
    cells = []
    for reverb_strength in config.reverb_strengths:
        for drift_scale in config.drift_scales:
            session = _cell_session_config(
                base_session, reverb_strength, drift_scale
            )
            # Common random numbers: the session RNG restarts per cell,
            # so every cell screens the same recordings, reshaped only
            # by the cell's reverb/drift condition.
            session_rng = np.random.default_rng(config.scale.seed + 7)
            tallies = [
                {"tp": 0, "fp": 0, "fn": 0, "tn": 0, "rejected": 0}
                for _ in arms
            ]
            offsets = []
            for unit, participant in enumerate(cohort):
                # Each participant screens on their own physical unit,
                # so the fleet's drift walks are independent.
                cell_session = dataclasses.replace(session, device_unit=unit)
                days = state_days(participant, config.scale.total_days)
                for state, day in days.items():
                    for _ in range(config.sessions_per_state):
                        recording = record_session(
                            participant, day, cell_session, session_rng
                        )
                        truth = recording.state.is_effusion
                        for (pipeline, detector), tally in zip(arms, tallies):
                            try:
                                processed = pipeline.process(recording)
                            except SignalProcessingError:
                                tally["rejected"] += 1
                                predicted = False
                            else:
                                if pipeline is arms[0][0]:
                                    offsets.append(
                                        abs(processed.calibration_offset_db)
                                    )
                                index = int(
                                    detector.predict_indices(
                                        processed.features
                                    )[0]
                                )
                                predicted = index_to_state(index).is_effusion
                            if truth and predicted:
                                tally["tp"] += 1
                            elif truth:
                                tally["fn"] += 1
                            elif predicted:
                                tally["fp"] += 1
                            else:
                                tally["tn"] += 1
            scores = []
            for tally in tallies:
                denom = 2 * tally["tp"] + tally["fp"] + tally["fn"]
                f1 = 2 * tally["tp"] / denom if denom else 0.0
                total = sum(
                    tally[k] for k in ("tp", "fp", "fn", "tn")
                )
                completion = (
                    1.0 - tally["rejected"] / total if total else 0.0
                )
                scores.append((f1, completion))
            cells.append(
                GridCell(
                    reverb_strength=reverb_strength,
                    drift_scale=drift_scale,
                    f1_compensated=scores[0][0],
                    f1_naive=scores[1][0],
                    completion_compensated=scores[0][1],
                    completion_naive=scores[1][1],
                    mean_abs_offset_db=(
                        float(np.mean(offsets)) if offsets else 0.0
                    ),
                )
            )
    result = CalibrationDriftResult(cells=cells)
    if config.artifact_dir is not None:
        result.write_artifacts(config.artifact_dir)
    return result
