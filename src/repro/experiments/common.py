"""Shared infrastructure for the paper's experiments.

Every experiment module in this package follows the same pattern: a
frozen ``*Config`` dataclass describing the workload (scaled down from
the paper's 112-child / 10-second protocol by default, overridable up
to full scale), a ``run(config)`` function returning a result object,
and a ``render()`` on the result that prints a paper-vs-measured
comparison table.

``ExperimentScale`` centralises the scaling knobs; the environment
variable ``EARSONAR_SCALE`` selects a preset (``small``, ``default``,
``paper``) for the benchmark harness.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..runtime.cache import FeatureCache
    from ..runtime.metrics import RuntimeMetrics

from ..core.config import EarSonarConfig
from ..core.evaluation import FeatureTable, extract_features
from ..core.pipeline import EarSonarPipeline
from ..errors import ConfigurationError
from ..simulation.cohort import StudyDataset, StudyDesign, build_cohort, simulate_study
from ..simulation.session import SessionConfig

__all__ = [
    "ExperimentScale",
    "scale_from_env",
    "workers_from_env",
    "build_study",
    "build_feature_table",
    "format_table",
    "sparkline",
    "percent",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Workload scale for the evaluation experiments.

    Attributes
    ----------
    num_participants:
        Cohort size (paper: 112).
    total_days:
        Follow-up days per participant (paper: 20).
    sessions_per_day:
        Recordings per day (paper: 2).
    duration_s:
        Recording length in seconds (paper: 10; the pipeline averages
        over chirps, so shorter recordings trade accuracy for compute —
        2 s keeps the headline numbers in the paper's band).
    seed:
        Master seed for the virtual clinic.
    """

    num_participants: int = 16
    total_days: int = 10
    sessions_per_day: int = 1
    duration_s: float = 2.0
    seed: int = 2023

    def __post_init__(self) -> None:
        if self.num_participants < 2:
            raise ConfigurationError("need at least 2 participants for LOOCV")
        if self.total_days < 8:
            raise ConfigurationError("need at least 8 days to cover all states")

    @property
    def num_recordings(self) -> int:
        """Total recordings the study design produces."""
        return self.num_participants * self.total_days * self.sessions_per_day


_PRESETS = {
    "small": ExperimentScale(num_participants=8, total_days=8, duration_s=1.0),
    "default": ExperimentScale(),
    "paper": ExperimentScale(
        num_participants=112, total_days=20, sessions_per_day=2, duration_s=10.0
    ),
}


def scale_from_env(default: str = "default") -> ExperimentScale:
    """Resolve the experiment scale from ``EARSONAR_SCALE``.

    Accepts a preset name (``small`` / ``default`` / ``paper``) or a
    participant count (an integer), falling back to ``default``.
    """
    raw = os.environ.get("EARSONAR_SCALE", default).strip().lower()
    if raw in _PRESETS:
        return _PRESETS[raw]
    try:
        count = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"EARSONAR_SCALE={raw!r} is neither a preset {sorted(_PRESETS)} nor an integer"
        ) from None
    return ExperimentScale(num_participants=count)


def workers_from_env(default: int = 1) -> int:
    """Worker-pool size from ``EARSONAR_WORKERS`` (serial when unset).

    ``EARSONAR_WORKERS=auto`` uses the machine's CPU count.
    """
    raw = os.environ.get("EARSONAR_WORKERS", "").strip().lower()
    if not raw:
        return default
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        workers = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"EARSONAR_WORKERS={raw!r} is neither an integer nor 'auto'"
        ) from None
    if workers < 1:
        raise ConfigurationError(f"EARSONAR_WORKERS must be >= 1, got {workers}")
    return workers


def build_study(
    scale: ExperimentScale,
    *,
    session_config: SessionConfig | None = None,
) -> StudyDataset:
    """Simulate the longitudinal study at the given scale."""
    rng = np.random.default_rng(scale.seed)
    cohort = build_cohort(scale.num_participants, rng, total_days=scale.total_days)
    session = session_config or SessionConfig(duration_s=scale.duration_s)
    design = StudyDesign(
        total_days=scale.total_days,
        sessions_per_day=scale.sessions_per_day,
        session_config=session,
    )
    return simulate_study(cohort, design, rng)


def build_feature_table(
    scale: ExperimentScale,
    *,
    session_config: SessionConfig | None = None,
    pipeline: EarSonarPipeline | None = None,
    workers: int | None = None,
    cache: "FeatureCache | None" = None,
    metrics: "RuntimeMetrics | None" = None,
) -> FeatureTable:
    """Simulate a study and run the signal pipeline over it.

    Extraction runs on the batch runtime (:mod:`repro.runtime`).  The
    worker count defaults to the ``EARSONAR_WORKERS`` environment
    variable (1 — serial — when unset), so existing experiment scripts
    pick up parallelism without code changes; results are identical
    either way.
    """
    study = build_study(scale, session_config=session_config)
    pipeline = pipeline or EarSonarPipeline(EarSonarConfig())
    if workers is None:
        workers = workers_from_env()
    return extract_features(
        study, pipeline, workers=workers, cache=cache, metrics=metrics
    )


# ---------------------------------------------------------------------------
# Text rendering
# ---------------------------------------------------------------------------


def format_table(headers: list[str], rows: list[list[str]], *, title: str = "") -> str:
    """Render a fixed-width text table (monospace, benchmark output)."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row} does not match headers {headers}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, *, width: int = 48) -> str:
    """Compact unicode sparkline of a curve (for 'figure' outputs)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    if values.size > width:
        idx = np.linspace(0, values.size - 1, width).astype(int)
        values = values[idx]
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < 1e-12:
        return _SPARK_LEVELS[0] * values.size
    scaled = (values - lo) / (hi - lo)
    return "".join(_SPARK_LEVELS[int(round(s * (len(_SPARK_LEVELS) - 1)))] for s in scaled)


def percent(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.1f}%"
