"""Shared machinery for the impact-quantification sweeps (Sec. VI-C).

The paper trains EarSonar under the standard condition (quiet room,
sitting child, 0-degree wearing angle, prototype earphone) and then
quantifies the impact of one varied factor at a time: wearing angle
(Table I), background noise and body movement (Fig. 14), and earphone
hardware (Fig. 15a).  ``evaluate_condition`` reproduces that protocol:
fresh test sessions are recorded under the varied condition for every
cohort member across all four ground-truth states, and recordings the
pipeline cannot process (no echo found) count as rejections of their
true state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.detector import MeeDetector
from ..core.pipeline import EarSonarPipeline
from ..core.results import state_to_index
from ..errors import NoEchoFoundError
from ..learning.metrics import false_acceptance_rate
from ..simulation.effusion import MeeState
from ..simulation.participant import Participant
from ..simulation.session import SessionConfig, record_session

__all__ = ["ConditionResult", "state_days", "evaluate_condition"]

#: Index used for "rejected" predictions when computing FRR: rejected
#: recordings are counted against their true class but never accepted
#: as any other class.
_NUM_STATES = len(MeeState.ordered())


@dataclass
class ConditionResult:
    """Per-condition detection outcome.

    Attributes
    ----------
    name:
        Condition label ("0 deg", "55 dB", "walking", ...).
    true_indices / predicted_indices:
        Class ids of every *processable* test recording.
    num_rejected_per_state:
        Unprocessable recordings per true state (pipeline rejections).
    """

    name: str
    true_indices: np.ndarray
    predicted_indices: np.ndarray
    num_rejected_per_state: dict[MeeState, int] = field(default_factory=dict)

    @property
    def num_rejected(self) -> int:
        """Total pipeline rejections under this condition."""
        return sum(self.num_rejected_per_state.values())

    @property
    def num_tested(self) -> int:
        """Total test recordings, including rejections."""
        return self.true_indices.size + self.num_rejected

    @property
    def accuracy(self) -> float:
        """Correct fraction over all test recordings (rejections count wrong)."""
        if self.num_tested == 0:
            return 0.0
        correct = int(np.sum(self.true_indices == self.predicted_indices))
        return correct / self.num_tested

    def far(self, state: MeeState) -> float:
        """False acceptance rate of ``state`` (rejections never accept)."""
        if self.true_indices.size == 0:
            return 0.0
        return false_acceptance_rate(
            self.true_indices, self.predicted_indices, state_to_index(state), _NUM_STATES
        )

    def frr(self, state: MeeState) -> float:
        """False rejection rate of ``state`` including pipeline rejections."""
        idx = state_to_index(state)
        mask = self.true_indices == idx
        rejected = self.num_rejected_per_state.get(state, 0)
        total = int(mask.sum()) + rejected
        if total == 0:
            return 0.0
        misclassified = int(np.sum(self.predicted_indices[mask] != idx))
        return (misclassified + rejected) / total


def state_days(participant: Participant, total_days: int) -> dict[MeeState, float]:
    """A representative study day per state for one participant."""
    p_end, m_end, s_end = participant.trajectory.stage_boundaries
    return {
        MeeState.PURULENT: min(0.5, p_end - 0.5),
        MeeState.MUCOID: p_end + 0.5,
        MeeState.SEROUS: m_end + 0.5,
        MeeState.CLEAR: min(s_end + 0.5, total_days - 0.1),
    }


def evaluate_condition(
    name: str,
    detector: MeeDetector,
    pipeline: EarSonarPipeline,
    cohort: Sequence[Participant],
    session_config: SessionConfig,
    rng: np.random.Generator,
    *,
    total_days: int = 20,
    sessions_per_state: int = 1,
) -> ConditionResult:
    """Record fresh sessions under ``session_config`` and score them.

    Every cohort member contributes ``sessions_per_state`` recordings
    in each of the four states (at representative days of their own
    trajectory), so FAR/FRR are balanced across classes.
    """
    true_list: list[int] = []
    pred_list: list[int] = []
    rejected: dict[MeeState, int] = {s: 0 for s in MeeState.ordered()}
    for participant in cohort:
        days = state_days(participant, total_days)
        for state, day in days.items():
            for _ in range(sessions_per_state):
                recording = record_session(participant, day, session_config, rng)
                try:
                    processed = pipeline.process(recording)
                except NoEchoFoundError:
                    rejected[recording.state] += 1
                    continue
                predicted = int(detector.predict_indices(processed.features)[0])
                true_list.append(state_to_index(recording.state))
                pred_list.append(predicted)
    return ConditionResult(
        name=name,
        true_indices=np.array(true_list, dtype=int),
        predicted_indices=np.array(pred_list, dtype=int),
        num_rejected_per_state=rejected,
    )
