"""Fig. 2 — feasibility: the acoustic dip appears with effusion.

Reproduces the paper's motivating observation (Sec. II-B): probing the
same child's ear when sick and after recovery, the amplitude spectrum
of the in-ear response shows a pronounced dip near 18 kHz only while
fluid is present.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import EarSonarConfig
from ..core.pipeline import EarSonarPipeline
from ..simulation.participant import sample_participant
from ..simulation.session import SessionConfig, record_session
from .common import format_table, sparkline

__all__ = ["Fig02Config", "Fig02Result", "run"]


@dataclass(frozen=True)
class Fig02Config:
    """One patient, measured while purulent and after recovery."""

    seed: int = 7
    duration_s: float = 2.0
    sick_day: float = 0.5
    recovered_day: float = 19.5


@dataclass
class Fig02Result:
    """Absorption curves with and without effusion plus dip statistics."""

    frequencies: np.ndarray
    fluid_curve: np.ndarray
    clear_curve: np.ndarray

    def dip_frequency(self, curve: np.ndarray) -> float:
        """Frequency of the curve's minimum, in Hz."""
        return float(self.frequencies[np.argmin(curve)])

    def dip_depth(self, curve: np.ndarray) -> float:
        """1 - (minimum / maximum) of the curve."""
        return float(1.0 - curve.min() / curve.max())

    @property
    def dip_deepens_with_fluid(self) -> bool:
        """The paper's core qualitative finding."""
        return self.dip_depth(self.fluid_curve) > self.dip_depth(self.clear_curve)

    def render(self) -> str:
        rows = [
            [
                "middle ear with fluid",
                f"{self.dip_frequency(self.fluid_curve):.0f} Hz",
                f"{self.dip_depth(self.fluid_curve):.2f}",
                sparkline(self.fluid_curve),
            ],
            [
                "middle ear without fluid",
                f"{self.dip_frequency(self.clear_curve):.0f} Hz",
                f"{self.dip_depth(self.clear_curve):.2f}",
                sparkline(self.clear_curve),
            ],
        ]
        table = format_table(
            ["condition", "dip at", "dip depth", "spectrum 16-20 kHz"],
            rows,
            title="Fig. 2 — acoustic dip near 18 kHz (paper: dip apparent only with fluid)",
        )
        verdict = "deeper with fluid: " + ("YES (matches paper)" if self.dip_deepens_with_fluid else "NO")
        return table + "\n" + verdict


def run(config: Fig02Config | None = None) -> Fig02Result:
    """Execute the feasibility experiment."""
    config = config or Fig02Config()
    rng = np.random.default_rng(config.seed)
    patient = sample_participant(rng, "FIG2")
    pipeline = EarSonarPipeline(EarSonarConfig())
    session = SessionConfig(duration_s=config.duration_s)
    sick = pipeline.process(record_session(patient, config.sick_day, session, rng))
    clear = pipeline.process(record_session(patient, config.recovered_day, session, rng))
    return Fig02Result(
        frequencies=pipeline.config.features.frequency_grid(),
        fluid_curve=sick.curve,
        clear_curve=clear.curve,
    )
