"""Figs. 7-8 — received chirps, event detection, echo segmentation.

Reproduces the signal-level figures: the captured chirp train with its
overlapping direct/eardrum components (Fig. 7), the adaptive-energy
event boundaries (Fig. 8a), and the segmented eardrum echo with its
implied earphone-to-drum distance (Fig. 8b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import EarSonarConfig
from ..core.pipeline import EarSonarPipeline
from ..signal.events import Event
from ..signal.parity import EardrumEcho
from ..simulation.participant import sample_participant
from ..simulation.session import SessionConfig, record_session
from .common import format_table, sparkline

__all__ = ["SignalFigureConfig", "SignalFigureResult", "run"]


@dataclass(frozen=True)
class SignalFigureConfig:
    """One short capture on a purulent day."""

    seed: int = 11
    duration_s: float = 0.25
    day: float = 1.5


@dataclass
class SignalFigureResult:
    """Signal-level artefacts of one recording."""

    waveform: np.ndarray
    sample_rate: float
    events: list[Event]
    echoes: list[EardrumEcho]
    expected_chirps: int

    @property
    def event_spacing_samples(self) -> float:
        """Median spacing between detected events."""
        starts = [e.start for e in self.events]
        if len(starts) < 2:
            return float("nan")
        return float(np.median(np.diff(starts)))

    @property
    def echo_distances_m(self) -> np.ndarray:
        """One-way drum distances implied by every segmented echo."""
        return np.array([e.distance() for e in self.echoes])

    @property
    def echo_yield(self) -> float:
        """Fraction of events yielding a usable eardrum echo."""
        if not self.events:
            return 0.0
        return len(self.echoes) / len(self.events)

    def render(self) -> str:
        distances = self.echo_distances_m
        rows = [
            ["chirps emitted", str(self.expected_chirps), "…"],
            ["events detected (Fig. 8a)", str(len(self.events)), "paper: one per chirp"],
            [
                "event spacing",
                f"{self.event_spacing_samples:.0f} samples",
                "design: 240 (5 ms)",
            ],
            [
                "echoes segmented (Fig. 8b)",
                f"{len(self.echoes)} ({100 * self.echo_yield:.0f}%)",
                "paper: echo per chirp",
            ],
            [
                "median drum distance",
                f"{np.median(distances) * 100:.1f} cm" if distances.size else "n/a",
                "paper prior: 1.6-3.4 cm",
            ],
        ]
        table = format_table(
            ["quantity", "measured", "reference"],
            rows,
            title="Figs. 7-8 — chirp capture, event detection, echo segmentation",
        )
        head = self.waveform[: int(0.02 * self.sample_rate)]
        return table + "\nfirst 20 ms of capture: " + sparkline(np.abs(head), width=60)


def run(config: SignalFigureConfig | None = None) -> SignalFigureResult:
    """Execute the signal-level reproduction."""
    config = config or SignalFigureConfig()
    rng = np.random.default_rng(config.seed)
    patient = sample_participant(rng, "FIG7")
    session = SessionConfig(duration_s=config.duration_s)
    recording = record_session(patient, config.day, session, rng)
    pipeline = EarSonarPipeline(EarSonarConfig())
    filtered = pipeline.preprocess(recording.waveform)
    events = pipeline.detect_chirp_events(filtered)
    echoes = pipeline.extract_echoes(filtered, events)
    return SignalFigureResult(
        waveform=recording.waveform,
        sample_rate=recording.sample_rate,
        events=events,
        echoes=echoes,
        expected_chirps=session.num_chirps,
    )
