"""Fig. 9 — session-to-session and person-to-person PSD consistency.

The paper measures one healthy participant six times in a day (Fig.
9a-b: correlation above ~97 %) and compares two different healthy
participants (Fig. 9c-d: overall correlation still above ~90 %),
establishing that the eardrum-echo spectrum is a stable signature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import EarSonarConfig
from ..core.pipeline import EarSonarPipeline
from ..signal.correlation import correlation_matrix
from ..simulation.participant import sample_participant
from ..simulation.session import SessionConfig, record_session
from .common import format_table, percent

__all__ = ["Fig09Config", "Fig09Result", "run"]


@dataclass(frozen=True)
class Fig09Config:
    """Two healthy participants, several same-day sessions each."""

    seed: int = 21
    num_sessions: int = 6
    duration_s: float = 2.0
    clear_day: float = 19.5


@dataclass
class Fig09Result:
    """Within- and across-participant spectral correlations."""

    curves_a: np.ndarray
    curves_b: np.ndarray

    def _off_diagonal(self, matrix: np.ndarray) -> np.ndarray:
        idx = np.triu_indices(matrix.shape[0], k=1)
        return matrix[idx]

    @property
    def intra_a(self) -> np.ndarray:
        """Pairwise correlations among participant A's sessions."""
        return self._off_diagonal(correlation_matrix(self.curves_a))

    @property
    def intra_b(self) -> np.ndarray:
        """Pairwise correlations among participant B's sessions."""
        return self._off_diagonal(correlation_matrix(self.curves_b))

    @property
    def inter(self) -> np.ndarray:
        """Cross-participant correlations (every A-session vs B-session)."""
        out = []
        for a in self.curves_a:
            for b in self.curves_b:
                a_c = a - a.mean()
                b_c = b - b.mean()
                denom = np.sqrt(np.sum(a_c**2) * np.sum(b_c**2))
                out.append(float(np.sum(a_c * b_c) / denom) if denom else 0.0)
        return np.array(out)

    def render(self) -> str:
        rows = [
            [
                "participant A, 6 sessions (Fig. 9b)",
                percent(float(np.median(self.intra_a))),
                "~97-99%",
            ],
            [
                "participant B, 6 sessions",
                percent(float(np.median(self.intra_b))),
                "~97-99%",
            ],
            [
                "A vs B (Fig. 9d)",
                percent(float(np.median(self.inter))),
                ">90%",
            ],
        ]
        return format_table(
            ["comparison", "median correlation", "paper"],
            rows,
            title="Fig. 9 — eardrum-echo spectrum consistency (healthy ears)",
        )


def run(config: Fig09Config | None = None) -> Fig09Result:
    """Execute the consistency experiment."""
    config = config or Fig09Config()
    rng = np.random.default_rng(config.seed)
    pipeline = EarSonarPipeline(EarSonarConfig())
    session = SessionConfig(duration_s=config.duration_s)

    def measure(participant):
        curves = []
        for _ in range(config.num_sessions):
            rec = record_session(participant, config.clear_day, session, rng)
            curves.append(pipeline.process(rec).curve)
        return np.stack(curves)

    participant_a = sample_participant(rng, "FIG9A")
    participant_b = sample_participant(rng, "FIG9B")
    return Fig09Result(curves_a=measure(participant_a), curves_b=measure(participant_b))
