"""Figs. 10-11 — recovery trajectories and per-state spectrum envelopes.

Fig. 10 follows two children from admission to recovery: the echo power
spectrum gradually returns to the healthy pattern.  Fig. 11 overlays
the spectra of all four states: the dip deepens monotonically from
Clear through Serous and Mucoid to Purulent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import EarSonarConfig
from ..core.pipeline import EarSonarPipeline
from ..signal.correlation import pearson
from ..simulation.effusion import MeeState
from ..simulation.participant import sample_participant
from ..simulation.session import SessionConfig, record_session
from .common import format_table, sparkline

__all__ = ["SpectraConfig", "RecoveryResult", "StateSpectraResult", "run"]


@dataclass(frozen=True)
class SpectraConfig:
    """Two tracked children plus per-state averages."""

    seed: int = 31
    duration_s: float = 2.0
    num_tracked: int = 2
    num_timepoints: int = 6
    total_days: int = 20
    per_state_recordings: int = 6


@dataclass
class RecoveryResult:
    """Fig. 10: per-participant spectra over the recovery course."""

    days: np.ndarray
    curves_by_participant: dict[str, np.ndarray]

    def recovery_correlation(self, participant_id: str) -> np.ndarray:
        """Correlation of each day's curve with the final (clear) curve."""
        curves = self.curves_by_participant[participant_id]
        final = curves[-1]
        return np.array([pearson(c, final) for c in curves])

    @property
    def converges_to_clear(self) -> bool:
        """Every tracked child's spectrum ends closest to the clear pattern."""
        for pid in self.curves_by_participant:
            corr = self.recovery_correlation(pid)
            if corr[0] >= corr[-1] - 1e-9:
                return False
        return True


@dataclass
class StateSpectraResult:
    """Fig. 11: mean absorption curve per effusion state."""

    frequencies: np.ndarray
    mean_curves: dict[MeeState, np.ndarray]

    def dip_depth(self, state: MeeState) -> float:
        """1 - min/max of the state's mean curve."""
        curve = self.mean_curves[state]
        return float(1.0 - curve.min() / curve.max())

    @property
    def depth_ordering_matches_paper(self) -> bool:
        """Clear < Serous < Mucoid <= Purulent dip depth (Fig. 11)."""
        depths = [self.dip_depth(s) for s in MeeState.ordered()]
        return depths[0] < depths[1] < depths[2] and depths[2] <= depths[3] + 0.05


@dataclass
class SpectraRunResult:
    """Combined output for Figs. 10 and 11."""

    recovery: RecoveryResult
    states: StateSpectraResult

    def render(self) -> str:
        lines = ["Fig. 10 — spectra from admission to recovery (corr. vs final clear curve)"]
        for pid in self.recovery.curves_by_participant:
            corr = self.recovery.recovery_correlation(pid)
            series = " -> ".join(f"{c:.2f}" for c in corr)
            lines.append(f"  {pid}: {series}")
        lines.append(
            "  converges to clear pattern: "
            + ("YES (matches paper)" if self.recovery.converges_to_clear else "NO")
        )
        rows = []
        for state in MeeState.ordered():
            curve = self.states.mean_curves[state]
            rows.append(
                [state.value, f"{self.states.dip_depth(state):.2f}", sparkline(curve)]
            )
        lines.append("")
        lines.append(
            format_table(
                ["state", "dip depth", "mean spectrum 16-20 kHz"],
                rows,
                title="Fig. 11 — per-state spectrum envelopes (paper: dip deepens with severity)",
            )
        )
        lines.append(
            "depth ordering Clear<Serous<Mucoid<=Purulent: "
            + ("YES" if self.states.depth_ordering_matches_paper else "NO")
        )
        return "\n".join(lines)


def run(config: SpectraConfig | None = None) -> SpectraRunResult:
    """Execute the recovery-tracking and state-spectra experiments."""
    config = config or SpectraConfig()
    rng = np.random.default_rng(config.seed)
    pipeline = EarSonarPipeline(EarSonarConfig())
    session = SessionConfig(duration_s=config.duration_s)
    days = np.linspace(0.5, config.total_days - 0.5, config.num_timepoints)

    curves_by_participant: dict[str, np.ndarray] = {}
    state_curves: dict[MeeState, list[np.ndarray]] = {s: [] for s in MeeState.ordered()}
    for i in range(config.num_tracked):
        participant = sample_participant(rng, f"FIG10-{i + 1}", total_days=config.total_days)
        curves = []
        for day in days:
            rec = record_session(participant, float(day), session, rng)
            processed = pipeline.process(rec)
            curves.append(processed.curve)
            state_curves[rec.state].append(processed.curve)
        curves_by_participant[participant.participant_id] = np.stack(curves)

    # Top up each state with dedicated recordings so Fig. 11's averages
    # do not depend on where the tracked children's stage boundaries fell.
    extra = sample_participant(rng, "FIG11", total_days=config.total_days)
    state_days = {
        MeeState.PURULENT: 0.5,
        MeeState.MUCOID: None,
        MeeState.SEROUS: None,
        MeeState.CLEAR: config.total_days - 0.5,
    }
    p_end, m_end, s_end = extra.trajectory.stage_boundaries
    state_days[MeeState.MUCOID] = p_end + 0.5
    state_days[MeeState.SEROUS] = m_end + 0.5
    while any(len(v) < config.per_state_recordings for v in state_curves.values()):
        for state, day in state_days.items():
            if len(state_curves[state]) >= config.per_state_recordings:
                continue
            rec = record_session(extra, float(day), session, rng)
            state_curves[rec.state].append(pipeline.process(rec).curve)

    mean_curves = {s: np.mean(v, axis=0) for s, v in state_curves.items()}
    recovery = RecoveryResult(days=days, curves_by_participant=curves_by_participant)
    states = StateSpectraResult(
        frequencies=pipeline.config.features.frequency_grid(), mean_curves=mean_curves
    )
    return SpectraRunResult(recovery=recovery, states=states)
