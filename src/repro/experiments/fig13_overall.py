"""Fig. 13 — overall detection performance under LOOCV.

The paper's headline evaluation: leave-one-participant-out
cross-validation over the full cohort, reporting per-state precision,
recall, F1 (medians 92.8 / 92.1 / 92.3 %) and the row-normalised
confusion matrix (diagonal 0.91-0.93, adjacent fluid states confusing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import DetectorConfig
from ..core.evaluation import FeatureTable, evaluate_loocv
from ..learning.metrics import ClassificationReport
from ..simulation.effusion import MeeState
from .common import ExperimentScale, build_feature_table, format_table, percent

__all__ = ["Fig13Config", "Fig13Result", "run", "run_on_table"]

#: Paper-reported medians (Sec. VI-B).
PAPER_MEDIAN_PRECISION = 0.928
PAPER_MEDIAN_RECALL = 0.921
PAPER_MEDIAN_F1 = 0.923

#: Paper confusion diagonal (Fig. 13d), CLEAR..PURULENT order.
PAPER_CONFUSION_DIAGONAL = (0.93, 0.91, 0.93, 0.92)


@dataclass(frozen=True)
class Fig13Config:
    """Full-study LOOCV at a configurable scale."""

    scale: ExperimentScale = field(default_factory=ExperimentScale)
    detector: DetectorConfig = field(default_factory=DetectorConfig)


@dataclass
class Fig13Result:
    """LOOCV outcome plus the paper's reference numbers."""

    report: ClassificationReport
    num_recordings: int
    num_failed: int

    def render(self) -> str:
        states = [s.value for s in MeeState.ordered()]
        rows = []
        for i, name in enumerate(states):
            rows.append(
                [
                    name,
                    percent(self.report.precision[i]),
                    percent(self.report.recall[i]),
                    percent(self.report.f1[i]),
                ]
            )
        rows.append(
            [
                "median",
                f"{percent(self.report.median_precision)} (paper {percent(PAPER_MEDIAN_PRECISION)})",
                f"{percent(self.report.median_recall)} (paper {percent(PAPER_MEDIAN_RECALL)})",
                f"{percent(self.report.median_f1)} (paper {percent(PAPER_MEDIAN_F1)})",
            ]
        )
        table = format_table(
            ["state", "precision", "recall", "F1"],
            rows,
            title=(
                f"Fig. 13 — LOOCV over {self.num_recordings} recordings "
                f"({self.num_failed} unprocessable)"
            ),
        )
        confusion = self.report.normalized_confusion()
        conf_rows = []
        for i, name in enumerate(states):
            conf_rows.append([name] + [f"{confusion[i, j]:.2f}" for j in range(4)])
        conf = format_table(
            ["true \\ predicted"] + states,
            conf_rows,
            title="Fig. 13d — confusion matrix "
            f"(paper diagonal {PAPER_CONFUSION_DIAGONAL})",
        )
        return table + "\n\n" + conf


def run_on_table(table: FeatureTable, detector: DetectorConfig | None = None) -> Fig13Result:
    """LOOCV on a pre-extracted feature table."""
    result = evaluate_loocv(table, detector or DetectorConfig())
    return Fig13Result(
        report=result.report(),
        num_recordings=len(table) + table.num_failed,
        num_failed=table.num_failed,
    )


def run(config: Fig13Config | None = None) -> Fig13Result:
    """Simulate the study, extract features, and run the LOOCV."""
    config = config or Fig13Config()
    table = build_feature_table(config.scale)
    return run_on_table(table, config.detector)
