"""Fig. 14 — impact of background noise and body movement.

Fig. 14(a-b): with room noise from 45 to 60 dB SPL, FARs stay roughly
flat while FRRs grow with the noise level.  Fig. 14(c-d): sitting and
slight head movement barely hurt; walking and nodding raise both error
rates.  The paper's y-axes run 0-8 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import DetectorConfig, EarSonarConfig
from ..core.detector import MeeDetector
from ..core.pipeline import EarSonarPipeline
from ..simulation.cohort import build_cohort
from ..simulation.effusion import MeeState
from ..simulation.motion import Movement
from ..simulation.session import SessionConfig
from .common import ExperimentScale, build_feature_table, format_table, percent
from .conditions import ConditionResult, evaluate_condition

__all__ = ["Fig14Config", "Fig14Result", "run"]


@dataclass(frozen=True)
class Fig14Config:
    """Noise-level and movement sweeps on one trained detector."""

    scale: ExperimentScale = field(default_factory=ExperimentScale)
    noise_levels_db: tuple[float, ...] = (45.0, 50.0, 55.0, 60.0)
    movements: tuple[Movement, ...] = (
        Movement.SIT,
        Movement.HEAD,
        Movement.WALKING,
        Movement.NODDING,
    )
    sessions_per_state: int = 1


@dataclass
class Fig14Result:
    """FAR/FRR per noise level and per movement."""

    noise_conditions: list[ConditionResult]
    movement_conditions: list[ConditionResult]

    def mean_far(self, condition: ConditionResult) -> float:
        """FAR averaged over the four states."""
        return float(np.mean([condition.far(s) for s in MeeState.ordered()]))

    def mean_frr(self, condition: ConditionResult) -> float:
        """FRR averaged over the four states."""
        return float(np.mean([condition.frr(s) for s in MeeState.ordered()]))

    @property
    def frr_grows_with_noise(self) -> bool:
        """Fig. 14b: louder rooms reject more."""
        frrs = [self.mean_frr(c) for c in self.noise_conditions]
        return frrs[-1] >= frrs[0]

    @property
    def movement_hurts(self) -> bool:
        """Fig. 14c-d: walking/nodding worse than sitting."""
        by_name = {c.name: self.mean_frr(c) for c in self.movement_conditions}
        quiet = by_name[Movement.SIT.value]
        return (
            by_name[Movement.WALKING.value] >= quiet
            and by_name[Movement.NODDING.value] >= quiet
        )

    def _condition_rows(self, conditions: list[ConditionResult]) -> list[list[str]]:
        rows = []
        for condition in conditions:
            fars = "/".join(percent(condition.far(s)) for s in MeeState.ordered())
            frrs = "/".join(percent(condition.frr(s)) for s in MeeState.ordered())
            rows.append(
                [
                    condition.name,
                    percent(self.mean_far(condition)),
                    percent(self.mean_frr(condition)),
                    fars,
                    frrs,
                ]
            )
        return rows

    def render(self) -> str:
        headers = [
            "condition",
            "mean FAR",
            "mean FRR",
            "FAR clear/ser/muc/pur",
            "FRR clear/ser/muc/pur",
        ]
        noise = format_table(
            headers,
            self._condition_rows(self.noise_conditions),
            title="Fig. 14a-b — background noise (paper: FAR flat-ish, FRR grows, both <8%)",
        )
        movement = format_table(
            headers,
            self._condition_rows(self.movement_conditions),
            title="Fig. 14c-d — body movement (paper: sit~head < walking/nodding)",
        )
        verdict = (
            "FRR grows with noise: "
            + ("YES" if self.frr_grows_with_noise else "NO")
            + " | movement hurts: "
            + ("YES" if self.movement_hurts else "NO")
        )
        return noise + "\n\n" + movement + "\n" + verdict


def run(config: Fig14Config | None = None) -> Fig14Result:
    """Train under the standard condition, sweep noise and movement."""
    config = config or Fig14Config()
    table = build_feature_table(config.scale)
    detector = MeeDetector(DetectorConfig()).fit(table.features, table.states)
    pipeline = EarSonarPipeline(EarSonarConfig())
    cohort = build_cohort(
        config.scale.num_participants,
        np.random.default_rng(config.scale.seed),
        total_days=config.scale.total_days,
    )
    noise_conditions = []
    for spl in config.noise_levels_db:
        session = SessionConfig(duration_s=config.scale.duration_s, noise_spl_db=spl)
        # Common random numbers across conditions (see table1_angle).
        rng = np.random.default_rng(config.scale.seed + 2)
        noise_conditions.append(
            evaluate_condition(
                f"{spl:.0f} dB",
                detector,
                pipeline,
                cohort,
                session,
                rng,
                total_days=config.scale.total_days,
                sessions_per_state=config.sessions_per_state,
            )
        )
    movement_conditions = []
    for movement in config.movements:
        session = SessionConfig(duration_s=config.scale.duration_s, movement=movement)
        rng = np.random.default_rng(config.scale.seed + 2)
        movement_conditions.append(
            evaluate_condition(
                movement.value,
                detector,
                pipeline,
                cohort,
                session,
                rng,
                total_days=config.scale.total_days,
                sessions_per_state=config.sessions_per_state,
            )
        )
    return Fig14Result(
        noise_conditions=noise_conditions, movement_conditions=movement_conditions
    )
