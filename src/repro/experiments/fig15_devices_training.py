"""Fig. 15 — earphone-hardware robustness and training-data size.

Fig. 15(a): EarSonar collected data with four commercial earphones;
recall and precision stay in the upper-80s to low-90s for all of them.
Fig. 15(b): accuracy grows with training-set size, reaching ~91.6 % at
50 % of the data and saturating beyond.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import DetectorConfig
from ..core.evaluation import evaluate_loocv, evaluate_split
from ..simulation.earphone import COMMERCIAL_EARPHONES, EarphoneModel
from ..simulation.session import SessionConfig
from .common import ExperimentScale, build_feature_table, format_table, percent

__all__ = ["Fig15Config", "DeviceResult", "TrainingSizeResult", "Fig15Result", "run"]

#: Paper Fig. 15(b): accuracy at 50% of the training data.
PAPER_HALF_DATA_ACCURACY = 0.916


@dataclass(frozen=True)
class Fig15Config:
    """Per-device studies plus a training-fraction sweep."""

    scale: ExperimentScale = field(default_factory=ExperimentScale)
    devices: tuple[EarphoneModel, ...] = COMMERCIAL_EARPHONES
    training_fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
    split_repeats: int = 3


@dataclass
class DeviceResult:
    """LOOCV precision/recall with one earphone model."""

    device_name: str
    macro_precision: float
    macro_recall: float


@dataclass
class TrainingSizeResult:
    """Mean accuracy at one training fraction."""

    fraction: float
    accuracy: float


@dataclass
class Fig15Result:
    """Combined device and training-size outcomes."""

    devices: list[DeviceResult]
    training: list[TrainingSizeResult]

    @property
    def all_devices_usable(self) -> bool:
        """Fig. 15a claim: every commercial earphone stays above ~80 %."""
        return all(d.macro_recall > 0.8 and d.macro_precision > 0.8 for d in self.devices)

    @property
    def accuracy_grows_with_data(self) -> bool:
        """Fig. 15b claim: more training participants never hurt much."""
        values = [t.accuracy for t in self.training]
        return values[-1] >= values[0]

    def render(self) -> str:
        device_rows = [
            [d.device_name, percent(d.macro_precision), percent(d.macro_recall)]
            for d in self.devices
        ]
        devices = format_table(
            ["earphone", "precision", "recall"],
            device_rows,
            title="Fig. 15a — commercial earphones (paper: all ~85-95%)",
        )
        training_rows = [
            [
                percent(t.fraction),
                percent(t.accuracy),
                percent(PAPER_HALF_DATA_ACCURACY) if t.fraction == 0.5 else "-",
            ]
            for t in self.training
        ]
        training = format_table(
            ["training data", "accuracy", "paper"],
            training_rows,
            title="Fig. 15b — impact of training size (paper: saturates past 50%)",
        )
        verdict = (
            "all devices usable: "
            + ("YES" if self.all_devices_usable else "NO")
            + " | accuracy grows with data: "
            + ("YES" if self.accuracy_grows_with_data else "NO")
        )
        return devices + "\n\n" + training + "\n" + verdict


def run(config: Fig15Config | None = None) -> Fig15Result:
    """Run per-device LOOCV studies and the training-fraction sweep."""
    config = config or Fig15Config()
    # Device study: a reduced cohort per earphone keeps the sweep tractable.
    device_scale = ExperimentScale(
        num_participants=max(6, config.scale.num_participants // 2),
        total_days=max(8, config.scale.total_days // 2 * 2),
        sessions_per_day=1,
        duration_s=config.scale.duration_s,
        seed=config.scale.seed + 3,
    )
    devices = []
    for device in config.devices:
        session = SessionConfig(duration_s=device_scale.duration_s, earphone=device)
        table = build_feature_table(device_scale, session_config=session)
        report = evaluate_loocv(table, DetectorConfig()).report()
        devices.append(
            DeviceResult(
                device_name=device.name,
                macro_precision=report.macro_precision,
                macro_recall=report.macro_recall,
            )
        )

    # Training-size sweep reuses one standard study.
    table = build_feature_table(config.scale)
    training = []
    for fraction in config.training_fractions:
        accuracies = []
        for repeat in range(config.split_repeats):
            rng = np.random.default_rng(config.scale.seed + 100 + repeat)
            result = evaluate_split(table, fraction, rng, DetectorConfig())
            accuracies.append(result.report().accuracy)
        training.append(
            TrainingSizeResult(fraction=fraction, accuracy=float(np.mean(accuracies)))
        )
    return Fig15Result(devices=devices, training=training)
