"""Label-noise robustness (extension; see DESIGN.md).

The paper's ground truth is pneumatic otoscopy, which is itself
imperfect — especially at grading fluid *type* through the drum.  This
experiment measures how EarSonar's reported LOOCV accuracy responds
when the *training* labels carry otoscopist noise while scoring remains
against the simulator's hidden truth.

Because clustering is unsupervised (labels only name clusters), the
expectation — and the observed behaviour — is graceful degradation:
moderate annotation noise perturbs cluster naming long before it
perturbs the cluster structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import DetectorConfig
from ..core.detector import MeeDetector
from ..core.evaluation import FeatureTable
from ..learning.crossval import leave_one_group_out
from ..learning.metrics import accuracy
from ..simulation.groundtruth import OtoscopistModel, relabel_states
from .common import ExperimentScale, build_feature_table, format_table, percent

__all__ = ["LabelNoiseConfig", "LabelNoiseResult", "run"]


@dataclass(frozen=True)
class LabelNoiseConfig:
    """Noise levels to sweep; each scales the default otoscopist rates."""

    scale: ExperimentScale = field(default_factory=ExperimentScale)
    noise_multipliers: tuple[float, ...] = (0.0, 1.0, 2.0, 4.0)
    seed: int = 71


@dataclass
class LabelNoiseResult:
    """LOOCV accuracy (against true states) per training-noise level."""

    accuracies: dict[float, float]
    training_label_error: dict[float, float]

    @property
    def degrades_gracefully(self) -> bool:
        """Accuracy at 2x the nominal otoscope noise stays within 10 pp."""
        clean = self.accuracies[min(self.accuracies)]
        worst_moderate = min(
            v for k, v in self.accuracies.items() if k <= 2.0
        )
        return clean - worst_moderate <= 0.10

    def render(self) -> str:
        rows = []
        for multiplier in sorted(self.accuracies):
            rows.append(
                [
                    f"{multiplier:.0f}x",
                    percent(self.training_label_error[multiplier]),
                    percent(self.accuracies[multiplier]),
                ]
            )
        table = format_table(
            ["otoscope noise", "training labels wrong", "LOOCV accuracy (vs truth)"],
            rows,
            title="Label-noise robustness (extension: imperfect clinical ground truth)",
        )
        verdict = "degrades gracefully (<=10pp at 2x nominal): " + (
            "YES" if self.degrades_gracefully else "NO"
        )
        return table + "\n" + verdict


def _loocv_with_noisy_training(
    table: FeatureTable,
    noisy_states,
    detector_config: DetectorConfig,
) -> float:
    """LOOCV where training folds see noisy labels, scoring sees truth."""
    truth = table.state_indices
    true_all, pred_all = [], []
    for fold in leave_one_group_out(table.groups):
        detector = MeeDetector(detector_config)
        detector.fit(
            table.features[fold.train_indices],
            [noisy_states[i] for i in fold.train_indices],
        )
        predicted = detector.predict_indices(table.features[fold.test_indices])
        true_all.extend(truth[fold.test_indices].tolist())
        pred_all.extend(predicted.tolist())
    return accuracy(np.array(true_all), np.array(pred_all))


def run(config: LabelNoiseConfig | None = None) -> LabelNoiseResult:
    """Sweep otoscopist-noise multipliers over one study."""
    config = config or LabelNoiseConfig()
    table = build_feature_table(config.scale)
    base = OtoscopistModel()
    accuracies: dict[float, float] = {}
    label_error: dict[float, float] = {}
    for multiplier in config.noise_multipliers:
        model = OtoscopistModel(
            presence_error=min(0.5, base.presence_error * multiplier),
            type_error=min(0.5, base.type_error * multiplier),
        )
        rng = np.random.default_rng(config.seed)
        noisy = relabel_states(table.states, rng, model)
        label_error[multiplier] = float(
            np.mean([a is not b for a, b in zip(noisy, table.states)])
        )
        accuracies[multiplier] = _loocv_with_noisy_training(
            table, noisy, DetectorConfig()
        )
    return LabelNoiseResult(accuracies=accuracies, training_label_error=label_error)
