"""Robustness curves — screening F1 versus acquisition-fault severity.

A fig14-style sweep for the faults :mod:`repro.faultlab` models: the
detector is trained once on clean recordings, then fresh per-state test
sessions are recorded, damaged by one fault model at a time across a
severity ladder, and screened.  The metric is the *binary* effusion F1
(any fluid-positive state counts as positive), with recordings the
robust pipeline still cannot process counted as non-detections — a
quarantined capture never raises an alarm, so it costs recall, not
precision.

Severity 0 skips fault application entirely, making the first point of
every curve the exact clean baseline.  Each fault's curve is exported
as a JSON artifact (one file per fault model) carrying the model's
config fingerprint at every severity, so archived curves are traceable
to the precise fault parameters that produced them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.config import DetectorConfig, EarSonarConfig
from ..core.config import RobustnessConfig as PipelineRobustnessConfig
from ..core.detector import MeeDetector
from ..core.pipeline import EarSonarPipeline
from ..core.results import index_to_state
from ..errors import SignalProcessingError
from ..faultlab import apply_to_recording, fault_catalog
from ..simulation.cohort import build_cohort
from ..simulation.session import SessionConfig, record_session
from .common import ExperimentScale, build_feature_table, format_table, sparkline
from .conditions import state_days

__all__ = ["RobustnessCurvesConfig", "FaultCurve", "RobustnessCurvesResult", "run"]


@dataclass(frozen=True)
class RobustnessCurvesConfig:
    """Severity sweep of every fault model on one trained detector.

    Attributes
    ----------
    scale:
        Study scale for training and the size of the test cohort.
    severities:
        Severity ladder; 0 is the exact clean baseline (no fault code
        runs at all).
    fault_names:
        Keys of :func:`repro.faultlab.fault_catalog` to sweep.
    sessions_per_state:
        Test recordings per participant per ground-truth state.
    artifact_dir:
        Directory for the per-fault JSON artifacts; ``None`` disables
        writing (the result still carries the data).
    """

    scale: ExperimentScale = field(default_factory=ExperimentScale)
    severities: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0)
    fault_names: tuple[str, ...] = (
        "dropout",
        "clipping",
        "transient",
        "seal_leak",
        "dc_drift",
        "truncation",
        "nonfinite",
        "reverb_tail",
        "calibration_drift",
    )
    sessions_per_state: int = 1
    artifact_dir: str | None = "artifacts/robustness"


@dataclass(frozen=True)
class CurvePoint:
    """Screening outcome at one (fault, severity) grid point."""

    severity: float
    fingerprint: str
    true_positive: int
    false_positive: int
    false_negative: int
    true_negative: int
    num_rejected: int

    @property
    def num_tested(self) -> int:
        """All test recordings at this point, including rejections."""
        return (
            self.true_positive
            + self.false_positive
            + self.false_negative
            + self.true_negative
        )

    @property
    def completion_rate(self) -> float:
        """Fraction of recordings the pipeline processed (even degraded)."""
        if self.num_tested == 0:
            return 0.0
        return 1.0 - self.num_rejected / self.num_tested

    @property
    def f1(self) -> float:
        """Binary effusion F1; rejected positives are false negatives."""
        denom = 2 * self.true_positive + self.false_positive + self.false_negative
        if denom == 0:
            return 0.0
        return 2 * self.true_positive / denom

    def summary(self) -> dict:
        """JSON-serializable digest of this grid point."""
        return {
            "severity": self.severity,
            "fault_fingerprint": self.fingerprint,
            "f1": self.f1,
            "completion_rate": self.completion_rate,
            "true_positive": self.true_positive,
            "false_positive": self.false_positive,
            "false_negative": self.false_negative,
            "true_negative": self.true_negative,
            "num_rejected": self.num_rejected,
        }


@dataclass
class FaultCurve:
    """F1-vs-severity curve of one fault model."""

    fault: str
    points: list[CurvePoint]

    @property
    def clean_f1(self) -> float:
        """F1 at the lowest swept severity (0 = untouched waveforms)."""
        return self.points[0].f1

    @property
    def monotone_burden(self) -> float:
        """Largest F1 drop from the clean baseline across the sweep."""
        return max(self.clean_f1 - p.f1 for p in self.points)

    def artifact(self) -> dict:
        """Full JSON artifact payload for this fault model."""
        return {
            "experiment": "robustness_curves",
            "fault": self.fault,
            "severities": [p.severity for p in self.points],
            "f1": [p.f1 for p in self.points],
            "completion_rate": [p.completion_rate for p in self.points],
            "points": [p.summary() for p in self.points],
        }


@dataclass
class RobustnessCurvesResult:
    """All fault curves plus artifact bookkeeping."""

    curves: list[FaultCurve]
    artifact_paths: list[str] = field(default_factory=list)

    def curve(self, fault: str) -> FaultCurve:
        """The curve for one fault model name."""
        for c in self.curves:
            if c.fault == fault:
                return c
        raise KeyError(f"no curve for fault {fault!r}")

    def write_artifacts(self, directory: str | Path) -> list[str]:
        """Write one ``robustness_<fault>.json`` per curve; returns paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for c in self.curves:
            path = directory / f"robustness_{c.fault}.json"
            path.write_text(
                json.dumps(c.artifact(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            paths.append(str(path))
        self.artifact_paths = paths
        return paths

    def render(self) -> str:
        headers = ["fault", "F1 by severity", "completion by severity", "curve"]
        rows = []
        for c in self.curves:
            rows.append(
                [
                    c.fault,
                    " ".join(f"{p.f1:.2f}" for p in c.points),
                    " ".join(f"{p.completion_rate:.2f}" for p in c.points),
                    sparkline(np.array([p.f1 for p in c.points]), width=16),
                ]
            )
        severities = " / ".join(f"{p.severity:g}" for p in self.curves[0].points)
        table = format_table(
            headers,
            rows,
            title=f"Robustness curves — binary screening F1 at severities {severities}",
        )
        if self.artifact_paths:
            table += "\nartifacts: " + ", ".join(self.artifact_paths)
        return table


def run(config: RobustnessCurvesConfig | None = None) -> RobustnessCurvesResult:
    """Train clean, then sweep every fault model across the severities."""
    config = config or RobustnessCurvesConfig()
    table = build_feature_table(config.scale)
    detector = MeeDetector(DetectorConfig()).fit(table.features, table.states)
    # The test pipeline runs with graceful degradation on: NaN bursts
    # become dropouts and corrupt chirps are quarantined, so a damaged
    # capture degrades before it fails.  On clean waveforms this
    # pipeline is bit-identical to the strict default.
    pipeline = EarSonarPipeline(
        EarSonarConfig(
            robustness=PipelineRobustnessConfig(sanitize_nonfinite=True)
        )
    )
    cohort = build_cohort(
        config.scale.num_participants,
        np.random.default_rng(config.scale.seed),
        total_days=config.scale.total_days,
    )
    session = SessionConfig(duration_s=config.scale.duration_s)
    curves = []
    for fault_name in config.fault_names:
        points = []
        for severity in config.severities:
            model = fault_catalog(severity)[fault_name]
            # Common random numbers across every (fault, severity)
            # condition: the clean test sessions are identical, so the
            # curves differ only through the injected damage.
            session_rng = np.random.default_rng(config.scale.seed + 7)
            fault_rng = np.random.default_rng(config.scale.seed + 11)
            tp = fp = fn = tn = rejected = 0
            for participant in cohort:
                days = state_days(participant, config.scale.total_days)
                for state, day in days.items():
                    for _ in range(config.sessions_per_state):
                        recording = record_session(
                            participant, day, session, session_rng
                        )
                        if severity > 0.0:
                            recording = apply_to_recording(
                                recording, model, fault_rng
                            )
                        truth = recording.state.is_effusion
                        try:
                            processed = pipeline.process(recording)
                        except SignalProcessingError:
                            # Quarantined capture: never an alarm.
                            rejected += 1
                            predicted = False
                        else:
                            index = int(
                                detector.predict_indices(processed.features)[0]
                            )
                            predicted = index_to_state(index).is_effusion
                        if truth and predicted:
                            tp += 1
                        elif truth:
                            fn += 1
                        elif predicted:
                            fp += 1
                        else:
                            tn += 1
            points.append(
                CurvePoint(
                    severity=severity,
                    fingerprint=model.fingerprint(),
                    true_positive=tp,
                    false_positive=fp,
                    false_negative=fn,
                    true_negative=tn,
                    num_rejected=rejected,
                )
            )
        curves.append(FaultCurve(fault=fault_name, points=points))
    result = RobustnessCurvesResult(curves=curves)
    if config.artifact_dir is not None:
        result.write_artifacts(config.artifact_dir)
    return result
