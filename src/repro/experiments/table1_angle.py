"""Table I — detection accuracy vs earphone wearing angle.

The paper rotates the earbud 0-40 degrees off the standard posture and
reports accuracies 92.8 / 91.3 / 90.2 / 88.5 / 86.4 % — a graceful,
monotone decline as the beam leaves the eardrum and canal multipath
strengthens.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import DetectorConfig, EarSonarConfig
from ..core.detector import MeeDetector
from ..core.pipeline import EarSonarPipeline
from ..simulation.cohort import build_cohort
from ..simulation.session import SessionConfig
from .common import ExperimentScale, build_feature_table, format_table, percent
from .conditions import ConditionResult, evaluate_condition

__all__ = ["Table1Config", "Table1Result", "run", "PAPER_ANGLE_ACCURACY"]

#: Paper Table I.
PAPER_ANGLE_ACCURACY = {0: 0.928, 10: 0.913, 20: 0.902, 30: 0.885, 40: 0.864}


@dataclass(frozen=True)
class Table1Config:
    """Angle sweep on top of a standard-condition training study."""

    scale: ExperimentScale = field(default_factory=ExperimentScale)
    angles_deg: tuple[float, ...] = (0.0, 10.0, 20.0, 30.0, 40.0)
    sessions_per_state: int = 1


@dataclass
class Table1Result:
    """Accuracy per wearing angle."""

    conditions: list[ConditionResult]

    @property
    def accuracies(self) -> dict[str, float]:
        """Condition name -> accuracy."""
        return {c.name: c.accuracy for c in self.conditions}

    @property
    def declines_with_angle(self) -> bool:
        """Accuracy trends downward across the sweep.

        Individual conditions carry a few points of sampling noise, so
        the check is a fitted trend rather than strict monotonicity:
        the least-squares slope over the sweep is negative and the
        0-degree condition beats the 40-degree one.
        """
        values = np.array([c.accuracy for c in self.conditions])
        if values.size < 2:
            return False
        x = np.arange(values.size, dtype=float)
        slope = float(np.polyfit(x, values, 1)[0])
        return slope < 0.0 and values[0] > values[-1]

    def render(self) -> str:
        rows = []
        for condition in self.conditions:
            angle = int(float(condition.name.split()[0]))
            paper = PAPER_ANGLE_ACCURACY.get(angle)
            rows.append(
                [
                    condition.name,
                    percent(condition.accuracy),
                    percent(paper) if paper is not None else "-",
                    str(condition.num_rejected),
                ]
            )
        table = format_table(
            ["angle", "accuracy", "paper", "rejections"],
            rows,
            title="Table I — acoustic measurement accuracy vs wearing angle",
        )
        verdict = "monotone decline 0->40 deg: " + (
            "YES (matches paper)" if self.declines_with_angle else "NO"
        )
        return table + "\n" + verdict


def run(config: Table1Config | None = None) -> Table1Result:
    """Train at 0 degrees, evaluate the angle sweep."""
    config = config or Table1Config()
    table = build_feature_table(config.scale)
    detector = MeeDetector(DetectorConfig()).fit(table.features, table.states)
    pipeline = EarSonarPipeline(EarSonarConfig())
    cohort = build_cohort(
        config.scale.num_participants, np.random.default_rng(config.scale.seed),
        total_days=config.scale.total_days,
    )
    conditions = []
    for angle in config.angles_deg:
        session = SessionConfig(duration_s=config.scale.duration_s, angle_deg=angle)
        # Common random numbers: every condition replays the same
        # stochastic draws, so differences isolate the varied factor.
        rng = np.random.default_rng(config.scale.seed + 1)
        conditions.append(
            evaluate_condition(
                f"{angle:.0f} deg",
                detector,
                pipeline,
                cohort,
                session,
                rng,
                total_days=config.scale.total_days,
                sessions_per_state=config.sessions_per_state,
            )
        )
    return Table1Result(conditions=conditions)
