"""Tables II-III — on-device latency and smartphone power.

Table II times the recognition stages on a phone (band-pass 1.32 ms,
feature extraction 35.89 ms, inference 1.2 ms — feature extraction
dominates by more than an order of magnitude).  Table III reports
whole-phone power around 2.1-2.24 W for three handsets.

We time our own implementation (a laptop-class Python pipeline, so the
absolute numbers differ) and check the *shape*: feature extraction is
the dominant stage, inference and filtering are small.  Power comes
from the parametric handset energy model driven by measured latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import DetectorConfig, EarSonarConfig
from ..core.detector import MeeDetector
from ..core.evaluation import time_inference
from ..core.pipeline import EarSonarPipeline
from ..simulation.hardware import (
    SMARTPHONE_PROFILES,
    StageLatencies,
    estimate_power_mw,
)
from ..simulation.participant import sample_participant
from ..simulation.session import SessionConfig, record_session
from .common import ExperimentScale, build_feature_table, format_table

__all__ = ["SystemConfig", "SystemResult", "run", "PAPER_LATENCIES", "PAPER_POWER_MW"]

#: Paper Table II (milliseconds, on a smartphone).
PAPER_LATENCIES = StageLatencies(
    bandpass_ms=1.32, feature_extract_ms=35.89, inference_ms=1.2
)

#: Paper Table III (milliwatts).
PAPER_POWER_MW = {"Huawei": 2100.0, "Galaxy": 2120.0, "MI 10": 2243.0}


@dataclass(frozen=True)
class SystemConfig:
    """Latency/power measurement setup."""

    seed: int = 41
    duration_s: float = 1.0
    repeats: int = 5
    #: Scale of the study used to fit the detector before timing inference.
    training_scale: ExperimentScale = field(
        default_factory=lambda: ExperimentScale(num_participants=6, total_days=8, duration_s=1.0)
    )


@dataclass
class SystemResult:
    """Measured latencies plus modelled power."""

    latencies: StageLatencies
    power_mw: dict[str, float]

    @property
    def feature_extraction_dominates(self) -> bool:
        """Table II's shape: features cost the most by a wide margin."""
        return (
            self.latencies.dominant_stage == "feature_extract"
            and self.latencies.feature_extract_ms
            > 5.0 * max(self.latencies.bandpass_ms, self.latencies.inference_ms)
        )

    @property
    def power_ordering_matches_paper(self) -> bool:
        """Table III's ordering: Huawei < Galaxy < MI 10."""
        names = ("Huawei", "Galaxy", "MI 10")
        values = [self.power_mw[n] for n in names]
        return values[0] < values[1] < values[2]

    def render(self) -> str:
        latency_rows = [
            ["Band-pass Filter", f"{self.latencies.bandpass_ms:.2f}", "1.32"],
            ["Feature Extract", f"{self.latencies.feature_extract_ms:.2f}", "35.89"],
            ["Inference", f"{self.latencies.inference_ms:.2f}", "1.20"],
            ["Total", f"{self.latencies.total_ms:.2f}", "38.41"],
        ]
        latency = format_table(
            ["operation", "measured (ms)", "paper (ms)"],
            latency_rows,
            title="Table II — recognition latency per stage "
            "(absolute values differ: Python laptop vs optimised phone code; "
            "shape should match: features dominate)",
        )
        power_rows = [
            [name, f"{self.power_mw[name]:.0f}", f"{PAPER_POWER_MW[name]:.0f}"]
            for name in ("Huawei", "Galaxy", "MI 10")
        ]
        power = format_table(
            ["smartphone", "modelled (mW)", "paper (mW)"],
            power_rows,
            title="Table III — detection power (parametric handset model)",
        )
        verdict = (
            "feature extraction dominates: "
            + ("YES" if self.feature_extraction_dominates else "NO")
            + " | power ordering matches: "
            + ("YES" if self.power_ordering_matches_paper else "NO")
        )
        return latency + "\n\n" + power + "\n" + verdict


def run(config: SystemConfig | None = None) -> SystemResult:
    """Measure stage latencies and derive handset power."""
    config = config or SystemConfig()
    rng = np.random.default_rng(config.seed)
    pipeline = EarSonarPipeline(EarSonarConfig())
    participant = sample_participant(rng, "SYS")
    session = SessionConfig(duration_s=config.duration_s)
    recording = record_session(participant, 0.5, session, rng)

    bandpass_times, feature_times = [], []
    processed = None
    for _ in range(config.repeats):
        processed, latency = pipeline.timed_process(recording)
        bandpass_times.append(latency.bandpass_ms)
        feature_times.append(latency.feature_extract_ms)

    table = build_feature_table(config.training_scale)
    detector = MeeDetector(DetectorConfig()).fit(table.features, table.states)
    assert processed is not None
    inference_ms = time_inference(detector, processed.features, repeats=config.repeats * 4)

    latencies = StageLatencies(
        bandpass_ms=float(np.median(bandpass_times)),
        feature_extract_ms=float(np.median(feature_times)),
        inference_ms=inference_ms,
    )
    power = {
        name: estimate_power_mw(profile, latencies)
        for name, profile in SMARTPHONE_PROFILES.items()
    }
    return SystemResult(latencies=latencies, power_mw=power)
