"""Acquisition-fault laboratory: composable models of capture failure.

Home screening is hostile territory for a precision acoustic
measurement: earbuds half-out of small ears, clipping microphones,
Bluetooth stacks dropping buffers, recordings cut short by a bored
child.  This package models those failure modes as small, frozen,
config-fingerprintable dataclasses with a uniform
``apply(waveform, sample_rate, rng)`` contract, so robustness studies
can inject *controlled, seeded, reproducible* damage into synthesized
waveforms and sweep its severity deterministically.

Every model obeys three invariants:

- **Determinism** — all randomness flows from the caller's
  ``np.random.Generator``; identical seeds give identical damage.
- **Fingerprintability** — models are frozen dataclasses of plain
  numeric fields, so :func:`repro.core.config.config_fingerprint`
  digests them and cached/archived study artifacts can name exactly
  which fault produced them.
- **Severity scaling** — ``model.at_severity(s)`` interpolates from a
  no-op (``s = 0``) through the model's own parameters (``s = 1``) and
  beyond, giving every robustness curve a common x-axis.

Quick use::

    from repro.faultlab import fault_catalog

    rng = np.random.default_rng(7)
    for name, model in fault_catalog(severity=0.5).items():
        damaged = model.apply(recording.waveform, recording.sample_rate, rng)
"""

from .models import (
    CalibrationDriftFault,
    Clipping,
    DCClockDrift,
    DropoutBursts,
    FaultChain,
    FaultModel,
    NonFiniteCorruption,
    ReverbTailFault,
    SealLeak,
    TransientBursts,
    Truncation,
    apply_to_recording,
    fault_catalog,
)

__all__ = [
    "FaultModel",
    "DropoutBursts",
    "Clipping",
    "TransientBursts",
    "SealLeak",
    "DCClockDrift",
    "Truncation",
    "NonFiniteCorruption",
    "ReverbTailFault",
    "CalibrationDriftFault",
    "FaultChain",
    "fault_catalog",
    "apply_to_recording",
]
