"""Seeded, fingerprintable acquisition-fault models.

Each model is a frozen dataclass describing one physical failure mode
of an at-home capture, with an ``apply(waveform, sample_rate, rng)``
method returning a *new* damaged array (inputs are never mutated).
Field metadata declares how :meth:`FaultModel.at_severity` scales the
model:

- ``{"severity": "scale"}`` — intensity fields multiply linearly with
  severity (rates, amplitudes, attenuations); severity 0 zeroes them.
- ``{"severity": "toward_one"}`` — fraction-like fields interpolate
  from the benign value 1.0 (severity 0) down to the configured value
  (severity 1), e.g. a clipping level or a kept-duration fraction.

Severity 1 therefore *is* the model's own configuration, severity 0 is
(numerically) a no-op, and values above 1 extrapolate harsher damage.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:  # circular-import-free annotation only
    from ..simulation.session import Recording

__all__ = [
    "FaultModel",
    "DropoutBursts",
    "Clipping",
    "TransientBursts",
    "SealLeak",
    "DCClockDrift",
    "Truncation",
    "NonFiniteCorruption",
    "ReverbTailFault",
    "CalibrationDriftFault",
    "FaultChain",
    "fault_catalog",
    "apply_to_recording",
]


def _severity_field(default: float, mode: str) -> float:
    """Dataclass field whose value participates in severity scaling."""
    return field(default=default, metadata={"severity": mode})


@dataclass(frozen=True)
class FaultModel:
    """Base contract shared by every acquisition-fault model.

    Subclasses implement :meth:`apply`; severity scaling and
    fingerprinting come for free from the dataclass machinery.
    """

    def apply(
        self, waveform: np.ndarray, sample_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Return a damaged copy of ``waveform`` (never mutates input)."""
        raise NotImplementedError

    def at_severity(self, severity: float) -> "FaultModel":
        """This model rescaled to ``severity`` (0 = no-op, 1 = as configured)."""
        if severity < 0.0:
            raise ConfigurationError(f"severity must be >= 0, got {severity}")
        changes = {}
        for f in fields(self):
            mode = f.metadata.get("severity")
            value = getattr(self, f.name)
            if mode == "scale":
                changes[f.name] = float(value) * severity
            elif mode == "toward_one":
                # Clamp into (0, 1]: severities beyond the point where
                # the fraction hits zero saturate at "almost nothing
                # left" instead of leaving the field's valid range.
                interpolated = 1.0 - severity * (1.0 - float(value))
                changes[f.name] = min(1.0, max(1e-3, interpolated))
        return dataclasses.replace(self, **changes)

    def fingerprint(self) -> str:
        """Content hash of the model (config + class), for artifacts."""
        from ..core.config import config_fingerprint

        return config_fingerprint(self)

    @property
    def name(self) -> str:
        """Stable short name used in reports and JSON artifacts."""
        return type(self).__name__

    @staticmethod
    def _as_array(waveform: np.ndarray) -> np.ndarray:
        return np.array(waveform, dtype=float, copy=True)


@dataclass(frozen=True)
class DropoutBursts(FaultModel):
    """Sample-dropout bursts: buffers the audio stack never delivered.

    Draws a Poisson number of bursts (``rate_per_s`` expected per
    second) at uniform positions and zero-fills ``burst_ms`` of samples
    at each — the exact signature a Bluetooth/USB underrun leaves in a
    capture.
    """

    rate_per_s: float = _severity_field(8.0, "scale")
    burst_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ConfigurationError(f"rate_per_s must be >= 0, got {self.rate_per_s}")
        if self.burst_ms <= 0:
            raise ConfigurationError(f"burst_ms must be positive, got {self.burst_ms}")

    def apply(
        self, waveform: np.ndarray, sample_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Zero-fill seeded dropout bursts in a copy of ``waveform``."""
        out = self._as_array(waveform)
        if out.size == 0 or self.rate_per_s == 0.0:
            return out
        duration_s = out.size / sample_rate
        count = int(rng.poisson(self.rate_per_s * duration_s))
        if count == 0:
            return out
        burst = max(1, int(round(self.burst_ms * 1e-3 * sample_rate)))
        starts = rng.integers(0, out.size, size=count)
        for start in starts:
            out[start : start + burst] = 0.0
        return out


@dataclass(frozen=True)
class Clipping(FaultModel):
    """ADC clipping/saturation at a fraction of the waveform's peak.

    ``level`` is the saturation ceiling relative to the clean peak
    amplitude: 1.0 leaves the signal untouched, 0.5 flattens everything
    above half the peak into the hard rails a saturated converter
    produces.
    """

    level: float = _severity_field(0.5, "toward_one")

    def __post_init__(self) -> None:
        if not 0.0 < self.level <= 1.0:
            raise ConfigurationError(f"level must be in (0, 1], got {self.level}")

    def apply(
        self, waveform: np.ndarray, sample_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Clip a copy of ``waveform`` at ``level`` times its own peak."""
        out = self._as_array(waveform)
        if out.size == 0 or self.level >= 1.0:
            return out
        peak = float(np.max(np.abs(out))) if out.size else 0.0
        if peak <= 0.0:
            return out
        ceiling = self.level * peak
        return np.clip(out, -ceiling, ceiling)


@dataclass(frozen=True)
class TransientBursts(FaultModel):
    """Transient ambient bursts: door slams, toy clatter, speech peaks.

    Adds Hann-enveloped white-noise bursts whose amplitude is
    ``amplitude`` times the waveform RMS, at a Poisson rate of
    ``rate_per_s`` per second.
    """

    rate_per_s: float = _severity_field(3.0, "scale")
    amplitude: float = _severity_field(4.0, "scale")
    duration_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ConfigurationError(f"rate_per_s must be >= 0, got {self.rate_per_s}")
        if self.amplitude < 0:
            raise ConfigurationError(f"amplitude must be >= 0, got {self.amplitude}")
        if self.duration_ms <= 0:
            raise ConfigurationError(
                f"duration_ms must be positive, got {self.duration_ms}"
            )

    def apply(
        self, waveform: np.ndarray, sample_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Add seeded noise transients to a copy of ``waveform``."""
        out = self._as_array(waveform)
        if out.size == 0 or self.rate_per_s == 0.0 or self.amplitude == 0.0:
            return out
        duration_s = out.size / sample_rate
        count = int(rng.poisson(self.rate_per_s * duration_s))
        if count == 0:
            return out
        length = max(2, int(round(self.duration_ms * 1e-3 * sample_rate)))
        envelope = np.hanning(length)
        rms = float(np.sqrt(np.mean(out**2)))
        scale = self.amplitude * max(rms, 1e-12)
        starts = rng.integers(0, out.size, size=count)
        for start in starts:
            stop = min(start + length, out.size)
            burst = rng.normal(0.0, scale, size=stop - start)
            out[start:stop] += burst * envelope[: stop - start]
        return out


@dataclass(frozen=True)
class SealLeak(FaultModel):
    """Poor earbud seal: attenuated echoes plus leaked-in room noise.

    A leaking seal both weakens the in-canal signal (``attenuation_db``)
    and admits broadband room noise relative to the original RMS
    (``noise_ratio``), dragging the in-band SNR down — the paper's
    dominant at-home failure mode.
    """

    attenuation_db: float = _severity_field(12.0, "scale")
    noise_ratio: float = _severity_field(0.05, "scale")

    def __post_init__(self) -> None:
        if self.attenuation_db < 0:
            raise ConfigurationError(
                f"attenuation_db must be >= 0, got {self.attenuation_db}"
            )
        if self.noise_ratio < 0:
            raise ConfigurationError(f"noise_ratio must be >= 0, got {self.noise_ratio}")

    def apply(
        self, waveform: np.ndarray, sample_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Attenuate a copy of ``waveform`` and add leak-in noise."""
        out = self._as_array(waveform)
        if out.size == 0:
            return out
        rms = float(np.sqrt(np.mean(out**2)))
        out *= 10.0 ** (-self.attenuation_db / 20.0)
        if self.noise_ratio > 0.0 and rms > 0.0:
            out += rng.normal(0.0, self.noise_ratio * rms, size=out.size)
        return out


@dataclass(frozen=True)
class DCClockDrift(FaultModel):
    """DC offset plus sample-clock drift of a miscalibrated codec.

    Adds a constant offset of ``offset_ratio`` times the peak amplitude
    and linearly resamples the timeline by ``drift_ppm`` parts per
    million (positive = the capture clock runs slow, so the recorded
    signal appears stretched).
    """

    offset_ratio: float = _severity_field(0.1, "scale")
    drift_ppm: float = _severity_field(200.0, "scale")

    def __post_init__(self) -> None:
        if self.offset_ratio < 0:
            raise ConfigurationError(
                f"offset_ratio must be >= 0, got {self.offset_ratio}"
            )

    def apply(
        self, waveform: np.ndarray, sample_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Offset and clock-stretch a copy of ``waveform``."""
        out = self._as_array(waveform)
        if out.size == 0:
            return out
        if self.drift_ppm != 0.0:
            factor = 1.0 + self.drift_ppm * 1e-6
            positions = np.arange(out.size) * factor
            out = np.interp(positions, np.arange(out.size), out)
        if self.offset_ratio > 0.0:
            peak = float(np.max(np.abs(out))) if out.size else 0.0
            out = out + self.offset_ratio * peak
        return out


@dataclass(frozen=True)
class Truncation(FaultModel):
    """Interrupted recording: only the leading fraction was captured.

    ``keep_fraction`` 1.0 keeps everything; 0.5 models a capture cut
    off halfway (app backgrounded, call interruption, full disk).
    """

    keep_fraction: float = _severity_field(0.5, "toward_one")

    def __post_init__(self) -> None:
        if not 0.0 < self.keep_fraction <= 1.0:
            raise ConfigurationError(
                f"keep_fraction must be in (0, 1], got {self.keep_fraction}"
            )

    def apply(
        self, waveform: np.ndarray, sample_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Return the kept leading fraction of ``waveform`` (a copy)."""
        out = self._as_array(waveform)
        if out.size == 0 or self.keep_fraction >= 1.0:
            return out
        keep = max(1, int(round(out.size * self.keep_fraction)))
        return out[:keep]


@dataclass(frozen=True)
class NonFiniteCorruption(FaultModel):
    """NaN/Inf corruption: glitching drivers or damaged files.

    Replaces a Poisson number of samples (``rate_per_s`` expected per
    second) with NaN; an ``inf_fraction`` share of the corrupted
    samples becomes ``±Inf`` instead, alternating sign.
    """

    rate_per_s: float = _severity_field(40.0, "scale")
    inf_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ConfigurationError(f"rate_per_s must be >= 0, got {self.rate_per_s}")
        if not 0.0 <= self.inf_fraction <= 1.0:
            raise ConfigurationError(
                f"inf_fraction must be in [0, 1], got {self.inf_fraction}"
            )

    def apply(
        self, waveform: np.ndarray, sample_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Poison seeded sample positions of a copy of ``waveform``."""
        out = self._as_array(waveform)
        if out.size == 0 or self.rate_per_s == 0.0:
            return out
        duration_s = out.size / sample_rate
        count = int(rng.poisson(self.rate_per_s * duration_s))
        if count == 0:
            return out
        positions = rng.integers(0, out.size, size=count)
        num_inf = int(round(count * self.inf_fraction))
        out[positions[num_inf:]] = np.nan
        signs = np.where(np.arange(num_inf) % 2 == 0, np.inf, -np.inf)
        out[positions[:num_inf]] = signs
        return out


#: e-folds of tap-amplitude decay across the reverb tail: the last tap
#: of a tail is ``exp(-TAIL_DECAY_FOLDS)`` times the first.
TAIL_DECAY_FOLDS = 2.0


@dataclass(frozen=True)
class ReverbTailFault(FaultModel):
    """Late-reflection reverb tail: a narrow or occluded canal fit.

    Adds ``num_taps`` delayed, attenuated copies of the capture at
    seeded delays between ``onset_ms`` and ``tail_ms`` — reflections
    arriving *after* the eardrum echo window, exactly the multipath the
    rake stage and the ``echo_dominant`` quality reasoning must absorb.
    Tap amplitude is ``gain`` times an exponential decay across the
    tail (see :data:`TAIL_DECAY_FOLDS`) with seeded per-tap jitter.
    """

    num_taps: int = 8
    onset_ms: float = 0.15
    tail_ms: float = 0.9
    gain: float = _severity_field(0.45, "scale")

    def __post_init__(self) -> None:
        if self.num_taps < 1:
            raise ConfigurationError(f"num_taps must be >= 1, got {self.num_taps}")
        if not 0.0 < self.onset_ms < self.tail_ms:
            raise ConfigurationError("need 0 < onset_ms < tail_ms")
        if self.gain < 0:
            raise ConfigurationError(f"gain must be >= 0, got {self.gain}")

    def apply(
        self, waveform: np.ndarray, sample_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Superpose seeded late reflections on a copy of ``waveform``."""
        out = self._as_array(waveform)
        if out.size == 0 or self.gain == 0.0:
            return out
        clean = out.copy()
        first = max(1, int(round(self.onset_ms * 1e-3 * sample_rate)))
        last = max(first + 1, int(round(self.tail_ms * 1e-3 * sample_rate)))
        delays = np.sort(rng.integers(first, last + 1, size=self.num_taps))
        decay = np.exp(
            -TAIL_DECAY_FOLDS * np.arange(self.num_taps) / max(1, self.num_taps - 1)
        )
        amplitudes = self.gain * decay * rng.uniform(0.6, 1.0, size=self.num_taps)
        for delay, amplitude in zip(delays, amplitudes):
            if delay < out.size:
                out[delay:] += amplitude * clean[: out.size - delay]
        return out


@dataclass(frozen=True)
class CalibrationDriftFault(FaultModel):
    """Uncalibrated earphone: broadband gain error plus spectral tilt.

    Applies a dB-linear frequency response across the probe band
    (``low_hz`` to ``high_hz``): a flat ``gain_db`` offset plus a
    ``tilt_db`` ramp from the low band edge to the high one, each with
    a seeded random sign — the signature of a device that drifted out
    of factory calibration (cf. the drift model in
    :mod:`repro.simulation.calibration`, which this fault mirrors as a
    waveform-level injection).
    """

    gain_db: float = _severity_field(3.0, "scale")
    tilt_db: float = _severity_field(4.0, "scale")
    low_hz: float = 15_000.0
    high_hz: float = 21_000.0

    def __post_init__(self) -> None:
        if self.gain_db < 0:
            raise ConfigurationError(f"gain_db must be >= 0, got {self.gain_db}")
        if self.tilt_db < 0:
            raise ConfigurationError(f"tilt_db must be >= 0, got {self.tilt_db}")
        if not 0.0 < self.low_hz < self.high_hz:
            raise ConfigurationError("need 0 < low_hz < high_hz")

    def apply(
        self, waveform: np.ndarray, sample_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Reshape a copy of ``waveform`` with a seeded gain/tilt response."""
        out = self._as_array(waveform)
        if out.size == 0 or (self.gain_db == 0.0 and self.tilt_db == 0.0):
            return out
        # Signs are drawn unconditionally so the RNG stream, and hence
        # any chained fault, is stable across severity settings.
        gain_sign = 1.0 if rng.random() < 0.5 else -1.0
        tilt_sign = 1.0 if rng.random() < 0.5 else -1.0
        freqs = np.fft.rfftfreq(out.size, d=1.0 / sample_rate)
        centre = 0.5 * (self.low_hz + self.high_hz)
        half_band = 0.5 * (self.high_hz - self.low_hz)
        shape = np.clip((freqs - centre) / half_band, -1.0, 1.0)
        level_db = gain_sign * self.gain_db + tilt_sign * self.tilt_db * shape
        response = 10.0 ** (level_db / 20.0)
        return np.fft.irfft(np.fft.rfft(out) * response, n=out.size)


@dataclass(frozen=True)
class FaultChain(FaultModel):
    """Sequential composition of fault models (applied left to right).

    Lets studies model compound failures — e.g. a leaking seal *and* a
    noisy room — while keeping the composite fingerprintable and
    severity-sweepable as one unit.
    """

    models: tuple[FaultModel, ...] = ()

    def __post_init__(self) -> None:
        for model in self.models:
            if not isinstance(model, FaultModel):
                raise ConfigurationError(
                    f"FaultChain members must be FaultModel, got {type(model).__name__}"
                )

    def apply(
        self, waveform: np.ndarray, sample_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Apply every member model in order to a copy of ``waveform``."""
        out = self._as_array(waveform)
        for model in self.models:
            out = model.apply(out, sample_rate, rng)
        return out

    def at_severity(self, severity: float) -> "FaultChain":
        """Rescale every member model to ``severity``."""
        if severity < 0.0:
            raise ConfigurationError(f"severity must be >= 0, got {severity}")
        return FaultChain(tuple(m.at_severity(severity) for m in self.models))

    @property
    def name(self) -> str:
        """Composite name, e.g. ``chain(SealLeak+Clipping)``."""
        return "chain(" + "+".join(m.name for m in self.models) + ")"


def fault_catalog(severity: float = 1.0) -> "dict[str, FaultModel]":
    """The standard fault taxonomy at a common severity.

    Keys are stable snake-case names used by the robustness-curve
    experiment and the chaos suite; severity 1.0 is each model's
    default configuration.
    """
    base: dict[str, FaultModel] = {
        "dropout": DropoutBursts(),
        "clipping": Clipping(),
        "transient": TransientBursts(),
        "seal_leak": SealLeak(),
        "dc_drift": DCClockDrift(),
        "truncation": Truncation(),
        "nonfinite": NonFiniteCorruption(),
        "reverb_tail": ReverbTailFault(),
        "calibration_drift": CalibrationDriftFault(),
    }
    return {name: model.at_severity(severity) for name, model in base.items()}


def apply_to_recording(
    recording: "Recording", model: FaultModel, rng: np.random.Generator
) -> "Recording":
    """Damaged copy of a :class:`~repro.simulation.session.Recording`.

    Replaces only the waveform; provenance, ground truth, and the
    session config are preserved so downstream scoring still knows the
    truth the damaged capture *should* have produced.
    """
    import dataclasses as _dc

    damaged = model.apply(recording.waveform, recording.sample_rate, rng)
    return _dc.replace(recording, waveform=damaged)
