"""Feature engineering: curve statistics, MFCC aggregation, selection.

Implements the paper's 105-element feature vector (fine-grained
absorbed-spectrum bins + statistics + MFCCs) and the Laplacian-score
selection that keeps the 25 most important features.
"""

from .laplacian import LaplacianScoreSelector, laplacian_scores, laplacian_scores_reference
from .statistics import (
    STATISTIC_NAMES,
    curve_statistics,
    kurtosis,
    maximum,
    mean,
    minimum,
    skewness,
    spectral_centroid,
    standard_deviation,
)
from .vector import FeatureVectorBuilder, FeatureVectorConfig, feature_names

__all__ = [
    "LaplacianScoreSelector",
    "laplacian_scores",
    "laplacian_scores_reference",
    "STATISTIC_NAMES",
    "curve_statistics",
    "kurtosis",
    "maximum",
    "mean",
    "minimum",
    "skewness",
    "spectral_centroid",
    "standard_deviation",
    "FeatureVectorBuilder",
    "FeatureVectorConfig",
    "feature_names",
]
