"""Laplacian-score feature selection (paper Sec. IV-C2).

The paper builds a 105-element feature vector and keeps the 25 most
important features by Laplacian score.  The Laplacian score of a
feature measures how well it respects the local manifold structure of
the data: features that vary smoothly across nearest-neighbour graphs
(low score) are preferred.

Implementation follows He, Cai & Niyogi (2005): a k-NN graph with RBF
heat-kernel weights, degree matrix ``D``, graph Laplacian ``L = D - S``;
for each (de-meaned) feature ``f``:

``score(f) = (f^T L f) / (f^T D f)``
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, NotFittedError

__all__ = ["laplacian_scores", "laplacian_scores_reference", "LaplacianScoreSelector"]


def _knn_heat_graph(data: np.ndarray, num_neighbors: int, bandwidth: float | None) -> np.ndarray:
    """Symmetric k-NN affinity matrix with heat-kernel weights."""
    n = data.shape[0]
    # Pairwise squared distances via the expansion ||a-b||^2.
    sq = np.sum(data**2, axis=1)
    d2 = np.maximum(sq[:, None] + sq[None, :] - 2.0 * data @ data.T, 0.0)
    if bandwidth is None:
        positive = d2[d2 > 0]
        bandwidth = float(np.median(positive)) if positive.size else 1.0
    bandwidth = max(bandwidth, 1e-12)
    affinity = np.exp(-d2 / bandwidth)
    np.fill_diagonal(affinity, 0.0)
    if num_neighbors < n - 1:
        keep = np.zeros_like(affinity, dtype=bool)
        order = np.argsort(-affinity, axis=1)
        rows = np.arange(n)[:, None]
        keep[rows, order[:, :num_neighbors]] = True
        keep |= keep.T  # symmetrise: an edge survives if either end keeps it
        affinity = np.where(keep, affinity, 0.0)
    return affinity


def laplacian_scores(
    data: np.ndarray,
    *,
    num_neighbors: int = 5,
    bandwidth: float | None = None,
) -> np.ndarray:
    """Laplacian score of each feature column of ``data`` (lower = better).

    One pass over the full data matrix: the degree-weighted de-meaning,
    the quadratic forms ``f^T D f`` and ``f^T L f``, and the graph
    application ``S F`` are each a single broadcasted/matrix operation
    across all columns, replacing the serial per-column loop of
    :func:`laplacian_scores_reference` (matched to <= 1e-10).
    """
    from ..kernels.dtypes import as_float_array

    data = as_float_array(data)
    if data.ndim != 2:
        raise ConfigurationError(f"data must be 2-D, got shape {data.shape}")
    n, _ = data.shape
    if n < 3:
        raise ConfigurationError(f"need at least 3 samples, got {n}")
    if num_neighbors < 1:
        raise ConfigurationError(f"num_neighbors must be >= 1, got {num_neighbors}")
    affinity = _knn_heat_graph(data, num_neighbors, bandwidth)
    degree = affinity.sum(axis=1)
    total_degree = degree.sum()
    centered = data
    if total_degree > 0:
        # f~ = f - (f^T D 1 / 1^T D 1) 1, all columns at once.
        centered = data - (degree @ data) / total_degree
    denom = degree @ (centered * centered)  # f~^T D f~ per column
    lf = degree[:, None] * centered - affinity @ centered  # L f~ = (D - S) f~
    numer = np.einsum("ij,ij->j", centered, lf)  # f~^T L f~ per column
    with np.errstate(invalid="ignore", divide="ignore"):
        scores = np.where(denom <= 1e-18, np.inf, numer / np.where(denom <= 1e-18, 1.0, denom))
    return scores


def laplacian_scores_reference(
    data: np.ndarray,
    *,
    num_neighbors: int = 5,
    bandwidth: float | None = None,
) -> np.ndarray:
    """Serial per-column Laplacian-score loop: the correctness oracle.

    The pre-kernel implementation, kept as the executable
    specification; prefer :func:`laplacian_scores` in hot paths.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ConfigurationError(f"data must be 2-D, got shape {data.shape}")
    n, _ = data.shape
    if n < 3:
        raise ConfigurationError(f"need at least 3 samples, got {n}")
    if num_neighbors < 1:
        raise ConfigurationError(f"num_neighbors must be >= 1, got {num_neighbors}")
    affinity = _knn_heat_graph(data, num_neighbors, bandwidth)
    degree = affinity.sum(axis=1)
    total_degree = degree.sum()
    scores = np.empty(data.shape[1])
    for j in range(data.shape[1]):
        f = data[:, j]
        # Remove the trivial constant component: f~ = f - (f^T D 1 / 1^T D 1) 1.
        if total_degree > 0:
            f = f - float(np.dot(f, degree) / total_degree)
        denom = float(np.dot(f * degree, f))
        if denom <= 1e-18:
            scores[j] = np.inf  # constant feature carries no structure
            continue
        lf = degree * f - affinity @ f  # L f = (D - S) f
        scores[j] = float(np.dot(f, lf) / denom)
    return scores


@dataclass
class LaplacianScoreSelector:
    """Select the ``num_features`` lowest-scoring (most important) features.

    Mirrors scikit-learn's fit/transform protocol; the paper keeps the
    top 25 of 105 features.
    """

    num_features: int = 25
    num_neighbors: int = 5
    bandwidth: float | None = None

    def __post_init__(self) -> None:
        if self.num_features < 1:
            raise ConfigurationError(
                f"num_features must be >= 1, got {self.num_features}"
            )
        self.selected_indices_: np.ndarray | None = None
        self.scores_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "LaplacianScoreSelector":
        """Compute scores on ``data`` and remember the best feature indices."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ConfigurationError(f"data must be 2-D, got shape {data.shape}")
        if self.num_features > data.shape[1]:
            raise ConfigurationError(
                f"cannot select {self.num_features} of {data.shape[1]} features"
            )
        self.scores_ = laplacian_scores(
            data, num_neighbors=self.num_neighbors, bandwidth=self.bandwidth
        )
        order = np.argsort(self.scores_, kind="stable")
        self.selected_indices_ = np.sort(order[: self.num_features])
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project ``data`` onto the selected feature subset."""
        if self.selected_indices_ is None:
            raise NotFittedError("LaplacianScoreSelector.transform called before fit")
        data = np.asarray(data, dtype=float)
        return data[..., self.selected_indices_]

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return the reduced matrix."""
        return self.fit(data).transform(data)
