"""Statistical descriptors of the echo power-spectrum curve.

The paper (Sec. IV-C2, "Statistic Features") summarises the global
shape of the absorbed-spectrum curve with: mean, standard deviation,
maximum, minimum, skewness and kurtosis.  We add the spectral centroid
(the dip shifts it measurably), giving the 7 statistics used in the
105-element feature vector.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mean",
    "standard_deviation",
    "minimum",
    "maximum",
    "skewness",
    "kurtosis",
    "spectral_centroid",
    "curve_statistics",
    "STATISTIC_NAMES",
]

#: Order of the statistics emitted by :func:`curve_statistics`.
STATISTIC_NAMES = (
    "mean",
    "std",
    "max",
    "min",
    "skewness",
    "kurtosis",
    "centroid",
)


def _validated(values: np.ndarray) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("statistics require a non-empty array")
    return arr


def mean(values: np.ndarray) -> float:
    """Arithmetic mean."""
    return float(np.mean(_validated(values)))


def standard_deviation(values: np.ndarray) -> float:
    """Population standard deviation."""
    return float(np.std(_validated(values)))


def minimum(values: np.ndarray) -> float:
    """Smallest value."""
    return float(np.min(_validated(values)))


def maximum(values: np.ndarray) -> float:
    """Largest value."""
    return float(np.max(_validated(values)))


def skewness(values: np.ndarray) -> float:
    """Fisher skewness (third standardised moment); 0 for constant input."""
    arr = _validated(values)
    centred = arr - arr.mean()
    sigma = np.sqrt(np.mean(centred**2))
    denom = sigma**3
    if denom == 0.0:  # constant input, or denormal underflow
        return 0.0
    return float(np.mean(centred**3) / denom)


def kurtosis(values: np.ndarray) -> float:
    """Excess kurtosis (fourth standardised moment minus 3)."""
    arr = _validated(values)
    centred = arr - arr.mean()
    sigma2 = np.mean(centred**2)
    denom = sigma2**2
    if denom == 0.0:  # constant input, or denormal underflow
        return 0.0
    return float(np.mean(centred**4) / denom - 3.0)


def spectral_centroid(values: np.ndarray, frequencies: np.ndarray | None = None) -> float:
    """Amplitude-weighted mean frequency of the curve.

    With no explicit ``frequencies`` the bin index is used, which is a
    linear mapping of any uniform grid and therefore equivalent for
    learning purposes.
    """
    arr = _validated(values)
    if frequencies is None:
        freq = np.arange(arr.size, dtype=float)
    else:
        freq = np.asarray(frequencies, dtype=float)
        if freq.shape != arr.shape:
            raise ValueError(f"frequency shape {freq.shape} != values shape {arr.shape}")
    weights = np.abs(arr)
    total = weights.sum()
    if total == 0.0:
        return float(freq.mean())
    return float(np.sum(freq * weights) / total)


def curve_statistics(values: np.ndarray, frequencies: np.ndarray | None = None) -> np.ndarray:
    """The 7 statistics of a spectral curve, in :data:`STATISTIC_NAMES` order."""
    arr = _validated(values)
    return np.array(
        [
            mean(arr),
            standard_deviation(arr),
            maximum(arr),
            minimum(arr),
            skewness(arr),
            kurtosis(arr),
            spectral_centroid(arr, frequencies),
        ]
    )
