"""Assembly of the 105-element MEE feature vector (paper Sec. IV-C2).

For each recording the pipeline averages the TX-deconvolved echo band
spectra over all chirps, producing one *absorption curve* on a uniform
frequency grid, and averages the aligned echo segments in the time
domain.  The feature vector is then:

* 64 normalised absorption-curve bins (the fine-grained "absorbed
  spectrum energy" features),
* 7 curve statistics (mean, std, max, min, skewness, kurtosis,
  centroid),
* 34 MFCC features: 17 cepstral coefficients summarised by their mean
  and standard deviation across analysis frames of the mean echo
  segment,

for a total of 105 elements, matching the paper's vector length.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..obs import names as obs_names
from ..obs.tracer import current_tracer
from ..signal.mfcc import MfccConfig, mfcc
from .statistics import curve_statistics

__all__ = ["FeatureVectorConfig", "FeatureVectorBuilder", "feature_names"]


@dataclass(frozen=True)
class FeatureVectorConfig:
    """Shape of the per-recording feature vector.

    Attributes
    ----------
    num_curve_bins:
        Points of the uniform absorption-curve grid (paper band
        16-20 kHz).
    band_low_hz / band_high_hz:
        The probe band the curve covers.
    mfcc:
        MFCC extraction parameters applied to the mean echo segment.
    """

    num_curve_bins: int = 64
    band_low_hz: float = 16_000.0
    band_high_hz: float = 20_000.0
    mfcc: MfccConfig = field(
        default_factory=lambda: MfccConfig(
            sample_rate=384_000.0,
            frame_length=256,
            frame_hop=128,
            nfft=1024,
            num_filters=20,
            num_coefficients=17,
            low_hz=15_000.0,
            high_hz=21_000.0,
        )
    )

    def __post_init__(self) -> None:
        if self.num_curve_bins < 8:
            raise ConfigurationError(
                f"num_curve_bins must be >= 8, got {self.num_curve_bins}"
            )
        if not 0.0 < self.band_low_hz < self.band_high_hz:
            raise ConfigurationError("need 0 < band_low_hz < band_high_hz")

    @property
    def vector_length(self) -> int:
        """Total feature count: curve bins + 7 statistics + 2x MFCC coefficients."""
        return self.num_curve_bins + 7 + 2 * self.mfcc.num_coefficients

    def frequency_grid(self) -> np.ndarray:
        """The uniform band grid the absorption curve lives on."""
        return np.linspace(self.band_low_hz, self.band_high_hz, self.num_curve_bins)


def feature_names(config: FeatureVectorConfig) -> list[str]:
    """Human-readable name of every feature vector element, in order."""
    grid = config.frequency_grid()
    names = [f"curve_{f:.0f}Hz" for f in grid]
    names += [f"stat_{n}" for n in ("mean", "std", "max", "min", "skew", "kurt", "centroid")]
    names += [f"mfcc{j}_mean" for j in range(config.mfcc.num_coefficients)]
    names += [f"mfcc{j}_std" for j in range(config.mfcc.num_coefficients)]
    return names


@dataclass
class FeatureVectorBuilder:
    """Builds 105-element vectors from absorption curves and echo segments."""

    config: FeatureVectorConfig = field(default_factory=FeatureVectorConfig)

    def build(
        self,
        curve: np.ndarray,
        mean_segment: np.ndarray,
        segment_rate: float,
        *,
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """Assemble the feature vector for one recording.

        Parameters
        ----------
        curve:
            Mean TX-deconvolved band spectrum on the config's grid,
            already peak-normalised.
        mean_segment:
            Time-domain mean of the aligned echo segments.
        segment_rate:
            Sample rate of ``mean_segment`` (the segmenter's upsampled
            rate).
        dtype:
            Numeric lane of the intermediate DSP (``float32`` routes
            the MFCC through the dispatched fast lane).  The returned
            vector is always float64 — downstream detector training
            and caching see one stable dtype regardless of lane.
        """
        curve = np.asarray(curve, dtype=dtype)
        if curve.size != self.config.num_curve_bins:
            raise ConfigurationError(
                f"curve has {curve.size} bins, expected {self.config.num_curve_bins}"
            )
        stats = curve_statistics(curve, self.config.frequency_grid())
        mfcc_cfg = self.config.mfcc
        if abs(mfcc_cfg.sample_rate - segment_rate) > 1e-6:
            mfcc_cfg = MfccConfig(
                sample_rate=segment_rate,
                frame_length=mfcc_cfg.frame_length,
                frame_hop=mfcc_cfg.frame_hop,
                nfft=mfcc_cfg.nfft,
                num_filters=mfcc_cfg.num_filters,
                num_coefficients=mfcc_cfg.num_coefficients,
                low_hz=mfcc_cfg.low_hz,
                high_hz=mfcc_cfg.high_hz,
            )
        with current_tracer().span(obs_names.SPAN_STAGE_MFCC) as span:
            coefficients = mfcc(np.asarray(mean_segment, dtype=dtype), mfcc_cfg)
            span.set("frames", int(coefficients.shape[0]))
        mfcc_mean = coefficients.mean(axis=0)
        mfcc_std = coefficients.std(axis=0)
        vector = np.concatenate([curve, stats, mfcc_mean, mfcc_std])
        if vector.size != self.config.vector_length:
            raise ConfigurationError(
                f"assembled {vector.size} features, expected {self.config.vector_length}"
            )
        return vector.astype(np.float64, copy=False)
