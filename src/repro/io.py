"""Persistence: save and load studies and feature tables as ``.npz``.

Feature extraction over a large study is the expensive step (minutes at
paper scale); persisting the :class:`~repro.core.evaluation.FeatureTable`
lets evaluation and detector experiments iterate without re-simulating.
Recordings can also be archived, e.g. to share a virtual study.

The format is plain NumPy ``.npz`` with string metadata arrays — no
pickling, so archives are portable and safe to load.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .core.evaluation import FeatureTable
from .core.results import ProcessedRecording, index_to_state, state_to_index
from .errors import EarSonarError
from .simulation.cohort import StudyDataset
from .simulation.session import Recording, SessionConfig

__all__ = [
    "save_feature_table",
    "load_feature_table",
    "save_recordings",
    "load_recordings",
]


def save_feature_table(table: FeatureTable, path: str | Path) -> Path:
    """Write a feature table to ``path`` (``.npz`` appended if missing).

    Per-recording pipeline artefacts beyond the curve (mean segments)
    are dropped — they are cheap to regenerate and large to store.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    curves = np.stack([p.curve for p in table.processed])
    days = np.array([p.day for p in table.processed])
    num_events = np.array([p.num_events for p in table.processed])
    num_echoes = np.array([p.num_echoes for p in table.processed])
    np.savez_compressed(
        path,
        features=table.features,
        states=np.array([state_to_index(s) for s in table.states]),
        groups=np.array(table.groups),
        curves=curves,
        days=days,
        num_events=num_events,
        num_echoes=num_echoes,
        failed_states=np.array([state_to_index(s) for s in table.failed_states]),
    )
    return path


def load_feature_table(path: str | Path) -> FeatureTable:
    """Read a feature table written by :func:`save_feature_table`."""
    path = Path(path)
    if not path.exists():
        raise EarSonarError(f"no feature table at {path}")
    with np.load(path, allow_pickle=False) as data:
        states = [index_to_state(int(i)) for i in data["states"]]
        groups = [str(g) for g in data["groups"]]
        processed = [
            ProcessedRecording(
                features=data["features"][i],
                curve=data["curves"][i],
                mean_segment=np.zeros(0),
                segment_rate=0.0,
                num_events=int(data["num_events"][i]),
                num_echoes=int(data["num_echoes"][i]),
                participant_id=groups[i],
                day=float(data["days"][i]),
                true_state=states[i],
            )
            for i in range(len(states))
        ]
        failed_states = [index_to_state(int(i)) for i in data["failed_states"]]
        return FeatureTable(
            features=data["features"].copy(),
            states=states,
            groups=groups,
            processed=processed,
            num_failed=len(failed_states),
            failed_states=failed_states,
        )


def save_recordings(dataset: StudyDataset, path: str | Path) -> Path:
    """Archive a study's waveforms and labels to ``path``.

    Session configuration is reduced to the acoustically relevant
    scalars (duration, rate); reloading yields recordings with a
    default :class:`SessionConfig` carrying the stored duration.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    lengths = {r.waveform.size for r in dataset}
    if len(lengths) != 1:
        raise EarSonarError("archiving requires equal-length recordings")
    waveforms = np.stack([r.waveform for r in dataset.recordings])
    np.savez_compressed(
        path,
        waveforms=waveforms,
        sample_rate=np.array([dataset.recordings[0].sample_rate]),
        participant_ids=np.array([r.participant_id for r in dataset]),
        days=np.array([r.day for r in dataset]),
        states=np.array([state_to_index(r.state) for r in dataset]),
    )
    return path


def load_recordings(path: str | Path) -> StudyDataset:
    """Reload a study archived by :func:`save_recordings`."""
    path = Path(path)
    if not path.exists():
        raise EarSonarError(f"no recording archive at {path}")
    with np.load(path, allow_pickle=False) as data:
        sample_rate = float(data["sample_rate"][0])
        duration = data["waveforms"].shape[1] / sample_rate
        config = SessionConfig(duration_s=duration)
        recordings = [
            Recording(
                waveform=data["waveforms"][i].copy(),
                sample_rate=sample_rate,
                participant_id=str(data["participant_ids"][i]),
                day=float(data["days"][i]),
                state=index_to_state(int(data["states"][i])),
                config=config,
            )
            for i in range(data["waveforms"].shape[0])
        ]
    return StudyDataset(recordings)
