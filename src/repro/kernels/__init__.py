"""Planned, batch-first DSP kernels.

This package is the performance layer of the reproduction.  It splits
every hot DSP operation into a **plan** — the shape- and
config-dependent state (windows, mel filterbanks, frequency grids,
chirp templates, device transfer curves) cached per
``(frozen config, shape)`` key in :mod:`repro.kernels.plan` — and a
**batched execute** step that runs one vectorized NumPy call over a
``(num_chirps | num_frames | num_signals, samples)`` stack instead of
a Python loop.

The serial implementations in :mod:`repro.signal`,
:mod:`repro.features`, and :mod:`repro.simulation` survive as
``*_reference`` functions: they are the executable specification, and
the golden suite in ``tests/kernels`` holds every kernel to a
``<= 1e-10`` max-abs-diff bound against them (bit-identical in the
common case).  ``python -m repro.bench`` times both sides and records
the speedups in ``BENCH_kernels.json`` / ``BENCH_pipeline.json``.

The plan cache is module-level state, so the runtime's process-pool
workers build each plan once per worker process and reuse it across
their whole batch.
"""

from .chirp import chirp_train_planned, matched_filter_batched, matched_filter_planned
from .framing import frames_dropping_tail, frames_zero_padded
from .mfcc import mfcc_batched, mfcc_planned
from .plan import (
    MfccPlan,
    PlanCacheInfo,
    WelchPlan,
    chirp_pulse,
    chirp_spectrum,
    clear_plan_cache,
    device_transfer,
    hamming_window,
    hann_window,
    matched_filter_spectrum,
    mfcc_plan,
    plan_cache_info,
    rfft_freqs,
    welch_plan,
)
from .session import apply_device_planned, synthesize_train
from .spectral import batched_amplitude_spectrum, batched_power_rows, welch_periodograms

__all__ = [
    "chirp_train_planned",
    "matched_filter_batched",
    "matched_filter_planned",
    "frames_dropping_tail",
    "frames_zero_padded",
    "mfcc_batched",
    "mfcc_planned",
    "MfccPlan",
    "PlanCacheInfo",
    "WelchPlan",
    "chirp_pulse",
    "chirp_spectrum",
    "clear_plan_cache",
    "device_transfer",
    "hamming_window",
    "hann_window",
    "matched_filter_spectrum",
    "mfcc_plan",
    "plan_cache_info",
    "rfft_freqs",
    "welch_plan",
    "apply_device_planned",
    "synthesize_train",
    "batched_amplitude_spectrum",
    "batched_power_rows",
    "welch_periodograms",
]
