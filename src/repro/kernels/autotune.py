"""Plan autotuner: measure candidate kernels once, pin the winner.

Whether a float32 recipe beats its ``via_float64`` round trip depends
on the BLAS/pocketfft build, the CPU, and the exact ``(shape, dtype)``
— the numbers that motivated the candidate ordering in
:mod:`repro.kernels.backends.numpy_backend` were measured on one
machine and will not hold everywhere.  Rather than hard-code the
choice, :func:`decide` times every offered candidate **on the real
arguments of the first call** and pins the fastest name in the plan
cache under ``("autotune", op, shape, dtype, candidate-set)``; every
later call with the same signature reuses the decision for free (and
pool workers, which import this module fresh, re-measure once per
process on their own cores).

The measurement is deliberately tiny — :data:`_TIMING_ROUNDS` timed
calls per candidate after one warm-up — because the candidates it
ranks differ by integer factors, not percents.  Each decision is
announced through the ``kernels.autotune_decided`` event with the
per-candidate timings, so a surprising choice is visible in the event
log instead of buried in process state.

``EARSONAR_AUTOTUNE=off`` (checked by the dispatch layer, not here)
skips the measurement entirely and pins the first registered
candidate.
"""

from __future__ import annotations

import time
from typing import Callable, Hashable, Sequence

import numpy as np

from ..obs import names as obs_names
from ..obs.events import current_event_log
from .plan import cached_plan

__all__ = ["decide", "signature_key"]

#: Timed calls per candidate (after one untimed warm-up call).
_TIMING_ROUNDS = 2


def signature_key(op: str, args: Sequence[object]) -> tuple[Hashable, ...]:
    """The ``(op, shape, dtype)`` cache key of one dispatch call.

    Array arguments contribute their shape and dtype; scalars and plan
    objects contribute nothing (they are determined by the shapes for
    every dispatchable op).
    """
    parts: list[Hashable] = ["autotune", op]
    for arg in args:
        if isinstance(arg, np.ndarray):
            parts.append(arg.shape)
            parts.append(arg.dtype.str)
    return tuple(parts)


def _measure(candidates: dict[str, Callable], args: Sequence[object]) -> dict[str, float]:
    """Best-of-N wall time per candidate, in milliseconds."""
    timings: dict[str, float] = {}
    for name, fn in candidates.items():
        fn(*args)  # warm-up: plan building, allocator, FFT twiddles
        best = float("inf")
        for _ in range(_TIMING_ROUNDS):
            start = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - start)
        timings[name] = best * 1e3
    return timings


def decide(
    op: str,
    candidates: dict[str, Callable],
    args: Sequence[object],
) -> str:
    """The candidate name to use for ``op`` on arguments like ``args``.

    First call per ``(op, shape, dtype, candidate-set)`` measures and
    pins; later calls return the pinned name from the plan cache.
    """
    key = signature_key(op, args) + (tuple(sorted(candidates)),)

    def _build() -> str:
        timings = _measure(candidates, args)
        choice = min(timings, key=timings.__getitem__)
        shapes = [
            "x".join(str(dim) for dim in arg.shape)
            for arg in args
            if isinstance(arg, np.ndarray)
        ]
        dtypes = [arg.dtype.name for arg in args if isinstance(arg, np.ndarray)]
        current_event_log().emit(
            obs_names.EVENT_KERNEL_AUTOTUNE_DECIDED,
            op=op,
            shape=",".join(shapes),
            dtype=",".join(dict.fromkeys(dtypes)),
            choice=choice,
            **{f"ms_{name}": round(ms, 4) for name, ms in timings.items()},
        )
        return choice

    return cached_plan(key, _build)
