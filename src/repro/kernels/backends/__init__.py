"""Backend dispatch for the float32 kernel lane.

The kernels package runs two numeric lanes (see
:mod:`repro.kernels.dtypes`).  The **float64 lane never reaches this
package**: its implementations are pinned inline in the kernels,
bit-identical to the serial references.  The **float32 lane** routes
every dispatchable op through :func:`run_op`, which assembles the
registered *candidates* — the pure-NumPy reference recipes
(:mod:`.numpy_backend`) plus, when numba is importable, the jitted
epilogues (:mod:`.jit_backend`) — and picks one:

* ``EARSONAR_KERNEL_BACKEND=numpy`` (or :func:`select_backend`) pins
  the NumPy candidates; ``=jit`` pins the jitted ones where an op has
  any, with a once-per-process ``kernels.backend_fallback`` WARNING
  event when numba is absent; ``=auto`` (the default) offers both.
* within the offered set, the autotuner
  (:mod:`repro.kernels.autotune`) times the candidates on the first
  real call per ``(op, shape, dtype)`` and pins the winner in the plan
  cache; ``EARSONAR_AUTOTUNE=off`` skips the measurement and pins the
  first registered candidate (the measured-best default).

The resolved backend is announced once per process via the
``kernels.backend_selected`` event, and :func:`ensure_ready` front-loads
the numba compilation cost (reported through the executor's
``kernels.jit_compile_ms`` histogram) so it never lands on the first
recording of a batch.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

from ...obs import names as obs_names
from ...obs.events import EventLevel, current_event_log
from . import jit_backend, numpy_backend

__all__ = [
    "BACKEND_CHOICES",
    "BACKEND_ENV_VAR",
    "AUTOTUNE_ENV_VAR",
    "requested_backend",
    "active_backend",
    "select_backend",
    "use_backend",
    "ensure_ready",
    "candidates_for",
    "run_op",
    "reset_announcements",
]

#: Recognized values of :data:`BACKEND_ENV_VAR` / :func:`select_backend`.
BACKEND_CHOICES = ("auto", "numpy", "jit")

#: Environment variable that forces a backend for the whole process.
BACKEND_ENV_VAR = "EARSONAR_KERNEL_BACKEND"

#: Set to ``off`` to disable autotuning (first candidate always wins).
AUTOTUNE_ENV_VAR = "EARSONAR_AUTOTUNE"

#: Programmatic override (tests, benchmarks); beats the environment.
_SELECTED: str | None = None

#: Once-per-process latches for the selection/fallback events.
_ANNOUNCED = False
_FALLBACK_WARNED = False


def requested_backend() -> str:
    """The backend the caller asked for, before availability checks.

    :func:`select_backend` overrides take precedence; otherwise the
    :data:`BACKEND_ENV_VAR` environment variable is consulted, with
    unrecognized values treated as ``auto``.
    """
    if _SELECTED is not None:
        return _SELECTED
    value = os.environ.get(BACKEND_ENV_VAR, "auto").strip().lower()
    return value if value in BACKEND_CHOICES else "auto"


def active_backend() -> str:
    """The backend actually in effect: ``numpy``, ``jit``, or ``auto``.

    ``jit`` degrades to ``numpy`` (with a single WARNING event) when
    numba cannot be imported; ``auto`` stays ``auto`` — it is not a
    backend but an instruction to offer every available candidate to
    the autotuner.
    """
    global _ANNOUNCED, _FALLBACK_WARNED
    requested = requested_backend()
    resolved = requested
    if requested == "jit" and not jit_backend.available():
        resolved = "numpy"
        if not _FALLBACK_WARNED:
            _FALLBACK_WARNED = True  # qa: ignore[QA009]  once-per-process latch
            current_event_log().emit(
                obs_names.EVENT_KERNEL_BACKEND_FALLBACK,
                level=EventLevel.WARNING,
                requested=requested,
                reason="numba is not importable",
            )
    if not _ANNOUNCED:
        _ANNOUNCED = True  # qa: ignore[QA009]  once-per-process latch
        current_event_log().emit(
            obs_names.EVENT_KERNEL_BACKEND_SELECTED,
            backend=resolved,
            requested=requested,
            jit_available=jit_backend.available(),
        )
    return resolved


def select_backend(name: str | None) -> None:
    """Force a backend programmatically (``None`` restores env/auto)."""
    global _SELECTED
    if name is not None and name not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown kernel backend {name!r}; choose from {BACKEND_CHOICES}"
        )
    _SELECTED = name  # qa: ignore[QA009]  explicit process-wide override


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Scope a forced backend to a ``with`` block (tests, benchmarks)."""
    previous = _SELECTED
    select_backend(name)
    try:
        yield
    finally:
        select_backend(previous)


def reset_announcements() -> None:
    """Re-arm the once-per-process selection/fallback events (tests)."""
    global _ANNOUNCED, _FALLBACK_WARNED
    _ANNOUNCED = False  # qa: ignore[QA009]  test isolation hook
    _FALLBACK_WARNED = False  # qa: ignore[QA009]  test isolation hook


def ensure_ready() -> float:
    """Warm the active backend; returns one-time compile cost in ms.

    With the NumPy backend (or numba absent) there is nothing to
    compile and the cost is 0.0.  With the jitted candidates in play
    the numba compilation runs here, once, instead of inside the first
    recording of the first batch.
    """
    if active_backend() == "numpy":
        return 0.0
    return jit_backend.warmup()


def candidates_for(op: str) -> dict[str, Callable]:
    """The ordered candidate set of ``op`` under the active backend.

    Always non-empty: the NumPy reference candidates exist for every
    dispatchable op, and a forced ``jit`` backend falls back to them
    for ops numba does not cover (or when numba is absent).
    """
    backend = active_backend()
    reference = numpy_backend.candidates_for(op)
    if backend == "numpy":
        return reference
    jitted = jit_backend.candidates_for(op)
    if backend == "jit":
        return jitted or reference
    merged = dict(reference)
    merged.update(jitted)
    return merged


def _autotune_enabled() -> bool:
    return os.environ.get(AUTOTUNE_ENV_VAR, "on").strip().lower() != "off"


def run_op(op: str, *args: object) -> np.ndarray:
    """Execute one dispatchable float32-lane op on ``args``.

    The candidate is chosen per ``(op, shape, dtype)`` — by the
    autotuner on the first call (the decision is pinned in the plan
    cache for the rest of the process), or the first registered
    candidate when autotuning is off or only one candidate exists.
    """
    candidates = candidates_for(op)
    if len(candidates) == 1 or not _autotune_enabled():
        chosen = next(iter(candidates.values()))
        return chosen(*args)
    from .. import autotune

    name = autotune.decide(op, candidates, args)
    return candidates[name](*args)
