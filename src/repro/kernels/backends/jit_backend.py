"""Optional numba ``@njit`` backend: lazy import, graceful absence.

numba is an *optional* accelerator, never a dependency: this module
imports it lazily on first use, and every entry point degrades to
"unavailable" when the import fails — the dispatch layer then emits a
single ``kernels.backend_fallback`` warning event and routes every op
to the NumPy candidates.

What gets jitted: the post-FFT inner loops (fused magnitude-square with
one-sided scaling, and the band-to-grid linear interpolation).  The
FFTs themselves stay in NumPy — numba has no FFT, and pocketfft is
already within a few percent of peak — so a jitted candidate is a
NumPy FFT feeding an ``@njit(cache=True)`` epilogue that skips the
intermediate temporaries the pure-NumPy expression allocates.

Compilation cost is paid once per process at :func:`warmup` (called by
``backends.ensure_ready()``), measured with ``perf_counter`` and
reported through the ``kernels.jit_compile_ms`` histogram so the
trade is visible in telemetry rather than folded into the first
recording's latency.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

__all__ = ["available", "candidates_for", "warmup"]

#: Lazy import state: ``None`` = not yet attempted, ``False`` = numba
#: missing, module object = importable.
_NUMBA: object | bool | None = None

#: Compiled op table, built once per process by :func:`_compiled`.
_OPS: dict[str, dict[str, Callable]] | None = None


def _numba() -> object | bool:
    """The numba module, or ``False`` when it cannot be imported."""
    global _NUMBA
    if _NUMBA is None:
        try:
            import numba  # noqa: F401  (optional accelerator)

            _NUMBA = numba  # qa: ignore[QA009]  one-shot lazy import cache
        except ImportError:
            _NUMBA = False  # qa: ignore[QA009]  one-shot lazy import cache
    return _NUMBA


def available() -> bool:
    """Whether the numba backend can run in this environment."""
    return bool(_numba())


def _compiled() -> dict[str, dict[str, Callable]]:
    """Compile (once per process) and return the jitted op table."""
    global _OPS
    if _OPS is not None:
        return _OPS
    numba = _numba()
    if not numba:
        _OPS = {}  # qa: ignore[QA009]  one-shot compile cache
        return _OPS
    njit = numba.njit  # type: ignore[union-attr]

    @njit(cache=True, fastmath=False)
    def _fused_power_scale(real, imag, scale, even):  # pragma: no cover - needs numba
        out = np.empty_like(real)
        rows, bins = real.shape
        for r in range(rows):
            for b in range(bins):
                value = (real[r, b] * real[r, b] + imag[r, b] * imag[r, b]) * scale
                if b > 0:
                    value *= 2.0
                out[r, b] = value
            if even and bins > 1:
                out[r, bins - 1] /= 2.0
        return out

    @njit(cache=True, fastmath=False)
    def _lerp_rows(band, lo, hi, weight):  # pragma: no cover - needs numba
        rows = band.shape[0]
        cols = lo.shape[0]
        out = np.empty((rows, cols), dtype=band.dtype)
        for r in range(rows):
            for c in range(cols):
                w = weight[c]
                out[r, c] = band[r, lo[c]] * (1.0 - w) + band[r, hi[c]] * w
        return out

    def welch_power_jit(frames, window, scale):
        spectra = np.fft.rfft(frames * window, axis=-1)
        return _fused_power_scale(
            np.ascontiguousarray(spectra.real),
            np.ascontiguousarray(spectra.imag),
            np.float32(scale),
            window.size % 2 == 0,
        )

    def band_zoom_jit(stack, zoom, nfft):
        band = np.abs(stack @ zoom.matrix) * zoom.inv_n
        return _lerp_rows(band, zoom.lo, zoom.hi, zoom.weight)

    _OPS = {  # qa: ignore[QA009]  one-shot compile cache
        "welch_power": {"jit_fused": welch_power_jit},
        "band_zoom_amplitude": {"jit_zoom": band_zoom_jit},
    }
    return _OPS


def candidates_for(op: str) -> dict[str, Callable]:
    """Jitted candidates of ``op``; empty when numba is unavailable."""
    return dict(_compiled().get(op, {}))


def warmup() -> float:
    """Compile every jitted op on tiny inputs; returns elapsed ms.

    Returns 0.0 when numba is unavailable (nothing to compile).  The
    tiny-shape calls force nopython compilation so the first real
    batch never pays the compiler; ``cache=True`` persists the
    machine code across processes when numba's cache directory is
    writable.
    """
    if not available():
        return 0.0
    t0 = time.perf_counter()
    ops = _compiled()
    frames = np.zeros((2, 8), dtype=np.float32)
    window = np.ones(8, dtype=np.float32)
    for fn in ops.get("welch_power", {}).values():
        fn(frames, window, 1.0)
    from ..plan import band_zoom_plan

    zoom = band_zoom_plan(8, 16, 16.0, np.asarray([2.0, 3.0, 4.0]))
    if zoom is not None:
        for fn in ops.get("band_zoom_amplitude", {}).values():
            fn(frames, zoom, 16)
    return (time.perf_counter() - t0) * 1e3
