"""Pure-NumPy implementation candidates for the dispatchable kernel ops.

This module is the reference backend.  For every dispatchable op it
registers one or more *candidates* — interchangeable implementations of
the same computation whose outputs agree within the float32 tolerance
budget.  The dispatch layer (:mod:`repro.kernels.backends`) picks among
them: the first registered candidate is the measured-best default, and
the autotuner may override that choice per ``(op, shape, dtype)``.

Only the **float32 lane** is dispatched.  The float64 lane never
reaches this module: its implementations live inline in the kernels and
are pinned bit-identical to the serial references, a contract no
alternative candidate could honour.

Two recurring candidate shapes:

* ``*_via_float64`` — upcast to float64, run the legacy double
  expression, cast the result back.  NumPy's real-input FFT is often
  *faster* in float64 than float32 for 2-D stacks (pocketfft picks
  different kernels), so the round trip frequently wins despite the two
  casts; the autotuner measures rather than assumes.
* fused / zoom variants — float32-native recipes that restructure the
  math (``re**2 + im**2`` instead of ``abs()**2``, band-limited direct
  DFT instead of a full ``rfft``) so the narrow lane does less work,
  not just cheaper work.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..plan import BandZoomPlan, matched_filter_spectrum

__all__ = ["CANDIDATES", "candidates_for"]


def _welch_power_via_float64(
    frames: np.ndarray, window: np.ndarray, scale: float
) -> np.ndarray:
    """Legacy double-precision Welch periodograms, cast back to f32."""
    frames64 = frames.astype(np.float64)  # qa: ignore[QA011]  deliberate f64 round trip
    windowed = frames64 * window.astype(np.float64)  # qa: ignore[QA011]
    periodograms = (np.abs(np.fft.rfft(windowed, axis=-1)) ** 2) * scale
    _one_sided(periodograms, window.size)
    return periodograms.astype(np.float32)


def _welch_power_fused32(
    frames: np.ndarray, window: np.ndarray, scale: float
) -> np.ndarray:
    """float32-native Welch periodograms with a fused magnitude square."""
    spectra = np.fft.rfft(frames * window, axis=-1)
    periodograms = (spectra.real**2 + spectra.imag**2) * np.float32(scale)
    _one_sided(periodograms, window.size)
    return periodograms


def _one_sided(periodograms: np.ndarray, segment_length: int) -> None:
    """In-place one-sided doubling with Nyquist correction."""
    if periodograms.shape[-1] > 1:
        periodograms[..., 1:] *= 2.0
        if segment_length % 2 == 0:
            periodograms[..., -1] /= 2.0


def _power_rows_via_float64(frames: np.ndarray, nfft: int) -> np.ndarray:
    """Double-precision frame power spectra, cast back to f32."""
    frames64 = frames.astype(np.float64)  # qa: ignore[QA011]  deliberate f64 round trip
    power = np.abs(np.fft.rfft(frames64, nfft, axis=-1)) ** 2
    return power.astype(np.float32)


def _power_rows_fused32(frames: np.ndarray, nfft: int) -> np.ndarray:
    """float32-native frame power spectra (fused magnitude square)."""
    spectra = np.fft.rfft(frames, nfft, axis=-1)
    return spectra.real**2 + spectra.imag**2


def _amplitude_rows_via_float64(signals: np.ndarray, nfft: int) -> np.ndarray:
    """Double-precision amplitude rows, cast back to f32."""
    signals64 = signals.astype(np.float64)  # qa: ignore[QA011]  deliberate f64 round trip
    values = np.abs(np.fft.rfft(signals64, nfft, axis=-1)) / signals.shape[-1]
    return values.astype(np.float32)


def _amplitude_rows_float32(signals: np.ndarray, nfft: int) -> np.ndarray:
    """float32-native amplitude rows."""
    spectra = np.fft.rfft(signals, nfft, axis=-1)
    return np.sqrt(spectra.real**2 + spectra.imag**2) * np.float32(
        1.0 / signals.shape[-1]
    )


def _matched_filter_rows_via_float64(signals: np.ndarray, design) -> np.ndarray:
    """Double-precision matched filter against the f64 template, cast back."""
    signals64 = signals.astype(np.float64)  # qa: ignore[QA011]  deliberate f64 round trip
    pulse_size = design.samples_per_chirp
    n = signals64.shape[-1] + pulse_size - 1
    nfft = 1 << (n - 1).bit_length()
    spec = np.fft.rfft(signals64, nfft, axis=-1) * matched_filter_spectrum(design, nfft)
    corr = np.roll(np.fft.irfft(spec, nfft, axis=-1), pulse_size - 1, axis=-1)[..., :n]
    start = pulse_size - 1
    return np.abs(corr[..., start : start + signals.shape[-1]]).astype(np.float32)


def _matched_filter_rows_float32(signals: np.ndarray, design) -> np.ndarray:
    """float32-native matched filter against the complex64 template."""
    pulse_size = design.samples_per_chirp
    n = signals.shape[-1] + pulse_size - 1
    nfft = 1 << (n - 1).bit_length()
    template = matched_filter_spectrum(design, nfft, dtype=np.complex64)
    spec = np.fft.rfft(signals, nfft, axis=-1).astype(np.complex64) * template
    corr = np.roll(np.fft.irfft(spec, nfft, axis=-1), pulse_size - 1, axis=-1)[..., :n]
    start = pulse_size - 1
    return np.abs(corr[..., start : start + signals.shape[-1]])


def _band_zoom_matmul(stack: np.ndarray, zoom: BandZoomPlan, nfft: int) -> np.ndarray:
    """Band-limited direct DFT: one complex matmul at the band bins only."""
    band = np.abs(stack @ zoom.matrix) * zoom.inv_n
    return band[:, zoom.lo] * (np.float32(1.0) - zoom.weight) + band[:, zoom.hi] * zoom.weight


def _band_zoom_full_rfft(stack: np.ndarray, zoom: BandZoomPlan, nfft: int) -> np.ndarray:
    """Full double-precision ``rfft`` with the same band interpolation."""
    stack64 = stack.astype(np.float64)  # qa: ignore[QA011]  deliberate f64 round trip
    amplitude = np.abs(np.fft.rfft(stack64, nfft, axis=-1)) / stack.shape[-1]
    band = amplitude[:, zoom.bins].astype(np.float32)
    return band[:, zoom.lo] * (np.float32(1.0) - zoom.weight) + band[:, zoom.hi] * zoom.weight


#: Candidate registries per op.  Order matters: the first entry is the
#: measured-best default on the reference machine and the choice the
#: autotune kill switch (``EARSONAR_AUTOTUNE=off``) pins.
CANDIDATES: dict[str, dict[str, Callable]] = {
    "welch_power": {
        "fused_float32": _welch_power_fused32,
        "via_float64": _welch_power_via_float64,
    },
    "power_rows": {
        "fused_float32": _power_rows_fused32,
        "via_float64": _power_rows_via_float64,
    },
    "amplitude_rows": {
        "via_float64": _amplitude_rows_via_float64,
        "float32_native": _amplitude_rows_float32,
    },
    "matched_filter_rows": {
        "via_float64": _matched_filter_rows_via_float64,
        "float32_native": _matched_filter_rows_float32,
    },
    "band_zoom_amplitude": {
        "zoom_matmul": _band_zoom_matmul,
        "full_rfft": _band_zoom_full_rfft,
    },
}


def candidates_for(op: str) -> dict[str, Callable]:
    """The NumPy candidates of ``op`` (insertion order = preference)."""
    return dict(CANDIDATES[op])
