"""Planned chirp-domain kernels: trains and matched filtering.

The chirp pulse and its FFT depend only on the frozen
:class:`~repro.signal.chirp.ChirpDesign` (plus the FFT size), so both
live in the plan cache; matched filtering a stream then costs one
forward FFT of the stream, one multiply against the cached conjugate
template spectrum, and one inverse FFT — the template is never
re-synthesised or re-transformed.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..signal.chirp import ChirpDesign
from . import backends
from .dtypes import as_float_array
from .plan import chirp_pulse, matched_filter_spectrum, rake_plan

__all__ = [
    "chirp_train_planned",
    "matched_filter_planned",
    "matched_filter_batched",
    "rake_cancel_planned",
]


def chirp_train_planned(
    design: ChirpDesign,
    num_chirps: int,
    *,
    total_samples: int | None = None,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Vectorized chirp-train synthesis (one placement, no Python loop).

    Because a design's pulse can never outlast its interval
    (``interval >= duration`` is validated at construction), pulses
    never overlap and the train is a strided placement of the cached
    pulse into a ``(num_chirps, hop)`` buffer — exactly the samples the
    serial per-chirp loop wrote.  ``dtype=np.float32`` places the
    float32 pulse variant instead (tolerance lane).
    """
    if num_chirps <= 0:
        raise ConfigurationError(f"num_chirps must be positive, got {num_chirps}")
    pulse = chirp_pulse(design, dtype=dtype)
    hop = design.samples_per_interval
    needed = (num_chirps - 1) * hop + design.samples_per_chirp
    default_len = num_chirps * hop
    length = max(needed, default_len) if total_samples is None else int(total_samples)
    if length < needed:
        raise ConfigurationError(
            f"total_samples={length} cannot contain {num_chirps} chirps (need >= {needed})"
        )
    grid = np.zeros((num_chirps, hop), dtype=pulse.dtype)
    grid[:, : pulse.size] = pulse
    flat = grid.ravel()
    if length <= flat.size:
        return flat[:length].copy()
    train = np.zeros(length, dtype=pulse.dtype)
    train[: flat.size] = flat
    return train


def matched_filter_planned(signal: np.ndarray, design: ChirpDesign) -> np.ndarray:
    """Matched-filter magnitude of ``signal`` against the cached pulse.

    Bit-identical to the serial
    :func:`repro.signal.chirp.matched_filter` (same FFT size, same
    roll/slice alignment) but the template synthesis and its FFT are
    plan-cache hits after the first call per ``(design, nfft)``.
    """
    signal = as_float_array(signal)
    if signal.size == 0:
        raise ValueError("cross_correlate requires non-empty inputs")
    if signal.dtype == np.float32:
        return backends.run_op("matched_filter_rows", signal[None, :], design)[0]
    pulse = chirp_pulse(design)
    n = signal.size + pulse.size - 1
    nfft = 1 << (n - 1).bit_length()
    spec = np.fft.rfft(signal, nfft) * matched_filter_spectrum(design, nfft)
    corr = np.roll(np.fft.irfft(spec, nfft), pulse.size - 1)[:n]
    start = pulse.size - 1
    return np.abs(corr[start : start + signal.size])


def rake_cancel_planned(
    segment: np.ndarray,
    design: ChirpDesign,
    *,
    protect_from: int,
    threshold: float,
) -> tuple[np.ndarray, int]:
    """Early-reflection cancellation with plan-cached templates.

    Equivalent to
    :func:`repro.signal.correlation.cancel_early_reflections` with the
    same arguments, but the I/Q template pair and its Gram inverse come
    from the plan cache, so per-event work is the onset search plus a
    few dot products per candidate delay.
    """
    from ..signal.correlation import cancel_early_reflections

    plan = rake_plan(design)
    return cancel_early_reflections(
        segment,
        plan.pulse,
        plan.quad,
        protect_from=protect_from,
        threshold=threshold,
        gram_inv=plan.gram_inv,
    )


def matched_filter_batched(signals: np.ndarray, design: ChirpDesign) -> np.ndarray:
    """Matched-filter magnitudes of a ``(batch, samples)`` stack.

    One 2-D FFT round trip against the cached template spectrum;
    row ``k`` equals ``matched_filter(signals[k], design)``.
    """
    signals = np.atleast_2d(as_float_array(signals))
    if signals.shape[-1] == 0:
        raise ValueError("cross_correlate requires non-empty inputs")
    if signals.dtype == np.float32:
        return backends.run_op("matched_filter_rows", signals, design)
    pulse = chirp_pulse(design)
    n = signals.shape[-1] + pulse.size - 1
    nfft = 1 << (n - 1).bit_length()
    spec = np.fft.rfft(signals, nfft, axis=-1) * matched_filter_spectrum(design, nfft)
    corr = np.roll(np.fft.irfft(spec, nfft, axis=-1), pulse.size - 1, axis=-1)[:, :n]
    start = pulse.size - 1
    return np.abs(corr[:, start : start + signals.shape[-1]])
