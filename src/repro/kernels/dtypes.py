"""Precision policy helpers: float32-preserving coercion for kernels.

The kernels package has two numeric lanes:

* **float64 (default)** — the scientific contract.  Outputs are
  bit-identical to the serial references; every golden suite pins this
  lane.
* **float32 (opt-in)** — the performance lane selected by
  ``EarSonarConfig.precision = "float32"``.  Outputs are equivalent
  within the documented tolerance budget (see DESIGN.md, "Precision
  policy"), never bit-identical.

The historical kernels coerced every input with
``np.asarray(x, dtype=float)``, which silently upcasts float32 input
to float64 and destroys the fast lane three lines into the pipeline.
:func:`as_float_array` is the sanctioned coercion: float32 stays
float32, everything else (float64, ints, lists) becomes float64 —
exactly the old behaviour for every historical caller.  The QA011 lint
rule bans the old idiom inside ``repro/kernels`` so the discipline
cannot regress silently.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_float_array",
    "result_dtype",
    "complex_dtype",
    "match_scalar",
]


def as_float_array(values: object) -> np.ndarray:
    """Coerce ``values`` to a float array without silently upcasting.

    float32 input is returned as-is (zero-copy); float64 input is
    returned as-is; every other dtype (ints, bools, object lists) is
    converted to float64, matching the historical
    ``np.asarray(x, dtype=float)`` behaviour for non-float32 callers.
    """
    array = np.asarray(values)
    if array.dtype == np.float32 or array.dtype == np.float64:
        return array
    # Only non-float dtypes reach this line; the promotion is the point.
    return array.astype(np.float64)  # qa: ignore[QA011]


def result_dtype(array: np.ndarray) -> np.dtype:
    """The float lane an input array selects: float32 or float64."""
    return np.dtype(np.float32 if array.dtype == np.float32 else np.float64)


def complex_dtype(dtype: np.dtype | type) -> np.dtype:
    """Complex companion of a float lane: c64 for f32, c128 for f64."""
    return np.dtype(np.complex64 if np.dtype(dtype) == np.float32 else np.complex128)


def match_scalar(value: float, dtype: np.dtype | type) -> np.floating:
    """Cast a Python float to the lane's scalar type (f32 or f64)."""
    return np.dtype(dtype).type(value)
