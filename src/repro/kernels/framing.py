"""Zero-copy framing of 1-D signals into ``(num_frames, length)`` stacks.

Both analysis kernels (Welch, MFCC) start by cutting a signal into
overlapping frames.  The serial implementations did this with Python
loops or fancy-index matrices; here a single
:func:`numpy.lib.stride_tricks.sliding_window_view` produces a strided
view and one slice selects the hop, so no per-frame Python work and no
index-matrix allocation happens.

Two tail conventions exist in the codebase and both are preserved
exactly:

* :func:`frames_dropping_tail` — Welch convention: only complete
  segments count, trailing samples are ignored.
* :func:`frames_zero_padded` — MFCC convention: the tail is zero-padded
  so every sample lands in at least one frame.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .dtypes import as_float_array

__all__ = ["frames_dropping_tail", "frames_zero_padded"]


def frames_dropping_tail(signal: np.ndarray, frame_length: int, hop: int) -> np.ndarray:
    """Complete overlapping frames of ``signal``; the tail is dropped.

    Returns a read-only strided view of shape ``(num_frames,
    frame_length)`` with frame ``k`` starting at ``k * hop`` — the same
    frames the serial Welch loop visits.  Raises ``ValueError`` when no
    complete frame fits.
    """
    signal = np.asarray(signal)
    if frame_length < 1:
        raise ValueError(f"frame_length must be >= 1, got {frame_length}")
    if hop < 1:
        raise ValueError(f"hop must be >= 1, got {hop}")
    if signal.size < frame_length:
        raise ValueError(
            f"signal of {signal.size} samples cannot fill a {frame_length}-sample frame"
        )
    return sliding_window_view(signal, frame_length)[::hop]


def frames_zero_padded(signal: np.ndarray, frame_length: int, hop: int) -> np.ndarray:
    """Overlapping frames of ``signal`` with a zero-padded tail.

    Mirrors the MFCC framing contract: a signal no longer than one
    frame becomes a single padded frame; otherwise ``1 + ceil((n - L) /
    hop)`` frames cover every sample.  Returns a fresh writable array
    (frames are consumed by windowing, which needs a copy anyway).
    """
    signal = as_float_array(signal)
    if frame_length < 1:
        raise ValueError(f"frame_length must be >= 1, got {frame_length}")
    if hop < 1:
        raise ValueError(f"hop must be >= 1, got {hop}")
    if signal.size <= frame_length:
        padded = np.zeros(frame_length, dtype=signal.dtype)
        padded[: signal.size] = signal
        return padded[None, :]
    num_frames = 1 + int(np.ceil((signal.size - frame_length) / hop))
    padded = np.zeros((num_frames - 1) * hop + frame_length, dtype=signal.dtype)
    padded[: signal.size] = signal
    return np.ascontiguousarray(sliding_window_view(padded, frame_length)[::hop])
