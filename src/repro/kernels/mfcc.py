"""Planned, batched MFCC extraction.

The serial :func:`repro.signal.mfcc.mfcc` rebuilt the mel filterbank
(a ``num_filters x (nfft//2+1)`` triangle-by-triangle Python loop) and
the DCT basis on *every call*; the pipeline calls it once per
recording and the feature bench thousands of times.  Here both come
from the :mod:`repro.kernels.plan` cache keyed by the frozen
:class:`~repro.signal.mfcc.MfccConfig`, and the whole pipeline —
window, batched frame FFT, filterbank application, DCT — is four
vectorized operations.  :func:`mfcc_batched` additionally stacks many
equal-length segments into a single 3-D pass.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..signal.mfcc import MfccConfig
from .dtypes import as_float_array
from .framing import frames_zero_padded
from .plan import MfccPlan, mfcc_plan, mfcc_plan32
from .spectral import batched_power_rows

__all__ = ["mfcc_planned", "mfcc_batched"]

#: Log floor applied to filterbank energies (matches the serial path).
_LOG_FLOOR = 1e-12


def _cepstra(power: np.ndarray, plan: MfccPlan) -> np.ndarray:
    """Filterbank -> log -> DCT for a ``(..., n_bins)`` power stack."""
    energies = power @ plan.filterbank.T
    log_energies = np.log(np.maximum(energies, power.dtype.type(_LOG_FLOOR)))
    return (log_energies @ plan.dct_basis.T) * plan.dct_scale


def _plan_for(signal: np.ndarray, config: MfccConfig) -> MfccPlan:
    """The lane-matched plan: float32 matrices for float32 signals."""
    if signal.dtype == np.float32:
        return mfcc_plan32(config)
    return mfcc_plan(config)


def mfcc_planned(signal: np.ndarray, config: MfccConfig) -> np.ndarray:
    """MFCC matrix ``(num_frames, num_coefficients)`` of one signal.

    Drop-in replacement for the serial :func:`repro.signal.mfcc.mfcc`
    body; bit-identical because the cached filterbank/window/basis are
    built by the same constructors and the frame FFT batches the same
    per-frame transforms.
    """
    signal = as_float_array(signal)
    if signal.size == 0:
        raise ConfigurationError("mfcc requires a non-empty signal")
    plan = _plan_for(signal, config)
    frames = frames_zero_padded(signal, config.frame_length, config.frame_hop)
    power = batched_power_rows(frames * plan.window, config.nfft)
    return _cepstra(power, plan)


def mfcc_batched(segments: np.ndarray, config: MfccConfig) -> np.ndarray:
    """MFCCs of a ``(batch, samples)`` stack of equal-length segments.

    Returns ``(batch, num_frames, num_coefficients)``.  Each segment
    must be at least one frame long so the framing is uniform; shorter
    batches should fall back to :func:`mfcc_planned` per segment.
    """
    segments = as_float_array(segments)
    if segments.ndim != 2:
        raise ValueError(f"segments must be 2-D, got shape {segments.shape}")
    batch, n = segments.shape
    if n == 0:
        raise ValueError("mfcc_batched requires non-empty segments")
    plan = _plan_for(segments, config)
    length, hop = config.frame_length, config.frame_hop
    if n <= length:
        padded = np.zeros((batch, length), dtype=segments.dtype)
        padded[:, :n] = segments
        frames = padded[:, None, :]
    else:
        num_frames = 1 + int(np.ceil((n - length) / hop))
        padded = np.zeros((batch, (num_frames - 1) * hop + length), dtype=segments.dtype)
        padded[:, :n] = segments
        from numpy.lib.stride_tricks import sliding_window_view

        frames = sliding_window_view(padded, length, axis=-1)[:, ::hop, :]
    windowed = frames * plan.window
    if windowed.dtype == np.float32:
        spectra = np.fft.rfft(windowed, config.nfft, axis=-1)
        power = spectra.real**2 + spectra.imag**2
    else:
        power = np.abs(np.fft.rfft(windowed, config.nfft, axis=-1)) ** 2
    return _cepstra(power, plan)
