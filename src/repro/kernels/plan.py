"""Plan layer: shape-keyed caches of everything the kernels precompute.

A *plan* is the immutable, precomputable half of a DSP operation: the
Hann/Hamming window for a frame length, the mel filterbank for an MFCC
configuration, the ``rfftfreq`` grid for an FFT size, the chirp pulse
and its spectrum for a :class:`~repro.signal.chirp.ChirpDesign`, the
device transfer curve for an earphone.  Building these per call is what
made the serial implementations slow; building them once per
``(config, shape)`` key and executing batched kernels against them is
the whole point of :mod:`repro.kernels`.

Keys are the frozen config dataclasses themselves plus the relevant
shape parameters.  Frozen-dataclass equality is field-by-field, i.e.
the in-process analogue of ``EarSonarConfig.fingerprint()``: two equal
configs share a plan, two configs differing anywhere do not.  The cache
is a module-level dict, so process-pool workers (which import this
module fresh) build each plan once per worker process and reuse it
across the worker's whole batch — the same pattern as the runtime's
``_WORKER_PIPELINES`` registry, and module-level by design so the QA003
pool-safety rule keeps holding.

All cached arrays are marked read-only before they are handed out;
kernels must copy before mutating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Hashable

import numpy as np

if TYPE_CHECKING:  # imported for annotations only; avoids import cycles
    from ..signal.chirp import ChirpDesign
    from ..signal.mfcc import MfccConfig
    from ..simulation.earphone import EarphoneModel

__all__ = [
    "PlanCacheInfo",
    "plan_cache_info",
    "clear_plan_cache",
    "cached_plan",
    "rfft_freqs",
    "hann_window",
    "hamming_window",
    "chirp_pulse",
    "chirp_spectrum",
    "matched_filter_spectrum",
    "WelchPlan",
    "welch_plan",
    "MfccPlan",
    "mfcc_plan",
    "mfcc_plan32",
    "device_transfer",
    "BandZoomPlan",
    "band_zoom_plan",
    "RakePlan",
    "rake_plan",
]

#: Soft capacity of the plan cache.  Plans are small (windows, filter
#: matrices, one-pulse spectra), but a pathological sweep over thousands
#: of configs should not grow memory without bound; insertion order
#: doubles as an eviction order.
_MAX_ENTRIES = 512

_CACHE: dict[tuple[Hashable, ...], Any] = {}
_HITS = 0
_MISSES = 0


@dataclass(frozen=True)
class PlanCacheInfo:
    """Snapshot of plan-cache effectiveness counters."""

    hits: int
    misses: int
    size: int


def plan_cache_info() -> PlanCacheInfo:
    """Current hit/miss/size counters of the module-level plan cache."""
    return PlanCacheInfo(hits=_HITS, misses=_MISSES, size=len(_CACHE))


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the counters (test isolation)."""
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0


def _freeze(array: np.ndarray) -> np.ndarray:
    """Mark an array read-only so cached plans cannot be corrupted."""
    array.flags.writeable = False
    return array


def cached_plan(key: tuple[Hashable, ...], build: Callable[[], Any]) -> Any:
    """Return the plan under ``key``, building and caching it on a miss.

    The builder runs at most once per key per process (modulo benign
    races under free-threading); arrays inside the built plan should
    already be read-only.
    """
    global _HITS, _MISSES
    plan = _CACHE.get(key)
    if plan is not None:
        _HITS += 1  # qa: ignore[QA009]  intentional per-process cache stats
        return plan
    _MISSES += 1  # qa: ignore[QA009]  intentional per-process cache stats
    plan = build()
    if len(_CACHE) >= _MAX_ENTRIES:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = plan
    return plan


# ---------------------------------------------------------------------------
# Elementary shared plans
# ---------------------------------------------------------------------------


def rfft_freqs(nfft: int, sample_rate: float) -> np.ndarray:
    """Cached one-sided FFT frequency grid ``rfftfreq(nfft, 1/rate)``."""

    def build() -> np.ndarray:
        return _freeze(np.fft.rfftfreq(nfft, d=1.0 / sample_rate))

    return cached_plan(("rfftfreq", int(nfft), float(sample_rate)), build)


def hann_window(length: int, *, periodic: bool = False) -> np.ndarray:
    """Cached Hann window (see :func:`repro.signal.windows.hann`)."""

    def build() -> np.ndarray:
        from ..signal.windows import hann

        return _freeze(hann(length, periodic=periodic))

    return cached_plan(("hann", int(length), bool(periodic)), build)


def hamming_window(length: int, *, periodic: bool = False) -> np.ndarray:
    """Cached Hamming window (see :func:`repro.signal.windows.hamming`)."""

    def build() -> np.ndarray:
        from ..signal.windows import hamming

        return _freeze(hamming(length, periodic=periodic))

    return cached_plan(("hamming", int(length), bool(periodic)), build)


# ---------------------------------------------------------------------------
# Chirp plans
# ---------------------------------------------------------------------------


def chirp_pulse(design: "ChirpDesign", *, dtype: np.dtype | type = np.float64) -> np.ndarray:
    """Cached synthesised pulse for ``design`` (one per design, not per call).

    ``dtype=float32`` returns a cached single-precision copy of the
    float64 pulse (cast once, not re-synthesised), for the float32 lane.
    """

    def build() -> np.ndarray:
        from ..signal.chirp import linear_chirp

        return _freeze(linear_chirp(design))

    pulse = cached_plan(("chirp_pulse", design), build)
    if np.dtype(dtype) == np.float64:
        return pulse
    return cached_plan(
        ("chirp_pulse", design, np.dtype(dtype).name),
        lambda: _freeze(pulse.astype(dtype)),
    )


def chirp_spectrum(
    design: "ChirpDesign", nfft: int, *, dtype: np.dtype | type = np.complex128
) -> np.ndarray:
    """Cached ``rfft`` of the design's pulse at FFT size ``nfft``.

    ``dtype=complex64`` returns a cached single-precision cast of the
    double-precision spectrum for the float32 synthesis lane.
    """

    def build() -> np.ndarray:
        return _freeze(np.fft.rfft(chirp_pulse(design), nfft))

    spectrum = cached_plan(("chirp_spectrum", design, int(nfft)), build)
    if np.dtype(dtype) == np.complex128:
        return spectrum
    return cached_plan(
        ("chirp_spectrum", design, int(nfft), np.dtype(dtype).name),
        lambda: _freeze(spectrum.astype(dtype)),
    )


def matched_filter_spectrum(
    design: "ChirpDesign", nfft: int, *, dtype: np.dtype | type = np.complex128
) -> np.ndarray:
    """Cached conjugate pulse spectrum used by the matched filter."""

    def build() -> np.ndarray:
        return _freeze(np.conj(np.fft.rfft(chirp_pulse(design), nfft)))

    spectrum = cached_plan(("matched_filter_spectrum", design, int(nfft)), build)
    if np.dtype(dtype) == np.complex128:
        return spectrum
    return cached_plan(
        ("matched_filter_spectrum", design, int(nfft), np.dtype(dtype).name),
        lambda: _freeze(spectrum.astype(dtype)),
    )


# ---------------------------------------------------------------------------
# Welch / spectral plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WelchPlan:
    """Precomputed state of a Welch PSD at one ``(segment, rate)`` shape.

    Attributes
    ----------
    window:
        Periodic Hann window of the segment length.
    scale:
        Density normalisation ``1 / (rate * sum(window**2))``.
    frequencies:
        One-sided frequency grid of the segment FFT.
    """

    window: np.ndarray
    scale: float
    frequencies: np.ndarray


def welch_plan(
    segment_length: int, sample_rate: float, *, dtype: np.dtype | type = np.float64
) -> WelchPlan:
    """Cached :class:`WelchPlan` for the given segment length and rate.

    ``dtype=float32`` returns a variant whose window is a cached
    single-precision cast of the float64 window (the frequency grid
    stays float64 — it is metadata, not a hot operand).
    """

    def build() -> WelchPlan:
        window = hann_window(segment_length, periodic=True)
        scale = 1.0 / (sample_rate * np.sum(window**2))
        return WelchPlan(
            window=window,
            scale=float(scale),
            frequencies=rfft_freqs(segment_length, sample_rate),
        )

    plan = cached_plan(("welch", int(segment_length), float(sample_rate)), build)
    if np.dtype(dtype) == np.float64:
        return plan

    def build32() -> WelchPlan:
        return WelchPlan(
            window=_freeze(plan.window.astype(dtype)),
            scale=plan.scale,
            frequencies=plan.frequencies,
        )

    return cached_plan(
        ("welch", int(segment_length), float(sample_rate), np.dtype(dtype).name),
        build32,
    )


# ---------------------------------------------------------------------------
# MFCC plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MfccPlan:
    """Precomputed state of MFCC extraction for one :class:`MfccConfig`.

    Attributes
    ----------
    window:
        Hamming analysis window of the frame length.
    filterbank:
        Mel filterbank ``(num_filters, nfft//2 + 1)``; applied as one
        matmul ``power @ filterbank.T`` (kept untransposed so the BLAS
        call is byte-identical to the serial reference's).
    dct_basis:
        Truncated DCT-II basis ``(num_coefficients, num_filters)``.
    dct_scale:
        Orthonormalisation scale of the DCT rows.
    """

    window: np.ndarray
    filterbank: np.ndarray
    dct_basis: np.ndarray
    dct_scale: np.ndarray


def mfcc_plan(config: "MfccConfig") -> MfccPlan:
    """Cached :class:`MfccPlan` for ``config``.

    This hoists the mel filterbank construction (satellite of the plan
    layer: keyed by the frozen ``MfccConfig``, which carries
    ``nfft``/``sample_rate``) and the DCT basis out of every call.
    """

    def build() -> MfccPlan:
        from ..signal.mfcc import dct_basis, mel_filterbank

        bank = mel_filterbank(
            config.num_filters,
            config.nfft,
            config.sample_rate,
            config.low_hz,
            config.high_hz,
        )
        basis, scale = dct_basis(config.num_coefficients, config.num_filters)
        return MfccPlan(
            window=hamming_window(config.frame_length),
            filterbank=_freeze(bank),
            dct_basis=_freeze(basis),
            dct_scale=_freeze(scale),
        )

    return cached_plan(("mfcc", config), build)


def mfcc_plan32(config: "MfccConfig") -> MfccPlan:
    """Single-precision variant of :func:`mfcc_plan` for the float32 lane.

    Every matrix is a cached cast of the float64 plan's, so the two
    lanes share one construction pass and differ only in storage
    precision.
    """
    plan = mfcc_plan(config)

    def build() -> MfccPlan:
        return MfccPlan(
            window=_freeze(plan.window.astype(np.float32)),
            filterbank=_freeze(plan.filterbank.astype(np.float32)),
            dct_basis=_freeze(plan.dct_basis.astype(np.float32)),
            dct_scale=_freeze(plan.dct_scale.astype(np.float32)),
        )

    return cached_plan(("mfcc", config, "float32"), build)


# ---------------------------------------------------------------------------
# Rake plans (early-reflection cancellation)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RakePlan:
    """Precomputed templates of the orthogonal-least-squares rake.

    The I/Q template pair and its 2x2 Gram inverse depend only on the
    chirp design — none of the per-event data — so the per-event cost
    collapses to the onset search plus a handful of length-``pulse``
    dot products per candidate delay.

    Attributes
    ----------
    pulse, quad:
        The template pulse and its discrete Hilbert quadrature.
    gram_inv:
        Inverse 2x2 Gram matrix of the pair (see
        :func:`repro.signal.correlation.rake_gram_inverse`).
    """

    pulse: np.ndarray
    quad: np.ndarray
    gram_inv: np.ndarray


def rake_plan(design: "ChirpDesign") -> RakePlan:
    """Cached :class:`RakePlan` for ``design``."""

    def build() -> RakePlan:
        from ..signal.correlation import quadrature_pulse, rake_gram_inverse

        pulse = chirp_pulse(design)
        quad = _freeze(quadrature_pulse(pulse))
        gram_inv = _freeze(rake_gram_inverse(pulse, quad))
        return RakePlan(pulse=pulse, quad=quad, gram_inv=gram_inv)

    return cached_plan(("rake", design), build)


# ---------------------------------------------------------------------------
# Device plans
# ---------------------------------------------------------------------------


def device_transfer(earphone: "EarphoneModel", nfft: int, sample_rate: float) -> np.ndarray:
    """Cached earphone transfer curve on the ``nfft`` frequency grid."""

    def build() -> np.ndarray:
        freqs = rfft_freqs(nfft, sample_rate)
        return _freeze(earphone.transfer(freqs))

    return cached_plan(("device", earphone, int(nfft), float(sample_rate)), build)


# ---------------------------------------------------------------------------
# Band-limited zoom-DFT plans (float32 absorption lane)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BandZoomPlan:
    """Precomputed zoom-DFT + interpolation for band-limited spectra.

    The absorption analysis needs only the ~85 FFT bins inside the
    probe band out of ``nfft//2 + 1`` (4097 at the default sizes), so
    evaluating a direct DFT at exactly those bins — one
    ``(samples, band_bins)`` complex matmul — beats a full ``rfft`` by
    an order of magnitude.  The plan also bakes in the band-to-grid
    linear interpolation as gather indices plus clamped weights with
    ``np.interp``'s exact edge semantics (outside-band grid points
    clamp to the edge bins).

    Attributes
    ----------
    matrix:
        ``exp(-2j*pi*f_b*t/rate)`` of shape ``(samples, band_bins)``.
    inv_n:
        Amplitude normalisation ``1 / samples`` as a lane scalar.
    lo, hi:
        Gather indices into the band bins for each grid point.
    weight:
        Interpolation weight of ``hi`` per grid point, clamped to
        ``[0, 1]`` so edge grid points clamp instead of extrapolating.
    """

    matrix: np.ndarray
    inv_n: np.floating
    bins: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    weight: np.ndarray


def band_zoom_plan(
    num_samples: int,
    nfft: int,
    sample_rate: float,
    grid: np.ndarray,
    *,
    dtype: np.dtype | type = np.float32,
) -> BandZoomPlan | None:
    """Cached :class:`BandZoomPlan`, or ``None`` if the band degenerates.

    The grid is assumed uniform (it comes from
    ``FeatureVectorConfig.frequency_grid``), so the cache key only
    needs its endpoints and size.  Returns ``None`` when fewer than two
    FFT bins fall inside ``[grid[0], grid[-1] + 1]`` — callers fall
    back to the full-FFT path.
    """
    grid = np.asarray(grid)
    key = (
        "band_zoom",
        int(num_samples),
        int(nfft),
        float(sample_rate),
        int(grid.size),
        float(grid[0]),
        float(grid[-1]),
        np.dtype(dtype).name,
    )

    def build() -> BandZoomPlan | None:
        freqs = rfft_freqs(nfft, sample_rate)
        mask = (freqs >= grid[0]) & (freqs <= grid[-1] + 1.0)
        band = freqs[mask]
        if band.size < 2:
            return None
        cdtype = np.complex64 if np.dtype(dtype) == np.float32 else np.complex128
        t = np.arange(num_samples)[:, None]
        matrix = np.exp((-2j * np.pi / sample_rate) * t * band[None, :]).astype(cdtype)
        # np.interp semantics: right-bisect, then clamp both the cell
        # index and the in-cell weight so out-of-band grid points take
        # the edge bin's value instead of extrapolating.
        hi = np.clip(np.searchsorted(band, grid, side="right"), 1, band.size - 1)
        lo = hi - 1
        weight = np.clip((grid - band[lo]) / (band[hi] - band[lo]), 0.0, 1.0)
        return BandZoomPlan(
            matrix=_freeze(matrix),
            inv_n=np.dtype(dtype).type(1.0 / num_samples),
            bins=_freeze(np.flatnonzero(mask).astype(np.intp)),
            lo=_freeze(lo.astype(np.intp)),
            hi=_freeze(hi.astype(np.intp)),
            weight=_freeze(weight.astype(dtype)),
        )

    return cached_plan(key, build)
