"""Plan layer: shape-keyed caches of everything the kernels precompute.

A *plan* is the immutable, precomputable half of a DSP operation: the
Hann/Hamming window for a frame length, the mel filterbank for an MFCC
configuration, the ``rfftfreq`` grid for an FFT size, the chirp pulse
and its spectrum for a :class:`~repro.signal.chirp.ChirpDesign`, the
device transfer curve for an earphone.  Building these per call is what
made the serial implementations slow; building them once per
``(config, shape)`` key and executing batched kernels against them is
the whole point of :mod:`repro.kernels`.

Keys are the frozen config dataclasses themselves plus the relevant
shape parameters.  Frozen-dataclass equality is field-by-field, i.e.
the in-process analogue of ``EarSonarConfig.fingerprint()``: two equal
configs share a plan, two configs differing anywhere do not.  The cache
is a module-level dict, so process-pool workers (which import this
module fresh) build each plan once per worker process and reuse it
across the worker's whole batch — the same pattern as the runtime's
``_WORKER_PIPELINES`` registry, and module-level by design so the QA003
pool-safety rule keeps holding.

All cached arrays are marked read-only before they are handed out;
kernels must copy before mutating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Hashable

import numpy as np

if TYPE_CHECKING:  # imported for annotations only; avoids import cycles
    from ..signal.chirp import ChirpDesign
    from ..signal.mfcc import MfccConfig
    from ..simulation.earphone import EarphoneModel

__all__ = [
    "PlanCacheInfo",
    "plan_cache_info",
    "clear_plan_cache",
    "cached_plan",
    "rfft_freqs",
    "hann_window",
    "hamming_window",
    "chirp_pulse",
    "chirp_spectrum",
    "matched_filter_spectrum",
    "WelchPlan",
    "welch_plan",
    "MfccPlan",
    "mfcc_plan",
    "device_transfer",
]

#: Soft capacity of the plan cache.  Plans are small (windows, filter
#: matrices, one-pulse spectra), but a pathological sweep over thousands
#: of configs should not grow memory without bound; insertion order
#: doubles as an eviction order.
_MAX_ENTRIES = 512

_CACHE: dict[tuple[Hashable, ...], Any] = {}
_HITS = 0
_MISSES = 0


@dataclass(frozen=True)
class PlanCacheInfo:
    """Snapshot of plan-cache effectiveness counters."""

    hits: int
    misses: int
    size: int


def plan_cache_info() -> PlanCacheInfo:
    """Current hit/miss/size counters of the module-level plan cache."""
    return PlanCacheInfo(hits=_HITS, misses=_MISSES, size=len(_CACHE))


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the counters (test isolation)."""
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0


def _freeze(array: np.ndarray) -> np.ndarray:
    """Mark an array read-only so cached plans cannot be corrupted."""
    array.flags.writeable = False
    return array


def cached_plan(key: tuple[Hashable, ...], build: Callable[[], Any]) -> Any:
    """Return the plan under ``key``, building and caching it on a miss.

    The builder runs at most once per key per process (modulo benign
    races under free-threading); arrays inside the built plan should
    already be read-only.
    """
    global _HITS, _MISSES
    plan = _CACHE.get(key)
    if plan is not None:
        _HITS += 1  # qa: ignore[QA009]  intentional per-process cache stats
        return plan
    _MISSES += 1  # qa: ignore[QA009]  intentional per-process cache stats
    plan = build()
    if len(_CACHE) >= _MAX_ENTRIES:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = plan
    return plan


# ---------------------------------------------------------------------------
# Elementary shared plans
# ---------------------------------------------------------------------------


def rfft_freqs(nfft: int, sample_rate: float) -> np.ndarray:
    """Cached one-sided FFT frequency grid ``rfftfreq(nfft, 1/rate)``."""

    def build() -> np.ndarray:
        return _freeze(np.fft.rfftfreq(nfft, d=1.0 / sample_rate))

    return cached_plan(("rfftfreq", int(nfft), float(sample_rate)), build)


def hann_window(length: int, *, periodic: bool = False) -> np.ndarray:
    """Cached Hann window (see :func:`repro.signal.windows.hann`)."""

    def build() -> np.ndarray:
        from ..signal.windows import hann

        return _freeze(hann(length, periodic=periodic))

    return cached_plan(("hann", int(length), bool(periodic)), build)


def hamming_window(length: int, *, periodic: bool = False) -> np.ndarray:
    """Cached Hamming window (see :func:`repro.signal.windows.hamming`)."""

    def build() -> np.ndarray:
        from ..signal.windows import hamming

        return _freeze(hamming(length, periodic=periodic))

    return cached_plan(("hamming", int(length), bool(periodic)), build)


# ---------------------------------------------------------------------------
# Chirp plans
# ---------------------------------------------------------------------------


def chirp_pulse(design: "ChirpDesign") -> np.ndarray:
    """Cached synthesised pulse for ``design`` (one per design, not per call)."""

    def build() -> np.ndarray:
        from ..signal.chirp import linear_chirp

        return _freeze(linear_chirp(design))

    return cached_plan(("chirp_pulse", design), build)


def chirp_spectrum(design: "ChirpDesign", nfft: int) -> np.ndarray:
    """Cached ``rfft`` of the design's pulse at FFT size ``nfft``."""

    def build() -> np.ndarray:
        return _freeze(np.fft.rfft(chirp_pulse(design), nfft))

    return cached_plan(("chirp_spectrum", design, int(nfft)), build)


def matched_filter_spectrum(design: "ChirpDesign", nfft: int) -> np.ndarray:
    """Cached conjugate pulse spectrum used by the matched filter."""

    def build() -> np.ndarray:
        return _freeze(np.conj(np.fft.rfft(chirp_pulse(design), nfft)))

    return cached_plan(("matched_filter_spectrum", design, int(nfft)), build)


# ---------------------------------------------------------------------------
# Welch / spectral plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WelchPlan:
    """Precomputed state of a Welch PSD at one ``(segment, rate)`` shape.

    Attributes
    ----------
    window:
        Periodic Hann window of the segment length.
    scale:
        Density normalisation ``1 / (rate * sum(window**2))``.
    frequencies:
        One-sided frequency grid of the segment FFT.
    """

    window: np.ndarray
    scale: float
    frequencies: np.ndarray


def welch_plan(segment_length: int, sample_rate: float) -> WelchPlan:
    """Cached :class:`WelchPlan` for the given segment length and rate."""

    def build() -> WelchPlan:
        window = hann_window(segment_length, periodic=True)
        scale = 1.0 / (sample_rate * np.sum(window**2))
        return WelchPlan(
            window=window,
            scale=float(scale),
            frequencies=rfft_freqs(segment_length, sample_rate),
        )

    return cached_plan(("welch", int(segment_length), float(sample_rate)), build)


# ---------------------------------------------------------------------------
# MFCC plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MfccPlan:
    """Precomputed state of MFCC extraction for one :class:`MfccConfig`.

    Attributes
    ----------
    window:
        Hamming analysis window of the frame length.
    filterbank:
        Mel filterbank ``(num_filters, nfft//2 + 1)``; applied as one
        matmul ``power @ filterbank.T`` (kept untransposed so the BLAS
        call is byte-identical to the serial reference's).
    dct_basis:
        Truncated DCT-II basis ``(num_coefficients, num_filters)``.
    dct_scale:
        Orthonormalisation scale of the DCT rows.
    """

    window: np.ndarray
    filterbank: np.ndarray
    dct_basis: np.ndarray
    dct_scale: np.ndarray


def mfcc_plan(config: "MfccConfig") -> MfccPlan:
    """Cached :class:`MfccPlan` for ``config``.

    This hoists the mel filterbank construction (satellite of the plan
    layer: keyed by the frozen ``MfccConfig``, which carries
    ``nfft``/``sample_rate``) and the DCT basis out of every call.
    """

    def build() -> MfccPlan:
        from ..signal.mfcc import dct_basis, mel_filterbank

        bank = mel_filterbank(
            config.num_filters,
            config.nfft,
            config.sample_rate,
            config.low_hz,
            config.high_hz,
        )
        basis, scale = dct_basis(config.num_coefficients, config.num_filters)
        return MfccPlan(
            window=hamming_window(config.frame_length),
            filterbank=_freeze(bank),
            dct_basis=_freeze(basis),
            dct_scale=_freeze(scale),
        )

    return cached_plan(("mfcc", config), build)


# ---------------------------------------------------------------------------
# Device plans
# ---------------------------------------------------------------------------


def device_transfer(earphone: "EarphoneModel", nfft: int, sample_rate: float) -> np.ndarray:
    """Cached earphone transfer curve on the ``nfft`` frequency grid."""

    def build() -> np.ndarray:
        freqs = rfft_freqs(nfft, sample_rate)
        return _freeze(earphone.transfer(freqs))

    return cached_plan(("device", earphone, int(nfft), float(sample_rate)), build)
