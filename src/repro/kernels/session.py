"""Vectorized chirp-train synthesis through a multipath channel.

The serial simulator (`repro.simulation.session._synthesize_train_reference`)
renders a session chirp by chirp: for every one of the ``K`` chirps it
rebuilds every path's jittered :class:`PropagationPath`, re-evaluates
each path's frequency response, forms the channel transfer function,
and pays a full FFT round trip — ``K`` serial FFTs and ``K x P``
transfer rebuilds for a ``K``-chirp, ``P``-path session.  That loop is
the hot core under every experiment table.

This kernel folds the per-chirp perturbations (echo-delay jitter and
the low-discrepancy phase schedule) into a single complex transfer
matrix ``H`` of shape ``(K, nfft//2 + 1)``, multiplies it by the cached
pulse spectrum, and runs **one** 2-D inverse FFT followed by a
vectorized overlap-add.  Path responses are evaluated once per session
instead of once per chirp.

Equivalence contract (enforced by ``tests/kernels``): the kernel
consumes the ``rng`` stream in exactly the serial order (echo-phase
offsets first, then jitters chirp-major) and reproduces the serial
arithmetic operation-for-operation, so the output is bit-identical
whenever every chirp shares one FFT size, and ``<= 1e-10`` otherwise
(chirps are grouped by their serial per-chirp FFT size, which jitter
can in principle straddle).
"""

from __future__ import annotations

import numpy as np

from ..acoustics.propagation import MultipathChannel
from ..signal.chirp import ChirpDesign
from ..simulation.earphone import EarphoneModel
from .dtypes import as_float_array, complex_dtype
from .plan import chirp_pulse, chirp_spectrum, device_transfer, rfft_freqs

__all__ = ["synthesize_train", "apply_device_planned"]

#: Golden-ratio-family strides of the per-chirp echo-phase schedule;
#: must match the serial reference in ``repro.simulation.session``.
PHASE_STRIDES = (0.6180339887498949, 0.41421356237309515, 0.7320508075688772, 0.23606797749978969)


def synthesize_train(
    channel: MultipathChannel,
    design: ChirpDesign,
    num_chirps: int,
    path_jitter_s: float,
    rng: np.random.Generator,
    *,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Render ``num_chirps`` chirps through ``channel`` in one batch.

    Parameters mirror the serial loop: the direct path is unjittered
    and keeps its designed phase; every other path gets a fresh delay
    jitter per chirp and a stratified pseudo-random carrier phase.
    ``rng`` is consumed in the serial draw order so seeded studies are
    reproducible across the two implementations.

    ``dtype=np.float32`` renders through a complex64 transfer matrix
    and FFT (tolerance lane; the RNG stream, delays, and phases are
    still drawn and formed in float64, so the two lanes simulate the
    *same* session).
    """
    dtype = np.dtype(dtype)
    cdtype = complex_dtype(dtype)
    fs = design.sample_rate
    pulse = chirp_pulse(design)
    hop = design.samples_per_interval
    total = num_chirps * hop
    out = np.zeros(total + hop, dtype=dtype)
    paths = channel.paths
    if not paths:
        return out[:total]

    num_paths = len(paths)
    direct = np.array([p.label == "direct" for p in paths])
    echo_idx = np.flatnonzero(~direct)

    # RNG draw order matches the serial loop exactly: one uniform offset
    # per path first, then (chirp-major) one normal jitter per echo path.
    offsets = rng.uniform(0.0, 1.0, size=num_paths)
    if path_jitter_s > 0 and echo_idx.size:
        jitter = rng.normal(0.0, path_jitter_s, size=(num_chirps, echo_idx.size))
    else:
        jitter = np.zeros((num_chirps, echo_idx.size), dtype=np.float64)

    # Per-chirp path delays (K, P) and carrier phases (K, P).
    base_delays = np.array([p.delay_s for p in paths])
    delays = np.broadcast_to(base_delays, (num_chirps, num_paths)).copy()
    if echo_idx.size:
        delays[:, echo_idx] = np.maximum(0.0, base_delays[echo_idx] + jitter)
    phases = np.broadcast_to(
        np.array([p.phase for p in paths]), (num_chirps, num_paths)
    ).copy()
    if echo_idx.size:
        k = np.arange(num_chirps, dtype=float)[:, None]
        strides = np.array([PHASE_STRIDES[j % len(PHASE_STRIDES)] for j in echo_idx])
        fractions = (k * strides + offsets[echo_idx]) % 1.0
        phases[:, echo_idx] = 2.0 * np.pi * fractions

    # The serial loop sizes each chirp's FFT from that chirp's largest
    # jittered delay; group chirps sharing a pad so each group repeats
    # the serial arithmetic exactly (one group in practice — the jitter
    # is microseconds).
    max_delay = delays.max(axis=1)
    pads = (np.ceil(max_delay * fs).astype(int) + 1).astype(int)
    for pad in np.unique(pads):
        rows = np.flatnonzero(pads == pad)
        n = pulse.size + int(pad)
        nfft = 1 << (max(n, 2) - 1).bit_length()
        transfer = _transfer_matrix(
            channel, delays[rows], phases[rows], nfft, fs, cdtype
        )
        spectrum = chirp_spectrum(design, nfft, dtype=cdtype)
        echoed = np.fft.irfft(spectrum * transfer, nfft, axis=-1)[:, :n]
        _overlap_add(out, echoed, rows * hop)
    return out[:total]


def _transfer_matrix(
    channel: MultipathChannel,
    delays: np.ndarray,
    phases: np.ndarray,
    nfft: int,
    sample_rate: float,
    cdtype: np.dtype = np.dtype(np.complex128),
) -> np.ndarray:
    """Stacked channel transfer functions ``(num_chirps, nfft//2 + 1)``.

    In the complex128 lane this accumulates paths in list order with
    the same elementwise expression as
    ``MultipathChannel.transfer_function`` so each row is bit-identical
    to the serial per-chirp rebuild; responses are evaluated once per
    path instead of once per (chirp, path).  The complex64 lane forms
    each path's phase argument in float64 (delay/phase precision) and
    narrows just before the transcendental, where the work is.
    """
    freqs = rfft_freqs(nfft, sample_rate)
    coeff = -2j * np.pi * freqs
    narrow = np.dtype(cdtype) == np.complex64
    h = np.zeros((delays.shape[0], freqs.size), dtype=cdtype)
    for j, path in enumerate(channel.paths):
        arg = coeff[None, :] * delays[:, j, None] + 1j * phases[:, j, None]
        phase = np.exp(arg.astype(np.complex64)) if narrow else np.exp(arg)
        shaped = path.gain * phase
        if path.response is not None:
            response = np.asarray(path.response(freqs), dtype=complex)[None, :]
            shaped = shaped * (response.astype(np.complex64) if narrow else response)
        h += shaped
    return h


def _overlap_add(out: np.ndarray, echoed: np.ndarray, starts: np.ndarray) -> None:
    """Accumulate each ``echoed`` row into ``out`` at its start sample.

    When rows cannot collide (echo shorter than the chirp hop, the
    overwhelmingly common case) the add is a strided slice assignment;
    otherwise a masked ``np.add.at`` preserves the serial accumulation
    order (chirp-major) for reproducibility.
    """
    n = echoed.shape[1]
    if starts.size == 0:
        return
    hop = int(starts[1] - starts[0]) if starts.size > 1 else n
    contiguous = starts.size > 1 and np.all(np.diff(starts) == hop)
    if contiguous and n <= hop and starts[0] + starts.size * hop <= out.size:
        view = out[starts[0] : starts[0] + starts.size * hop].reshape(starts.size, hop)
        view[:, :n] += echoed
        return
    idx = starts[:, None] + np.arange(n)[None, :]
    valid = idx < out.size
    np.add.at(out, idx[valid], echoed[valid])


def apply_device_planned(
    waveform: np.ndarray, earphone: EarphoneModel, sample_rate: float
) -> np.ndarray:
    """Colour ``waveform`` with the earphone's cached transfer curve.

    Same FFT round trip as the serial ``_apply_device`` but the
    device's transfer function on the ``nfft`` grid is a plan-cache hit
    after the first session per ``(earphone, length, rate)``.
    """
    waveform = as_float_array(waveform)
    nfft = 1 << (max(waveform.size, 2) - 1).bit_length()
    transfer = device_transfer(earphone, nfft, float(sample_rate))
    spectrum = np.fft.rfft(waveform, nfft)
    coloured = np.fft.irfft(spectrum * transfer, nfft)
    return coloured[: waveform.size].astype(waveform.dtype, copy=False)
