"""Batch-first spectral kernels: Welch PSD and stacked amplitude spectra.

The serial :mod:`repro.signal.spectral` implementations loop over
segments (Welch) or are called once per echo (amplitude spectra).  The
kernels here frame with a strided view and run **one** batched
``rfft`` over a ``(num_frames | num_signals, samples)`` stack, with all
shape-dependent state (window, density scale, frequency grid) coming
from the :mod:`repro.kernels.plan` cache.

Numerical contract, per lane (see :mod:`repro.kernels.dtypes`):
float64 input runs the pinned inline expressions and matches the
serial reference implementations bit-for-bit — the golden suite in
``tests/kernels`` enforces a ``<= 1e-10`` max-abs-diff bound across
randomized shapes.  float32 input dispatches through
:mod:`repro.kernels.backends` and matches within the documented
tolerance budget instead.
"""

from __future__ import annotations

import numpy as np

from . import backends
from .dtypes import as_float_array
from .framing import frames_dropping_tail
from .plan import welch_plan

__all__ = ["welch_periodograms", "batched_amplitude_spectrum", "batched_power_rows"]


def welch_periodograms(
    signal: np.ndarray,
    sample_rate: float,
    *,
    segment_length: int,
    overlap: float,
) -> tuple[np.ndarray, np.ndarray]:
    """All Welch segment periodograms of ``signal`` in one batched FFT.

    Returns ``(frequencies, periodograms)`` where ``periodograms`` has
    shape ``(num_segments, segment_length // 2 + 1)``; the caller
    averages over axis 0 (this split keeps the kernel reusable for
    spectrogram-style consumers).  Validation mirrors
    :func:`repro.signal.spectral.welch_psd`.  float32 input stays
    float32 (``frequencies`` are always float64).
    """
    signal = as_float_array(signal)
    if signal.size == 0:
        raise ValueError("welch_psd requires a non-empty signal")
    if not 0.0 <= overlap < 1.0:
        raise ValueError(f"overlap must be in [0, 1), got {overlap}")
    segment_length = int(segment_length)
    if segment_length <= 0:
        raise ValueError(f"segment_length must be positive, got {segment_length}")
    if signal.size < segment_length:
        segment_length = signal.size
    hop = max(1, int(round(segment_length * (1.0 - overlap))))
    if signal.dtype == np.float32:
        plan = welch_plan(segment_length, float(sample_rate), dtype=np.float32)
        frames = frames_dropping_tail(signal, segment_length, hop)
        periodograms = backends.run_op("welch_power", frames, plan.window, plan.scale)
        return plan.frequencies, periodograms
    plan = welch_plan(segment_length, float(sample_rate))
    frames = frames_dropping_tail(signal, segment_length, hop) * plan.window
    periodograms = (np.abs(np.fft.rfft(frames, axis=-1)) ** 2) * plan.scale
    if periodograms.shape[1] > 1:
        periodograms[:, 1:] *= 2.0
        if segment_length % 2 == 0:
            periodograms[:, -1] /= 2.0
    return plan.frequencies, periodograms


def batched_amplitude_spectrum(
    signals: np.ndarray, sample_rate: float, *, nfft: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided amplitude spectra of a ``(batch, samples)`` stack.

    Equivalent to calling
    :func:`repro.signal.spectral.amplitude_spectrum` on every row, but
    with a single 2-D ``rfft``.  Returns ``(frequencies, values)`` with
    ``values`` of shape ``(batch, n_bins)``; float32 input yields
    float32 values.
    """
    signals = np.atleast_2d(as_float_array(signals))
    if signals.shape[-1] == 0:
        raise ValueError("amplitude_spectrum requires non-empty signals")
    n = signals.shape[-1] if nfft is None else int(nfft)
    from .plan import rfft_freqs

    if signals.dtype == np.float32:
        return rfft_freqs(n, float(sample_rate)), backends.run_op(
            "amplitude_rows", signals, n
        )
    values = np.abs(np.fft.rfft(signals, n, axis=-1)) / signals.shape[-1]
    return rfft_freqs(n, float(sample_rate)), values


def batched_power_rows(frames: np.ndarray, nfft: int) -> np.ndarray:
    """Power spectra ``|rfft(frames, nfft)|**2`` of a 2-D frame stack."""
    frames = as_float_array(frames)
    if frames.ndim != 2:
        raise ValueError(f"frames must be 2-D, got shape {frames.shape}")
    if frames.dtype == np.float32:
        return backends.run_op("power_rows", frames, int(nfft))
    return np.abs(np.fft.rfft(frames, int(nfft), axis=-1)) ** 2
