"""Batch-first spectral kernels: Welch PSD and stacked amplitude spectra.

The serial :mod:`repro.signal.spectral` implementations loop over
segments (Welch) or are called once per echo (amplitude spectra).  The
kernels here frame with a strided view and run **one** batched
``rfft`` over a ``(num_frames | num_signals, samples)`` stack, with all
shape-dependent state (window, density scale, frequency grid) coming
from the :mod:`repro.kernels.plan` cache.

Numerical contract: outputs match the serial reference implementations
bit-for-bit — each row of a batched ``rfft`` is the same transform the
serial loop ran, and the windowing/scaling multiplies are performed in
the same order.  The golden suite in ``tests/kernels`` enforces a
``<= 1e-10`` max-abs-diff bound across randomized shapes.
"""

from __future__ import annotations

import numpy as np

from .framing import frames_dropping_tail
from .plan import welch_plan

__all__ = ["welch_periodograms", "batched_amplitude_spectrum", "batched_power_rows"]


def welch_periodograms(
    signal: np.ndarray,
    sample_rate: float,
    *,
    segment_length: int,
    overlap: float,
) -> tuple[np.ndarray, np.ndarray]:
    """All Welch segment periodograms of ``signal`` in one batched FFT.

    Returns ``(frequencies, periodograms)`` where ``periodograms`` has
    shape ``(num_segments, segment_length // 2 + 1)``; the caller
    averages over axis 0 (this split keeps the kernel reusable for
    spectrogram-style consumers).  Validation mirrors
    :func:`repro.signal.spectral.welch_psd`.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.size == 0:
        raise ValueError("welch_psd requires a non-empty signal")
    if not 0.0 <= overlap < 1.0:
        raise ValueError(f"overlap must be in [0, 1), got {overlap}")
    segment_length = int(segment_length)
    if segment_length <= 0:
        raise ValueError(f"segment_length must be positive, got {segment_length}")
    if signal.size < segment_length:
        segment_length = signal.size
    plan = welch_plan(segment_length, float(sample_rate))
    hop = max(1, int(round(segment_length * (1.0 - overlap))))
    frames = frames_dropping_tail(signal, segment_length, hop) * plan.window
    periodograms = (np.abs(np.fft.rfft(frames, axis=-1)) ** 2) * plan.scale
    if periodograms.shape[1] > 1:
        periodograms[:, 1:] *= 2.0
        if segment_length % 2 == 0:
            periodograms[:, -1] /= 2.0
    return plan.frequencies, periodograms


def batched_amplitude_spectrum(
    signals: np.ndarray, sample_rate: float, *, nfft: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided amplitude spectra of a ``(batch, samples)`` stack.

    Equivalent to calling
    :func:`repro.signal.spectral.amplitude_spectrum` on every row, but
    with a single 2-D ``rfft``.  Returns ``(frequencies, values)`` with
    ``values`` of shape ``(batch, n_bins)``.
    """
    signals = np.atleast_2d(np.asarray(signals, dtype=float))
    if signals.shape[-1] == 0:
        raise ValueError("amplitude_spectrum requires non-empty signals")
    n = signals.shape[-1] if nfft is None else int(nfft)
    from .plan import rfft_freqs

    values = np.abs(np.fft.rfft(signals, n, axis=-1)) / signals.shape[-1]
    return rfft_freqs(n, float(sample_rate)), values


def batched_power_rows(frames: np.ndarray, nfft: int) -> np.ndarray:
    """Power spectra ``|rfft(frames, nfft)|**2`` of a 2-D frame stack."""
    frames = np.asarray(frames, dtype=float)
    if frames.ndim != 2:
        raise ValueError(f"frames must be 2-D, got shape {frames.shape}")
    return np.abs(np.fft.rfft(frames, int(nfft), axis=-1)) ** 2
