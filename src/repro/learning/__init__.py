"""Learning substrate: clustering, assignment, metrics, validation.

All components are implemented from scratch (SciPy serves only as a
test oracle): k-means with k-means++ restarts, the Hungarian algorithm
for cluster-to-state mapping, outlier strategies, classification
metrics including FAR/FRR, and group-aware cross-validation splitters.
"""

from .crossval import GroupFold, leave_one_group_out, train_fraction_split
from .kmeans import KMeans, euclidean_distances, kmeans_plus_plus_init
from .mapping import contingency_matrix, hungarian, map_clusters_to_labels
from .metrics import (
    ClassificationReport,
    accuracy,
    classification_report,
    confusion_matrix,
    false_acceptance_rate,
    false_rejection_rate,
    normalize_confusion,
)
from .outliers import distance_outliers, random_sample_fit, remove_outliers_multiloop
from .roc import RocCurve, auc, equal_error_rate, roc_curve
from .scaling import StandardScaler

__all__ = [
    "GroupFold",
    "leave_one_group_out",
    "train_fraction_split",
    "KMeans",
    "euclidean_distances",
    "kmeans_plus_plus_init",
    "contingency_matrix",
    "hungarian",
    "map_clusters_to_labels",
    "ClassificationReport",
    "accuracy",
    "classification_report",
    "confusion_matrix",
    "false_acceptance_rate",
    "false_rejection_rate",
    "normalize_confusion",
    "RocCurve",
    "auc",
    "equal_error_rate",
    "roc_curve",
    "distance_outliers",
    "random_sample_fit",
    "remove_outliers_multiloop",
    "StandardScaler",
]
