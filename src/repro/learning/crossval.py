"""Cross-validation splitters (paper Sec. VI-A).

The paper evaluates with leave-one-out cross-validation at the
*participant* level: each fold trains on 111 children and tests on the
held-out one, so no child's recordings ever appear on both sides.
A stratified train-fraction splitter supports the training-size study
(Fig. 15b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["leave_one_group_out", "train_fraction_split", "GroupFold"]


@dataclass(frozen=True)
class GroupFold:
    """One cross-validation fold.

    Attributes
    ----------
    group:
        Identifier of the held-out group (participant id).
    train_indices / test_indices:
        Integer indices into the sample arrays.
    """

    group: str
    train_indices: np.ndarray
    test_indices: np.ndarray


def leave_one_group_out(groups: Sequence[str]) -> Iterator[GroupFold]:
    """Yield one fold per distinct group, holding that group out.

    ``groups`` maps each sample to its participant; folds are yielded
    in sorted group order for determinism.
    """
    groups_arr = np.asarray(groups)
    if groups_arr.size == 0:
        raise ConfigurationError("leave_one_group_out needs at least one sample")
    unique = sorted(set(groups_arr.tolist()))
    if len(unique) < 2:
        raise ConfigurationError(
            f"need at least 2 distinct groups, got {len(unique)}"
        )
    all_idx = np.arange(groups_arr.size)
    for group in unique:
        mask = groups_arr == group
        yield GroupFold(
            group=str(group),
            train_indices=all_idx[~mask],
            test_indices=all_idx[mask],
        )


def train_fraction_split(
    groups: Sequence[str],
    fraction: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Split samples by holding a random *group* subset for training.

    Used for the training-size study (Fig. 15b): ``fraction`` of the
    participants (at least one) form the training set; everyone else is
    tested.  Returns ``(train_indices, test_indices)``.
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
    groups_arr = np.asarray(groups)
    unique = sorted(set(groups_arr.tolist()))
    if len(unique) < 2:
        raise ConfigurationError("need at least 2 distinct groups")
    num_train = max(1, int(round(len(unique) * fraction)))
    num_train = min(num_train, len(unique) - 1) if fraction < 1.0 else len(unique)
    chosen = set(rng.choice(unique, size=num_train, replace=False).tolist())
    all_idx = np.arange(groups_arr.size)
    train_mask = np.array([g in chosen for g in groups_arr])
    if fraction >= 1.0:
        # Degenerate "all data" split used by resubstitution studies.
        return all_idx, all_idx
    return all_idx[train_mask], all_idx[~train_mask]
