"""K-means clustering from scratch (paper Sec. IV-C3).

EarSonar groups recordings into the four effusion states with k-means
(Eq. (11)-(12)): Euclidean assignment to the nearest of ``k`` centres,
Lloyd updates, iterated to convergence.  This implementation adds the
standard robustness machinery — k-means++ seeding, multiple restarts,
empty-cluster repair — while staying dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, ModelError, NotFittedError

__all__ = ["KMeans", "kmeans_plus_plus_init", "euclidean_distances"]


def euclidean_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances, shape ``(n_points, n_centers)``.

    Implements paper Eq. (11) for all pairs at once via the quadratic
    expansion; clipped at zero to absorb floating-point negatives.
    """
    points = np.asarray(points, dtype=float)
    centers = np.asarray(centers, dtype=float)
    sq_p = np.sum(points**2, axis=1)[:, None]
    sq_c = np.sum(centers**2, axis=1)[None, :]
    d2 = np.maximum(sq_p + sq_c - 2.0 * points @ centers.T, 0.0)
    return np.sqrt(d2)


def kmeans_plus_plus_init(
    data: np.ndarray, num_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centres by D^2 sampling."""
    n = data.shape[0]
    centers = np.empty((num_clusters, data.shape[1]))
    first = int(rng.integers(0, n))
    centers[0] = data[first]
    closest_sq = np.sum((data - centers[0]) ** 2, axis=1)
    for k in range(1, num_clusters):
        total = closest_sq.sum()
        if total <= 0.0:
            # All points coincide with chosen centres; fall back to random.
            idx = int(rng.integers(0, n))
        else:
            probs = closest_sq / total
            idx = int(rng.choice(n, p=probs))
        centers[k] = data[idx]
        dist_sq = np.sum((data - centers[k]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
    return centers


@dataclass
class KMeans:
    """Lloyd's k-means with k-means++ restarts.

    Attributes
    ----------
    num_clusters:
        ``k``; the paper uses 4 (Clear/Serous/Mucoid/Purulent).
    num_restarts:
        Independent initialisations; the fit with the lowest inertia
        (paper Eq. (12) objective) wins.
    max_iterations:
        Lloyd iteration cap per restart.
    tolerance:
        Convergence threshold on the total centre movement.
    seed:
        Seed for the internal random generator.

    After :meth:`fit`: ``cluster_centers_``, ``labels_``, ``inertia_``,
    ``n_iter_`` are populated.
    """

    num_clusters: int = 4
    num_restarts: int = 10
    max_iterations: int = 300
    tolerance: float = 1e-6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise ConfigurationError(f"num_clusters must be >= 1, got {self.num_clusters}")
        if self.num_restarts < 1:
            raise ConfigurationError(f"num_restarts must be >= 1, got {self.num_restarts}")
        if self.max_iterations < 1:
            raise ConfigurationError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.tolerance < 0:
            raise ConfigurationError(f"tolerance must be >= 0, got {self.tolerance}")
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None
        self.n_iter_: int | None = None

    # ------------------------------------------------------------------

    def fit(self, data: np.ndarray) -> "KMeans":
        """Cluster ``data`` (shape ``(n_samples, n_features)``)."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ModelError(f"data must be 2-D, got shape {data.shape}")
        n = data.shape[0]
        if n < self.num_clusters:
            raise ModelError(
                f"cannot form {self.num_clusters} clusters from {n} samples"
            )
        rng = np.random.default_rng(self.seed)
        best: tuple[float, np.ndarray, np.ndarray, int] | None = None
        for _ in range(self.num_restarts):
            centers, labels, inertia, iters = self._lloyd(data, rng)
            if best is None or inertia < best[0]:
                best = (inertia, centers, labels, iters)
        assert best is not None
        self.inertia_, self.cluster_centers_, self.labels_, self.n_iter_ = best
        return self

    def _lloyd(
        self, data: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        centers = kmeans_plus_plus_init(data, self.num_clusters, rng)
        labels = np.zeros(data.shape[0], dtype=int)
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            distances = euclidean_distances(data, centers)
            labels = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            for k in range(self.num_clusters):
                members = data[labels == k]
                if members.size == 0:
                    # Empty-cluster repair: re-seed at the point farthest
                    # from its assigned centre.
                    assigned = distances[np.arange(data.shape[0]), labels]
                    new_centers[k] = data[int(np.argmax(assigned))]
                else:
                    new_centers[k] = members.mean(axis=0)
            movement = float(np.sum(np.sqrt(np.sum((new_centers - centers) ** 2, axis=1))))
            centers = new_centers
            if movement <= self.tolerance:
                break
        distances = euclidean_distances(data, centers)
        labels = np.argmin(distances, axis=1)
        inertia = float(np.sum(np.min(distances, axis=1) ** 2))
        return centers, labels, inertia, iteration

    # ------------------------------------------------------------------

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Assign each sample to its nearest learned centre."""
        if self.cluster_centers_ is None:
            raise NotFittedError("KMeans.predict called before fit")
        data = np.asarray(data, dtype=float)
        if data.ndim == 1:
            data = data[None, :]
        return np.argmin(euclidean_distances(data, self.cluster_centers_), axis=1)

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Distances of each sample to every learned centre."""
        if self.cluster_centers_ is None:
            raise NotFittedError("KMeans.transform called before fit")
        return euclidean_distances(np.asarray(data, dtype=float), self.cluster_centers_)

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its cluster labels."""
        self.fit(data)
        assert self.labels_ is not None
        return self.labels_
