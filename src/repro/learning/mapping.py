"""Cluster-to-label assignment via the Hungarian algorithm.

K-means returns anonymous cluster ids; evaluation against clinical
ground truth needs the bijection between clusters and effusion states
that maximises agreement.  That is a linear assignment problem, solved
here with a from-scratch O(n^3) Hungarian (Kuhn-Munkres) implementation
on the negated contingency matrix.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError

__all__ = ["hungarian", "contingency_matrix", "map_clusters_to_labels"]


def hungarian(cost: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Minimum-cost assignment of a square (or rectangular) cost matrix.

    Returns ``(row_indices, col_indices)`` such that
    ``cost[row_indices, col_indices].sum()`` is minimal, matching the
    interface of ``scipy.optimize.linear_sum_assignment`` (which the
    test suite uses as an oracle).

    Implementation: the potentials/shortest-augmenting-path variant of
    Kuhn-Munkres (Jonker-style), padding rectangular inputs to square.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ModelError(f"cost must be 2-D, got shape {cost.shape}")
    n_rows, n_cols = cost.shape
    transposed = n_rows > n_cols
    if transposed:
        cost = cost.T
        n_rows, n_cols = n_cols, n_rows
    n = n_cols
    # Pad rows so the matrix is square; padded rows cost 0 everywhere.
    padded = np.zeros((n, n))
    padded[:n_rows, :] = cost

    INF = float("inf")
    # Potentials u (rows), v (cols); way[j] = augmenting-path parent.
    u = np.zeros(n + 1)
    v = np.zeros(n + 1)
    p = np.zeros(n + 1, dtype=int)  # p[j] = row matched to column j (1-based rows)
    way = np.zeros(n + 1, dtype=int)
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = np.full(n + 1, INF)
        used = np.zeros(n + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = INF
            j1 = 0
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = padded[i0 - 1, j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0 != 0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
    assignment = np.zeros(n, dtype=int)  # row -> col
    for j in range(1, n + 1):
        if p[j] > 0:
            assignment[p[j] - 1] = j - 1
    rows = np.arange(n_rows)
    cols = assignment[:n_rows]
    if transposed:
        order = np.argsort(cols)
        return cols[order], rows[order]
    return rows, cols


def contingency_matrix(
    cluster_ids: np.ndarray, labels: np.ndarray, num_clusters: int, num_labels: int
) -> np.ndarray:
    """Count matrix ``C[c, l]``: samples in cluster ``c`` with label ``l``."""
    cluster_ids = np.asarray(cluster_ids, dtype=int)
    labels = np.asarray(labels, dtype=int)
    if cluster_ids.shape != labels.shape:
        raise ModelError(
            f"cluster_ids shape {cluster_ids.shape} != labels shape {labels.shape}"
        )
    matrix = np.zeros((num_clusters, num_labels), dtype=int)
    for c, l in zip(cluster_ids, labels):
        if not 0 <= c < num_clusters:
            raise ModelError(f"cluster id {c} outside [0, {num_clusters})")
        if not 0 <= l < num_labels:
            raise ModelError(f"label {l} outside [0, {num_labels})")
        matrix[c, l] += 1
    return matrix


def map_clusters_to_labels(
    cluster_ids: np.ndarray, labels: np.ndarray, num_clusters: int, num_labels: int
) -> dict[int, int]:
    """Best cluster -> label mapping by total agreement.

    With as many clusters as labels the mapping is the optimal
    bijection (Hungarian on the negated contingency matrix), so every
    label receives a cluster.  With *more* clusters than labels — the
    paper's in-group clustering, where each effusion state owns several
    sub-clusters — each cluster maps to its majority training label.
    """
    matrix = contingency_matrix(cluster_ids, labels, num_clusters, num_labels)
    if num_clusters <= num_labels:
        rows, cols = hungarian(-matrix.astype(float))
        mapping = {int(r): int(c) for r, c in zip(rows, cols)}
        for c in range(num_clusters):
            if c not in mapping:
                mapping[c] = int(np.argmax(matrix[c])) if matrix[c].sum() else 0
        return mapping
    return {
        c: (int(np.argmax(matrix[c])) if matrix[c].sum() else 0)
        for c in range(num_clusters)
    }
