"""Evaluation metrics (paper Sec. VI-A).

The paper scores EarSonar with per-class precision, recall, F1, a
row-normalised confusion matrix (Fig. 13d), and — for the robustness
studies — false acceptance and false rejection rates (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError

__all__ = [
    "confusion_matrix",
    "normalize_confusion",
    "ClassificationReport",
    "classification_report",
    "accuracy",
    "false_acceptance_rate",
    "false_rejection_rate",
]


def confusion_matrix(
    true_labels: np.ndarray, predicted_labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Count matrix ``M[t, p]``: samples of true class ``t`` predicted ``p``."""
    true_labels = np.asarray(true_labels, dtype=int)
    predicted_labels = np.asarray(predicted_labels, dtype=int)
    if true_labels.shape != predicted_labels.shape:
        raise ModelError(
            f"true shape {true_labels.shape} != predicted shape {predicted_labels.shape}"
        )
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    for t, p in zip(true_labels, predicted_labels):
        if not (0 <= t < num_classes and 0 <= p < num_classes):
            raise ModelError(f"label pair ({t}, {p}) outside [0, {num_classes})")
        matrix[t, p] += 1
    return matrix


def normalize_confusion(matrix: np.ndarray) -> np.ndarray:
    """Row-normalise a confusion matrix (each true class sums to 1)."""
    matrix = np.asarray(matrix, dtype=float)
    sums = matrix.sum(axis=1, keepdims=True)
    sums[sums == 0.0] = 1.0
    return matrix / sums


@dataclass(frozen=True)
class ClassificationReport:
    """Per-class and aggregate scores.

    Attributes
    ----------
    precision / recall / f1:
        Arrays indexed by class id.
    support:
        True-sample count per class.
    confusion:
        Raw count confusion matrix.
    """

    precision: np.ndarray
    recall: np.ndarray
    f1: np.ndarray
    support: np.ndarray
    confusion: np.ndarray

    @property
    def accuracy(self) -> float:
        """Overall fraction of correct predictions."""
        total = self.confusion.sum()
        if total == 0:
            return 0.0
        return float(np.trace(self.confusion) / total)

    @property
    def macro_precision(self) -> float:
        """Unweighted mean of per-class precision."""
        return float(np.mean(self.precision))

    @property
    def macro_recall(self) -> float:
        """Unweighted mean of per-class recall."""
        return float(np.mean(self.recall))

    @property
    def macro_f1(self) -> float:
        """Unweighted mean of per-class F1."""
        return float(np.mean(self.f1))

    @property
    def median_precision(self) -> float:
        """Median per-class precision (the paper reports medians)."""
        return float(np.median(self.precision))

    @property
    def median_recall(self) -> float:
        """Median per-class recall."""
        return float(np.median(self.recall))

    @property
    def median_f1(self) -> float:
        """Median per-class F1."""
        return float(np.median(self.f1))

    def normalized_confusion(self) -> np.ndarray:
        """Row-normalised confusion matrix (Fig. 13d format)."""
        return normalize_confusion(self.confusion)


def classification_report(
    true_labels: np.ndarray, predicted_labels: np.ndarray, num_classes: int
) -> ClassificationReport:
    """Compute precision/recall/F1 per class plus the confusion matrix."""
    matrix = confusion_matrix(true_labels, predicted_labels, num_classes)
    tp = np.diag(matrix).astype(float)
    predicted_totals = matrix.sum(axis=0).astype(float)
    true_totals = matrix.sum(axis=1).astype(float)
    precision = np.divide(
        tp, predicted_totals, out=np.zeros(num_classes), where=predicted_totals > 0
    )
    recall = np.divide(tp, true_totals, out=np.zeros(num_classes), where=true_totals > 0)
    denom = precision + recall
    f1 = np.divide(2.0 * precision * recall, denom, out=np.zeros(num_classes), where=denom > 0)
    return ClassificationReport(precision, recall, f1, true_totals.astype(int), matrix)


def accuracy(true_labels: np.ndarray, predicted_labels: np.ndarray) -> float:
    """Fraction of matching label pairs."""
    true_labels = np.asarray(true_labels)
    predicted_labels = np.asarray(predicted_labels)
    if true_labels.shape != predicted_labels.shape:
        raise ModelError("label arrays must have identical shape")
    if true_labels.size == 0:
        raise ModelError("accuracy of zero samples is undefined")
    return float(np.mean(true_labels == predicted_labels))


def false_acceptance_rate(
    true_labels: np.ndarray, predicted_labels: np.ndarray, target_class: int, num_classes: int
) -> float:
    """FAR of ``target_class``: fraction of other-class samples accepted as it.

    Matches Fig. 14's per-state FAR panels (reported in percent there).
    """
    matrix = confusion_matrix(true_labels, predicted_labels, num_classes)
    others = [t for t in range(num_classes) if t != target_class]
    falsely_accepted = sum(matrix[t, target_class] for t in others)
    other_total = sum(matrix[t].sum() for t in others)
    if other_total == 0:
        return 0.0
    return float(falsely_accepted / other_total)


def false_rejection_rate(
    true_labels: np.ndarray, predicted_labels: np.ndarray, target_class: int, num_classes: int
) -> float:
    """FRR of ``target_class``: fraction of its samples classified as others."""
    matrix = confusion_matrix(true_labels, predicted_labels, num_classes)
    class_total = matrix[target_class].sum()
    if class_total == 0:
        return 0.0
    rejected = class_total - matrix[target_class, target_class]
    return float(rejected / class_total)
