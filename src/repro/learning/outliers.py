"""Outlier handling for k-means (paper Sec. IV-C4).

The paper applies two strategies around clustering:

1. **distance rule** — points much farther from their cluster centre
   than the bulk are removed, with a multi-loop confirmation so a point
   is only dropped if it is an outlier in several independent
   clustering runs;
2. **random-sample consensus** — fit the clustering on a random subset
   (outliers are unlikely to be drawn), then extend the model to the
   full data.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, ModelError
from .kmeans import KMeans, euclidean_distances

__all__ = ["distance_outliers", "remove_outliers_multiloop", "random_sample_fit"]


def distance_outliers(
    data: np.ndarray,
    centers: np.ndarray,
    labels: np.ndarray,
    *,
    threshold_scale: float = 3.0,
) -> np.ndarray:
    """Boolean mask of points abnormally far from their own centre.

    A point is flagged when its distance to its assigned centre
    exceeds ``median + threshold_scale * MAD`` of the distances within
    the same cluster (robust statistics, so the outliers themselves do
    not inflate the cut-off).  Additionally, members of abnormally
    small clusters are flagged wholesale: an extreme outlier typically
    captures a centre for itself (making its own distance zero), which
    is exactly the k-means failure mode the paper's Sec. IV-C4 warns
    about.
    """
    data = np.asarray(data, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if threshold_scale <= 0:
        raise ConfigurationError(f"threshold_scale must be positive, got {threshold_scale}")
    distances = euclidean_distances(data, centers)[np.arange(data.shape[0]), labels]
    mask = np.zeros(data.shape[0], dtype=bool)
    min_cluster = max(2, int(0.02 * data.shape[0]))
    for k in range(centers.shape[0]):
        members = labels == k
        if not np.any(members):
            continue
        if members.sum() < min_cluster:
            mask[members] = True
            continue
        d = distances[members]
        median = np.median(d)
        mad = np.median(np.abs(d - median))
        cutoff = median + threshold_scale * max(mad, 1e-12)
        mask[members] = d > cutoff
    return mask


def remove_outliers_multiloop(
    data: np.ndarray,
    *,
    num_clusters: int = 4,
    num_loops: int = 3,
    threshold_scale: float = 3.0,
    min_votes: int | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Multi-loop outlier confirmation (the paper's first strategy).

    Runs ``num_loops`` independent k-means fits; a point is declared an
    outlier only if flagged in at least ``min_votes`` of them (default:
    majority).  Returns a boolean *keep* mask.
    """
    data = np.asarray(data, dtype=float)
    if num_loops < 1:
        raise ConfigurationError(f"num_loops must be >= 1, got {num_loops}")
    if data.shape[0] <= num_clusters:
        return np.ones(data.shape[0], dtype=bool)
    votes = np.zeros(data.shape[0], dtype=int)
    for loop in range(num_loops):
        model = KMeans(num_clusters=num_clusters, num_restarts=3, seed=seed + loop)
        labels = model.fit_predict(data)
        assert model.cluster_centers_ is not None
        votes += distance_outliers(
            data, model.cluster_centers_, labels, threshold_scale=threshold_scale
        )
    needed = (num_loops // 2 + 1) if min_votes is None else min_votes
    return votes < needed


def random_sample_fit(
    data: np.ndarray,
    *,
    num_clusters: int = 4,
    sample_fraction: float = 0.6,
    seed: int = 0,
) -> tuple[KMeans, np.ndarray]:
    """Fit k-means on a random subsample, then label the full data.

    The paper's second strategy: rare outliers are unlikely to enter
    the sample, so the centres are clean; the model then extends to the
    remaining points.  Returns ``(fitted model, full-data labels)``.
    """
    data = np.asarray(data, dtype=float)
    if not 0.0 < sample_fraction <= 1.0:
        raise ConfigurationError(
            f"sample_fraction must be in (0, 1], got {sample_fraction}"
        )
    n = data.shape[0]
    sample_size = max(num_clusters, int(round(n * sample_fraction)))
    if sample_size > n:
        raise ModelError(f"sample_size {sample_size} exceeds data size {n}")
    rng = np.random.default_rng(seed)
    idx = rng.choice(n, size=sample_size, replace=False)
    model = KMeans(num_clusters=num_clusters, seed=seed)
    model.fit(data[idx])
    labels = model.predict(data)
    return model, labels
