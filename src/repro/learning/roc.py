"""ROC analysis for the binary screening task, from scratch.

The paper's clinical motivation is a *screening* decision — fluid or no
fluid — for which threshold-free metrics are standard.  These helpers
compute the ROC curve, the area under it, and the equal-error-rate
operating point from scores and binary labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError

__all__ = ["RocCurve", "roc_curve", "auc", "equal_error_rate"]


@dataclass(frozen=True)
class RocCurve:
    """An ROC curve: parallel FPR/TPR arrays and their thresholds.

    Points are ordered by decreasing threshold, starting at (0, 0) and
    ending at (1, 1).
    """

    false_positive_rate: np.ndarray
    true_positive_rate: np.ndarray
    thresholds: np.ndarray

    @property
    def auc(self) -> float:
        """Area under the curve by trapezoidal integration."""
        x = self.false_positive_rate
        y = self.true_positive_rate
        return float(np.sum((x[1:] - x[:-1]) * (y[1:] + y[:-1]) / 2.0))


def roc_curve(labels: np.ndarray, scores: np.ndarray) -> RocCurve:
    """ROC curve of ``scores`` against binary ``labels`` (1 = positive).

    Ties in score are collapsed into single points, matching the usual
    definition.
    """
    labels = np.asarray(labels, dtype=int)
    scores = np.asarray(scores, dtype=float)
    if labels.shape != scores.shape:
        raise ModelError(f"labels shape {labels.shape} != scores shape {scores.shape}")
    if labels.size == 0:
        raise ModelError("roc_curve requires at least one sample")
    if not np.all(np.isin(labels, (0, 1))):
        raise ModelError("labels must be binary 0/1")
    num_pos = int(labels.sum())
    num_neg = labels.size - num_pos
    if num_pos == 0 or num_neg == 0:
        raise ModelError("roc_curve requires both classes present")
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    sorted_scores = scores[order]
    tp = np.cumsum(sorted_labels)
    fp = np.cumsum(1 - sorted_labels)
    # Keep only the last index of each distinct score (tie collapsing).
    distinct = np.nonzero(np.diff(sorted_scores, append=-np.inf))[0]
    tpr = np.concatenate([[0.0], tp[distinct] / num_pos])
    fpr = np.concatenate([[0.0], fp[distinct] / num_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[distinct]])
    return RocCurve(fpr, tpr, thresholds)


def auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve (probability a positive outranks a negative)."""
    return roc_curve(labels, scores).auc


def equal_error_rate(labels: np.ndarray, scores: np.ndarray) -> tuple[float, float]:
    """Equal-error-rate operating point.

    Returns ``(eer, threshold)`` where FPR ~= FNR; the crossing is
    located by linear interpolation along the curve.
    """
    curve = roc_curve(labels, scores)
    fnr = 1.0 - curve.true_positive_rate
    diffs = curve.false_positive_rate - fnr
    idx = int(np.argmin(np.abs(diffs)))
    # Interpolate between the two points bracketing the sign change.
    if 0 < idx < diffs.size and diffs[idx] != 0.0:
        lo = idx - 1 if diffs[idx - 1] * diffs[idx] < 0 else idx
        hi = min(lo + 1, diffs.size - 1)
        if diffs[hi] != diffs[lo]:
            w = -diffs[lo] / (diffs[hi] - diffs[lo])
        else:
            w = 0.0
        eer = float(
            (1 - w) * curve.false_positive_rate[lo] + w * curve.false_positive_rate[hi]
        )
        threshold = float((1 - w) * curve.thresholds[lo] + w * curve.thresholds[hi])
        return eer, threshold
    return float(curve.false_positive_rate[idx]), float(curve.thresholds[idx])
