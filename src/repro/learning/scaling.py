"""Feature standardisation.

The 105-element vector mixes spectrum bins (order 1), statistics
(various scales) and MFCCs (log-domain); z-scoring before distance-based
clustering keeps any one family from dominating the Euclidean metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError, NotFittedError

__all__ = ["StandardScaler"]


@dataclass
class StandardScaler:
    """Per-feature z-score normalisation with constant-feature guard."""

    def __post_init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and standard deviation from ``data``."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ModelError(f"data must be 2-D, got shape {data.shape}")
        if data.shape[0] < 1:
            raise ModelError("cannot fit a scaler on zero samples")
        self.mean_ = data.mean(axis=0)
        scale = data.std(axis=0)
        # Constant features scale to 1 so they map to exactly zero.
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Z-score ``data`` with the learned statistics."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.transform called before fit")
        return (np.asarray(data, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its z-scored version."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Map z-scored values back to the original feature space."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.inverse_transform called before fit")
        return np.asarray(data, dtype=float) * self.scale_ + self.mean_
