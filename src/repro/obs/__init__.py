"""``repro.obs`` — tracing, structured telemetry, and run provenance.

The observability layer of the reproduction, threaded through every
other layer but owned here:

- :mod:`~repro.obs.tracer` — hierarchical spans; one trace per
  recording with child spans per pipeline stage, plus runtime spans
  (cache lookups, chunk waits, quality gates, retry attempts).  The
  ambient default is a :class:`NullTracer`, making instrumentation
  zero-cost and bit-identical when disabled.
- :mod:`~repro.obs.events` — append-only JSONL structured event log
  with severity levels.
- :mod:`~repro.obs.manifest` — :class:`RunManifest` provenance
  (config fingerprint, seed, versions, git SHA, hostname, argv).
- :mod:`~repro.obs.names` — the canonical span/event/metric name
  registry (enforced by lint rule QA007).
- :mod:`~repro.obs.export` — run records, Chrome trace-event files
  (Perfetto flamegraphs), Prometheus text exposition.
- :mod:`~repro.obs.summary` — per-stage percentiles, critical paths,
  and run-to-run diffs.
- :mod:`~repro.obs.health` — fleet-health aggregation: mergeable
  sliding windows, bounded-label rollups, and SLO burn-rate alerting
  over the injected clock (``python -m repro.obs health`` renders the
  dashboard).

Quick use::

    from repro.obs import Tracer, EventLog, use_tracer, use_event_log

    tracer, log = Tracer(), EventLog()
    with use_tracer(tracer), use_event_log(log):
        result = executor.run(recordings)   # spans + events collected

    from repro.obs.export import write_run_record
    write_run_record("runs/today", spans=tracer.traces,
                     metrics=executor.metrics, events=log)

then ``python -m repro.obs summarize runs/today/trace.json``.
"""

from . import names
from .events import (
    NULL_EVENT_LOG,
    EventLevel,
    EventLog,
    LogEvent,
    NullEventLog,
    current_event_log,
    use_event_log,
)
from .export import RunRecord, chrome_trace, load_run_record, prometheus_text, write_run_record
from .health import (
    NULL_HEALTH,
    HealthConfig,
    HealthContext,
    HealthMonitor,
    NullHealthMonitor,
    SloConfig,
    activate_health_from_context,
    current_health,
    use_health,
)
from .manifest import RunManifest, capture_manifest, git_revision
from .summary import StageStats, critical_path, diff_stages, slowest_recordings, stage_stats
from .tracer import (
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    activate_from_context,
    current_tracer,
    use_tracer,
)

__all__ = [
    "names",
    "Span",
    "NullSpan",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceContext",
    "current_tracer",
    "use_tracer",
    "activate_from_context",
    "EventLevel",
    "LogEvent",
    "EventLog",
    "NullEventLog",
    "NULL_EVENT_LOG",
    "current_event_log",
    "use_event_log",
    "RunManifest",
    "capture_manifest",
    "git_revision",
    "RunRecord",
    "chrome_trace",
    "prometheus_text",
    "write_run_record",
    "load_run_record",
    "StageStats",
    "stage_stats",
    "slowest_recordings",
    "critical_path",
    "diff_stages",
    "HealthMonitor",
    "NullHealthMonitor",
    "NULL_HEALTH",
    "HealthConfig",
    "HealthContext",
    "SloConfig",
    "current_health",
    "use_health",
    "activate_health_from_context",
]
