"""Trace-inspection CLI: ``python -m repro.obs <command> <trace.json>``.

Commands operate on the run-record JSON written by the runtime,
experiments, and bench CLIs (``--trace-dir``)::

    python -m repro.obs summarize runs/trace.json            # p50/p95/p99
    python -m repro.obs summarize runs/trace.json --top 5    # slowest recs
    python -m repro.obs tree runs/trace.json                 # span trees
    python -m repro.obs tree runs/trace.json --recording 3
    python -m repro.obs diff base/trace.json new/trace.json  # regressions
    python -m repro.obs diff a.json b.json --fail-above 5    # CI gate

``tree`` marks the critical path (the longest-child chain) with ``*``;
``diff`` exits 1 when any stage's p50 regressed beyond
``--fail-above`` percent, so it can gate CI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .export import load_run_record
from .summary import (
    diff_stages,
    render_diff,
    render_stage_table,
    render_tree,
    slowest_recordings,
    stage_stats,
)

__all__ = ["main"]


def _cmd_summarize(args: argparse.Namespace) -> int:
    record = load_run_record(args.trace)
    if record.manifest is not None:
        m = record.manifest
        print(
            f"run: {m.created_at}  config={m.config_fingerprint[:12] or '-'}  "
            f"seed={m.seed}  git={(m.git_sha or 'unknown')[:12]}  host={m.hostname}"
        )
    print(f"spans: {sum(1 for root in record.spans for _ in root.walk())} "
          f"in {len(record.spans)} traces "
          f"({len(record.recording_roots())} recordings)\n")
    print(render_stage_table(stage_stats(record.spans)))
    slowest = slowest_recordings(record.spans, top=args.top)
    if slowest:
        print(f"\nslowest {len(slowest)} recordings:")
        header = (
            f"{'idx':>5} {'participant':<14}{'day':>6}{'ms':>10}"
            f"  {'outcome':<12}{'quality':<8}"
        )
        print(header)
        print("-" * len(header))
        for row in slowest:
            print(
                f"{str(row['index']):>5} {row['participant']:<14}"
                f"{str(row['day']):>6}{row['duration_ms']:>10.3f}"
                f"  {row['outcome']:<12}{row['quality_verdict']:<8}"
            )
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    record = load_run_record(args.trace)
    roots = record.recording_roots() if args.recording is not None else record.spans
    if args.recording is not None:
        roots = [r for r in roots if r.attrs.get("index") == args.recording]
        if not roots:
            print(f"no recording trace with index {args.recording}", file=sys.stderr)
            return 2
    shown = 0
    for root in roots:
        if args.limit is not None and shown >= args.limit:
            remaining = len(roots) - shown
            print(f"... {remaining} more trace(s); raise --limit to see them")
            break
        print(render_tree(root))
        print()
        shown += 1
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    before = stage_stats(load_run_record(args.before).spans)
    after = stage_stats(load_run_record(args.after).spans)
    rows = diff_stages(before, after)
    print(render_diff(rows))
    if args.fail_above is not None:
        worst = [
            row
            for row in rows
            if row["delta_pct"] is not None and row["delta_pct"] > args.fail_above
        ]
        if worst:
            print(
                f"\nFAIL: {len(worst)} stage(s) regressed beyond "
                f"{args.fail_above:g}% (worst: {worst[0]['stage']} "
                f"{worst[0]['delta_pct']:+.1f}%)"
            )
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect run-record trace files (summaries, trees, diffs).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="per-stage percentiles and slowest recordings")
    p_sum.add_argument("trace", type=Path, help="run-record trace.json")
    p_sum.add_argument("--top", type=int, default=10, help="slowest recordings to list")
    p_sum.set_defaults(func=_cmd_summarize)

    p_tree = sub.add_parser("tree", help="render span trees with the critical path marked")
    p_tree.add_argument("trace", type=Path, help="run-record trace.json")
    p_tree.add_argument(
        "--recording", type=int, default=None, help="only the trace of this batch index"
    )
    p_tree.add_argument(
        "--limit", type=int, default=8, help="max trees to print (default 8)"
    )
    p_tree.set_defaults(func=_cmd_tree)

    p_diff = sub.add_parser("diff", help="per-stage p50 regressions between two runs")
    p_diff.add_argument("before", type=Path, help="baseline trace.json")
    p_diff.add_argument("after", type=Path, help="candidate trace.json")
    p_diff.add_argument(
        "--fail-above",
        type=float,
        default=None,
        help="exit 1 if any stage p50 regresses beyond this percent",
    )
    p_diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())
