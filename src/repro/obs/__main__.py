"""Trace-inspection CLI: ``python -m repro.obs <command> <trace.json>``.

Commands operate on the run-record JSON written by the runtime,
experiments, and bench CLIs (``--trace-dir``)::

    python -m repro.obs summarize runs/trace.json            # p50/p95/p99
    python -m repro.obs summarize runs/trace.json --top 5    # slowest recs
    python -m repro.obs tree runs/trace.json                 # span trees
    python -m repro.obs tree runs/trace.json --recording 3
    python -m repro.obs diff base/trace.json new/trace.json  # regressions
    python -m repro.obs diff a.json b.json --fail-above 5    # CI gate
    python -m repro.obs health soak/health.jsonl             # fleet dashboard
    python -m repro.obs health soak/health.jsonl --fail-on-fired

``tree`` marks the critical path (the longest-child chain) with ``*``;
``diff`` exits 1 when any stage's p50 regressed beyond
``--fail-above`` percent, so it can gate CI.

``health`` renders the fleet dashboard from a health-snapshot JSONL
(written live by ``python -m repro.serve loadgen --health-interval-s``
or replayed from a soak artifact — the file is the replay).  It exits
3 when the final snapshot still has active alerts, and with
``--fail-on-fired`` also when *any* alert fired during the trajectory,
so the same command gates CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from .export import load_run_record
from .summary import (
    diff_stages,
    render_diff,
    render_stage_table,
    render_tree,
    slowest_recordings,
    stage_stats,
)

__all__ = ["main"]


def _cmd_summarize(args: argparse.Namespace) -> int:
    record = load_run_record(args.trace)
    if record.manifest is not None:
        m = record.manifest
        print(
            f"run: {m.created_at}  config={m.config_fingerprint[:12] or '-'}  "
            f"seed={m.seed}  git={(m.git_sha or 'unknown')[:12]}  host={m.hostname}"
        )
    print(f"spans: {sum(1 for root in record.spans for _ in root.walk())} "
          f"in {len(record.spans)} traces "
          f"({len(record.recording_roots())} recordings)\n")
    print(render_stage_table(stage_stats(record.spans)))
    slowest = slowest_recordings(record.spans, top=args.top)
    if slowest:
        print(f"\nslowest {len(slowest)} recordings:")
        header = (
            f"{'idx':>5} {'participant':<14}{'day':>6}{'ms':>10}"
            f"  {'outcome':<12}{'quality':<8}"
        )
        print(header)
        print("-" * len(header))
        for row in slowest:
            print(
                f"{str(row['index']):>5} {row['participant']:<14}"
                f"{str(row['day']):>6}{row['duration_ms']:>10.3f}"
                f"  {row['outcome']:<12}{row['quality_verdict']:<8}"
            )
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    record = load_run_record(args.trace)
    roots = record.recording_roots() if args.recording is not None else record.spans
    if args.recording is not None:
        roots = [r for r in roots if r.attrs.get("index") == args.recording]
        if not roots:
            print(f"no recording trace with index {args.recording}", file=sys.stderr)
            return 2
    shown = 0
    for root in roots:
        if args.limit is not None and shown >= args.limit:
            remaining = len(roots) - shown
            print(f"... {remaining} more trace(s); raise --limit to see them")
            break
        print(render_tree(root))
        print()
        shown += 1
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    before = stage_stats(load_run_record(args.before).spans)
    after = stage_stats(load_run_record(args.after).spans)
    rows = diff_stages(before, after)
    print(render_diff(rows))
    if args.fail_above is not None:
        worst = [
            row
            for row in rows
            if row["delta_pct"] is not None and row["delta_pct"] > args.fail_above
        ]
        if worst:
            print(
                f"\nFAIL: {len(worst)} stage(s) regressed beyond "
                f"{args.fail_above:g}% (worst: {worst[0]['stage']} "
                f"{worst[0]['delta_pct']:+.1f}%)"
            )
            return 1
    return 0


def _load_snapshots(path: Path) -> list[dict[str, Any]]:
    """Read a health-snapshot JSONL trajectory (one snapshot per line)."""
    snapshots = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if "series" in data and "slos" in data:
                snapshots.append(data)
    return snapshots


def _render_labels(labels: dict[str, str]) -> str:
    return " ".join(f"{k}={v or '-'}" for k, v in labels.items()) or "(all)"


def _render_health(snapshot: dict[str, Any], count: int, path: Path) -> None:
    print(
        f"fleet health — snapshot {snapshot['seq']} @ {snapshot['at_s']:.1f}s  "
        f"({path.name}: {count} snapshot(s))\n"
    )
    for name in sorted(snapshot["series"]):
        rows = snapshot["series"][name]
        print(name)
        for row in rows:
            label = _render_labels(row["labels"])
            cells = f"  {label:<42} n={row['count']:<7} rate={row['rate_per_s']:.3f}/s"
            quantiles = row.get("quantiles")
            if quantiles:
                cells += "  " + "  ".join(
                    f"{q}={v:.2f}" for q, v in quantiles.items()
                )
                cells += f"  max={row['max']:.2f}"
            print(cells)
    print("\nslos")
    for slo in snapshot["slos"]:
        target = f"{slo['target'] * 100:g}%"
        status = "FIRING" if slo["firing"] else "ok"
        print(f"  {slo['objective']:<26} target {target:<8} {status}")
        for rule in slo["rules"]:
            marker = "!" if rule["firing"] else " "
            print(
                f"    {marker} {rule['severity']:<7} {rule['rule']:<14} "
                f"burn {rule['burn_long']:.2f}/{rule['burn_short']:.2f} "
                f"(x{rule['factor']:g}, n={rule['events_long']})"
            )
    alerts = snapshot["alerts_active"]
    if alerts:
        print(f"\nalerts: {len(alerts)} ACTIVE")
        for alert in alerts:
            print(f"  {alert['severity']:<7} {alert['slo']} ({alert['rule']})")
    else:
        print("\nalerts: none")
    transitions = snapshot.get("transitions", [])
    if transitions:
        print("transitions")
        for t in transitions:
            print(
                f"  {t['at_s']:>10.1f}s  {t['state']:<9} {t['severity']:<7} "
                f"{t['slo']} ({t['rule']}) burn {t['burn_long']:.2f}"
            )


def _cmd_health(args: argparse.Namespace) -> int:
    snapshots = _load_snapshots(args.trajectory)
    if not snapshots:
        print(f"no health snapshots in {args.trajectory}", file=sys.stderr)
        return 2
    final = snapshots[-1]
    _render_health(final, len(snapshots), args.trajectory)
    fired = [
        t for t in final.get("transitions", []) if t["state"] == "fired"
    ]
    if final["alerts_active"]:
        print(f"\nFAIL: {len(final['alerts_active'])} alert(s) still active")
        return 3
    if args.fail_on_fired and fired:
        print(
            f"\nFAIL: {len(fired)} alert(s) fired during the run "
            "(all since resolved)"
        )
        return 3
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect run-record trace files (summaries, trees, diffs).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="per-stage percentiles and slowest recordings")
    p_sum.add_argument("trace", type=Path, help="run-record trace.json")
    p_sum.add_argument("--top", type=int, default=10, help="slowest recordings to list")
    p_sum.set_defaults(func=_cmd_summarize)

    p_tree = sub.add_parser("tree", help="render span trees with the critical path marked")
    p_tree.add_argument("trace", type=Path, help="run-record trace.json")
    p_tree.add_argument(
        "--recording", type=int, default=None, help="only the trace of this batch index"
    )
    p_tree.add_argument(
        "--limit", type=int, default=8, help="max trees to print (default 8)"
    )
    p_tree.set_defaults(func=_cmd_tree)

    p_diff = sub.add_parser("diff", help="per-stage p50 regressions between two runs")
    p_diff.add_argument("before", type=Path, help="baseline trace.json")
    p_diff.add_argument("after", type=Path, help="candidate trace.json")
    p_diff.add_argument(
        "--fail-above",
        type=float,
        default=None,
        help="exit 1 if any stage p50 regresses beyond this percent",
    )
    p_diff.set_defaults(func=_cmd_diff)

    p_health = sub.add_parser(
        "health", help="render the fleet-health dashboard from a snapshot JSONL"
    )
    p_health.add_argument(
        "trajectory", type=Path, help="health-snapshot JSONL (serve --health-out)"
    )
    p_health.add_argument(
        "--fail-on-fired",
        action="store_true",
        help="also exit 3 when any alert fired during the run, even if resolved",
    )
    p_health.set_defaults(func=_cmd_health)

    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())
