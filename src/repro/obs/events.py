"""Append-only structured event log (JSONL) with severity levels.

The runtime's noteworthy moments — batch start/finish, breaker trips,
quarantines, corrupt-cache evictions — are *events*: discrete,
structured, and worth keeping even when full tracing is off.  This
module replaces ad-hoc ``print`` / ``sys.stderr.write`` reporting with
an append-only log of JSON objects, one per line, so a run's event
stream is greppable, diffable, and machine-parseable after the fact.

Event *names* come from :mod:`repro.obs.names` (enforced by lint rule
QA007); free-form context travels in the ``fields`` mapping.  Like the
tracer, the ambient default is a null object so library code can emit
unconditionally at zero cost.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from enum import IntEnum
from pathlib import Path
from typing import Any, Iterator, TextIO, Union

__all__ = [
    "EventLevel",
    "LogEvent",
    "EventLog",
    "NullEventLog",
    "NULL_EVENT_LOG",
    "current_event_log",
    "use_event_log",
]

FieldValue = Union[str, int, float, bool, None]


class EventLevel(IntEnum):
    """Severity of a structured event; integer-ordered for filtering."""

    DEBUG = 10
    INFO = 20
    WARNING = 30
    ERROR = 40


#: Serialized lowercase names, precomputed so the emit hot path does
#: not re-derive ``EventLevel(level).name.lower()`` per event.
_LEVEL_NAMES = {level: level.name.lower() for level in EventLevel}


@dataclass(frozen=True)
class LogEvent:
    """One immutable entry of the event log.

    ``seq`` is the per-log emission index (append-only ordering that
    survives serialization); ``elapsed_ms`` is monotonic time since the
    log was opened, mirroring the tracer's timebase.
    """

    seq: int
    level: str
    name: str
    elapsed_ms: float
    fields: dict[str, FieldValue] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form; ``fields`` keys are merged flat on read."""
        payload: dict[str, Any] = {
            "seq": self.seq,
            "level": self.level,
            "name": self.name,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }
        payload.update(self.fields)
        return payload

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LogEvent":
        """Rebuild an event from its serialized dict form."""
        reserved = {"seq", "level", "name", "elapsed_ms"}
        return cls(
            seq=int(data["seq"]),
            level=str(data["level"]),
            name=str(data["name"]),
            elapsed_ms=float(data["elapsed_ms"]),
            fields={k: v for k, v in data.items() if k not in reserved},
        )


class EventLog:
    """In-memory event collector with optional streaming JSONL append.

    Parameters
    ----------
    path:
        Optional file; every emitted event is appended as one JSON
        line and flushed immediately, so a crashed run keeps its log
        up to the last event.
    min_level:
        Events below this severity are dropped at emission time.
    """

    #: Real logs record; mirrors :class:`~repro.obs.tracer.Tracer`.
    enabled: bool = True

    def __init__(
        self,
        path: str | Path | None = None,
        min_level: EventLevel = EventLevel.DEBUG,
    ) -> None:
        import time

        self._clock = time.perf_counter
        self._epoch = self._clock()
        self.min_level = min_level
        self.events: list[LogEvent] = []
        self.path = Path(path) if path is not None else None
        self._stream: TextIO | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("a", encoding="utf-8")

    def emit(
        self,
        name: str,
        *,
        level: EventLevel = EventLevel.INFO,
        **fields: FieldValue,
    ) -> None:
        """Record one event (name from :mod:`repro.obs.names`)."""
        if level < self.min_level:
            return
        event = LogEvent(
            seq=len(self.events),
            level=_LEVEL_NAMES.get(level) or EventLevel(level).name.lower(),
            name=name,
            elapsed_ms=(self._clock() - self._epoch) * 1e3,
            fields=fields,
        )
        self.events.append(event)
        if self._stream is not None:
            self._stream.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            self._stream.flush()

    def close(self) -> None:
        """Close the streaming file, if any (the memory log remains)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def to_jsonl(self) -> str:
        """The whole log as JSONL text (one event per line)."""
        return "".join(
            json.dumps(event.to_dict(), sort_keys=True) + "\n" for event in self.events
        )

    @staticmethod
    def read_jsonl(source: str | Path) -> list[LogEvent]:
        """Parse a JSONL log file (or raw JSONL text) back into events."""
        if isinstance(source, Path):
            text = source.read_text(encoding="utf-8")
        else:
            candidate = Path(source)
            try:
                is_file = candidate.is_file()
            except OSError:  # e.g. a multi-line string is not a valid path
                is_file = False
            text = candidate.read_text(encoding="utf-8") if is_file else source
        return [
            LogEvent.from_dict(json.loads(line))
            for line in text.splitlines()
            if line.strip()
        ]


class NullEventLog:
    """Disabled log: :meth:`emit` discards everything."""

    __slots__ = ()

    #: Always ``False``.
    enabled: bool = False
    #: Always empty.
    events: tuple = ()

    def emit(
        self,
        name: str,
        *,
        level: EventLevel = EventLevel.INFO,
        **fields: FieldValue,
    ) -> None:
        """Discard the event."""

    def close(self) -> None:
        """No-op."""


#: Process-wide disabled event log; the ambient default.
NULL_EVENT_LOG = NullEventLog()

_CURRENT_EVENT_LOG: ContextVar["EventLog | NullEventLog"] = ContextVar(
    "repro_obs_event_log", default=NULL_EVENT_LOG
)


def current_event_log() -> "EventLog | NullEventLog":
    """The ambient event log (:data:`NULL_EVENT_LOG` by default)."""
    return _CURRENT_EVENT_LOG.get()


@contextmanager
def use_event_log(log: "EventLog | NullEventLog") -> Iterator["EventLog | NullEventLog"]:
    """Make ``log`` ambient for the duration of the ``with`` block."""
    token = _CURRENT_EVENT_LOG.set(log)
    try:
        yield log
    finally:
        _CURRENT_EVENT_LOG.reset(token)
