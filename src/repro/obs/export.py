"""Exporters: run records, Chrome trace-event files, Prometheus text.

One batch run produces one *run record* — a JSON file bundling the
:class:`~repro.obs.manifest.RunManifest`, the metrics snapshot, and
every finished span tree.  The record is the interchange format the
``python -m repro.obs`` CLI consumes (summaries, tree rendering, run
diffs); two derived views serve external tools:

- **Chrome trace-event format** (``trace.chrome.json``): the span
  forest as ``"X"`` complete events, one thread per recording, so a
  batch run opens directly in Perfetto / ``chrome://tracing`` as a
  flamegraph;
- **Prometheus text exposition** (``metrics.prom``): counters and
  histogram summaries in the plain-text scrape format, so a periodic
  batch job can push its metrics to a gateway without new deps.

All exporters are pure functions of already-collected data; they never
touch the tracer's hot path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from . import names
from .events import EventLog, NullEventLog
from .manifest import RunManifest
from .tracer import Span

__all__ = [
    "RECORD_SCHEMA_VERSION",
    "RunRecord",
    "chrome_trace",
    "prometheus_text",
    "write_run_record",
    "load_run_record",
]

#: Bumped whenever the run-record JSON layout changes incompatibly.
RECORD_SCHEMA_VERSION = 1

#: Synthetic Chrome-trace thread id hosting run-level (non-recording)
#: spans; per-recording tracks start at tid 1 (= index + 1).
_RUNTIME_TID = 0


@dataclass
class RunRecord:
    """Deserialized run record: provenance + metrics + span forest."""

    spans: list[Span] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)
    manifest: RunManifest | None = None

    def recording_roots(self) -> list[Span]:
        """Per-recording root spans, sorted by their batch index."""
        roots = [s for s in self.spans if s.name == names.SPAN_RECORDING]
        return sorted(roots, key=lambda s: (s.attrs.get("index", -1), s.start_ms))

    def to_dict(self) -> dict[str, Any]:
        """Serializable form written by :func:`write_run_record`."""
        return {
            "schema_version": RECORD_SCHEMA_VERSION,
            "manifest": self.manifest.to_dict() if self.manifest else None,
            "metrics": self.metrics,
            "spans": [span.to_dict() for span in self.spans],
        }


def _span_tid(root: Span) -> int:
    index = root.attrs.get("index")
    if isinstance(index, int) and index >= 0:
        return index + 1
    return _RUNTIME_TID


def _chrome_events_for(span: Span, pid: int, tid: int) -> Iterable[dict[str, Any]]:
    yield {
        "name": span.name,
        "cat": span.name.split(".")[0],
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": round(span.start_ms * 1e3, 1),
        "dur": round(span.duration_ms * 1e3, 1),
        "args": dict(span.attrs),
    }
    for child in span.children:
        yield from _chrome_events_for(child, pid, tid)


def chrome_trace(spans: Iterable[Span], *, process_name: str = "earsonar") -> dict[str, Any]:
    """Span forest as a Chrome trace-event document (Perfetto-loadable).

    Each recording root (and its subtree) gets its own thread track,
    named after the recording's provenance; run-level spans share the
    ``runtime`` track.  Durations are microseconds, as the format
    requires.
    """
    pid = 1
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": _RUNTIME_TID,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": _RUNTIME_TID,
            "args": {"name": "runtime"},
        },
    ]
    named_tids: set[int] = set()
    for root in spans:
        tid = _span_tid(root)
        if tid != _RUNTIME_TID and tid not in named_tids:
            named_tids.add(tid)
            participant = root.attrs.get("participant", "")
            label = f"recording {tid - 1}"
            if participant:
                label += f" ({participant} d{root.attrs.get('day', '?')})"
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        events.extend(_chrome_events_for(root, pid, tid))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _prom_name(name: str) -> str:
    sanitized = "".join(c if c.isalnum() else "_" for c in name)
    return f"earsonar_{sanitized}"


def prometheus_text(metrics: Any) -> str:
    """Metrics snapshot in the Prometheus text exposition format.

    ``metrics`` is a :class:`~repro.runtime.metrics.RuntimeMetrics`
    registry or an already-built ``report()`` dict.  Histograms are
    exported as ``summary`` families (pre-computed quantiles plus
    ``_sum`` / ``_count``), counters as ``counter`` families, and the
    cache hit rate as a ``gauge``.
    """
    report = metrics.report() if hasattr(metrics, "report") else dict(metrics)
    lines: list[str] = []
    for name in sorted(report.get("counters", {})):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {int(report['counters'][name])}")
    for name in sorted(report.get("histograms", {})):
        prom = _prom_name(name)
        digest = report["histograms"][name]
        lines.append(f"# TYPE {prom} summary")
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            lines.append(f'{prom}{{quantile="{quantile}"}} {float(digest[key]):.6g}')
        total = float(digest["mean"]) * int(digest["count"])
        lines.append(f"{prom}_sum {total:.6g}")
        lines.append(f"{prom}_count {int(digest['count'])}")
    if "cache_hit_rate" in report:
        prom = _prom_name("cache_hit_rate")
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {float(report['cache_hit_rate']):.6g}")
    return "\n".join(lines) + "\n"


def write_run_record(
    directory: str | Path,
    *,
    spans: Iterable[Span],
    metrics: Any = None,
    manifest: RunManifest | None = None,
    events: "EventLog | NullEventLog | None" = None,
    stem: str = "trace",
) -> dict[str, Path]:
    """Write every export of one run under ``directory``.

    Produces ``<stem>.json`` (the run record), ``<stem>.chrome.json``
    (Perfetto), plus ``manifest.json``, ``metrics.prom``, and
    ``events.jsonl`` when the corresponding inputs are given.  Returns
    the written paths keyed by artifact kind.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    spans = list(spans)
    report = metrics.report() if hasattr(metrics, "report") else dict(metrics or {})
    record = RunRecord(spans=spans, metrics=report, manifest=manifest)

    paths: dict[str, Path] = {}
    record_path = directory / f"{stem}.json"
    record_path.write_text(
        json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    paths["record"] = record_path

    chrome_path = directory / f"{stem}.chrome.json"
    chrome_path.write_text(
        json.dumps(chrome_trace(spans), indent=2) + "\n", encoding="utf-8"
    )
    paths["chrome"] = chrome_path

    if manifest is not None:
        paths["manifest"] = manifest.save(directory / "manifest.json")
    if metrics is not None:
        prom_path = directory / "metrics.prom"
        prom_path.write_text(prometheus_text(report), encoding="utf-8")
        paths["prometheus"] = prom_path
    if events is not None and getattr(events, "enabled", False):
        events_path = directory / "events.jsonl"
        if getattr(events, "path", None) != events_path:
            events_path.write_text(events.to_jsonl(), encoding="utf-8")
        paths["events"] = events_path
    return paths


def load_run_record(path: str | Path) -> RunRecord:
    """Read a ``<stem>.json`` run record back into a :class:`RunRecord`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    manifest_data = data.get("manifest")
    return RunRecord(
        spans=[Span.from_dict(d) for d in data.get("spans", ())],
        metrics=dict(data.get("metrics", {})),
        manifest=RunManifest.from_dict(manifest_data) if manifest_data else None,
    )
