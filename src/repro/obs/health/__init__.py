"""Fleet-health observability: mergeable aggregates, rollups, SLOs.

The health tier answers "is the fleet OK?" the way the tracer answers
"what happened in this run?": hooks across the executor, pipeline, and
serve loop feed an ambient :class:`HealthMonitor`, which rolls the
stream up into bounded-cardinality dimensional windows, watches the
declared SLOs with multi-window multi-burn-rate alerting, and renders
snapshots as JSON or Prometheus text.  Everything merges — worker
aggregates fold into the parent's exactly — and everything takes its
clock from the caller, so the whole tier replays deterministically
under :class:`~repro.serve.clock.VirtualClock`.

See ``DESIGN.md`` ("Fleet health") for the window/sketch design, the
label-cardinality budget, and the burn-rate math.
"""

from .monitor import (
    DEFAULT_SERIES,
    DEFAULT_SLOS,
    NULL_HEALTH,
    HealthConfig,
    HealthContext,
    HealthMonitor,
    NullHealthMonitor,
    SeriesSpec,
    activate_health_from_context,
    current_health,
    use_health,
)
from .rollup import OVERFLOW_VALUE, RollupSeries
from .sketch import QuantileSketch, SketchConfig
from .slo import DEFAULT_BURN_RULES, BurnRule, SloConfig, SloTracker
from .window import SlidingWindow, WindowConfig, WindowSnapshot

__all__ = [
    "BurnRule",
    "DEFAULT_BURN_RULES",
    "DEFAULT_SERIES",
    "DEFAULT_SLOS",
    "HealthConfig",
    "HealthContext",
    "HealthMonitor",
    "NULL_HEALTH",
    "NullHealthMonitor",
    "OVERFLOW_VALUE",
    "QuantileSketch",
    "RollupSeries",
    "SeriesSpec",
    "SketchConfig",
    "SlidingWindow",
    "SloConfig",
    "SloTracker",
    "WindowConfig",
    "WindowSnapshot",
    "activate_health_from_context",
    "current_health",
    "use_health",
]
