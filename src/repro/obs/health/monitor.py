"""The fleet-health monitor: ambient, mergeable, zero-cost when off.

:class:`HealthMonitor` is the live counterpart of the tracer: hooks in
the executor, the pipeline, and the serve loop feed it observations;
it aggregates them into bounded-label rollups over mergeable sliding
windows, evaluates the configured SLOs, and renders snapshots as JSON
and Prometheus text.

The ambient pattern mirrors :mod:`repro.obs.tracer` exactly:

- :func:`current_health` returns the shared :data:`NULL_HEALTH`
  unless a run opted in with :func:`use_health`, so permanently
  compiled-in hooks cost one contextvar read and a no-op call;
- pool workers cannot share the parent's monitor, so the parent ships
  a picklable :class:`HealthContext` and each worker records into a
  local monitor whose exported state travels home with the chunk
  results for :meth:`HealthMonitor.merge_state` — the trace-adoption
  pattern, applied to aggregates.

Workers observe against the context's *capture-time* clock reading:
a worker has no view of the parent's monotonic epoch (and must never
read its own wall clock into the shared time axis), so its
observations land in the bucket that was current at dispatch.  Batch
dispatch is short next to the bucket width, and the placement is a
pure function of the injected clock — worker-merged windows stay
bit-identical run to run.

Every ``now`` ultimately comes from an injected clock (the serve
tier passes ``Clock.now``), so snapshots, burn rates, and alert
transitions are deterministic under
:class:`~repro.serve.clock.VirtualClock`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Union

from ...errors import ConfigurationError
from .. import names as obs_names
from ..tracer import current_tracer
from .rollup import RollupSeries
from .slo import SloConfig, SloTracker
from .window import WindowConfig

__all__ = [
    "SeriesSpec",
    "HealthConfig",
    "HealthMonitor",
    "NullHealthMonitor",
    "NULL_HEALTH",
    "HealthContext",
    "DEFAULT_SERIES",
    "DEFAULT_SLOS",
    "current_health",
    "use_health",
    "activate_health_from_context",
]


@dataclass(frozen=True)
class SeriesSpec:
    """Declaration of one health series: name, dimensions, kind."""

    name: str
    labels: tuple[str, ...] = ()
    kind: str = "counter"

    def __post_init__(self) -> None:
        if self.kind not in ("counter", "distribution"):
            raise ConfigurationError(
                f"kind must be 'counter' or 'distribution', got {self.kind!r}"
            )


#: The canonical series set; names and label tuples match the
#: registry documentation in :mod:`repro.obs.names`.
DEFAULT_SERIES = (
    SeriesSpec(obs_names.HEALTH_SCREENINGS, ("verdict", "reason"), "counter"),
    SeriesSpec(obs_names.HEALTH_REQUESTS, ("tenant", "outcome"), "counter"),
    SeriesSpec(obs_names.HEALTH_RAKE_TAPS, ("device_model",), "counter"),
    SeriesSpec(obs_names.HEALTH_RECORDING_MS, ("lane",), "distribution"),
    SeriesSpec(obs_names.HEALTH_REQUEST_MS, ("tenant",), "distribution"),
    SeriesSpec(obs_names.HEALTH_CALIB_OFFSET_DB, ("device_model",), "distribution"),
)

#: Default objectives: three nines of availability, 95% of requests
#: under 30 s, 90% of screenings accepted.  Deployments tighten these
#: per tenant class; the soak gate overrides the latency threshold.
DEFAULT_SLOS = (
    SloConfig(objective=obs_names.SLO_AVAILABILITY, target=0.999),
    SloConfig(objective=obs_names.SLO_LATENCY, target=0.95, threshold_ms=30_000.0),
    SloConfig(objective=obs_names.SLO_QUALITY, target=0.9),
)


@dataclass(frozen=True)
class HealthConfig:
    """Everything a monitor (or a worker-side replica) needs."""

    window: WindowConfig = field(default_factory=WindowConfig)
    series: tuple[SeriesSpec, ...] = DEFAULT_SERIES
    slos: tuple[SloConfig, ...] = DEFAULT_SLOS
    max_values_per_key: int = 16
    quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)


@dataclass(frozen=True)
class HealthContext:
    """Picklable health-propagation marker shipped to pool workers.

    ``frozen_now`` pins the worker's time axis to the parent clock at
    capture; see the module docstring for why.
    """

    config: HealthConfig
    frozen_now: float

    @classmethod
    def capture(cls) -> "HealthContext | None":
        """Context for the ambient monitor; ``None`` when disabled.

        ``None`` keeps the disabled path's pickled task payload
        byte-identical to pre-health builds, like ``TraceContext``.
        """
        health = current_health()
        if not health.enabled:
            return None
        assert isinstance(health, HealthMonitor)
        return cls(config=health.config, frozen_now=health.now())


class HealthMonitor:
    """Aggregates health observations; renders snapshots; tracks SLOs."""

    #: Real monitors record; the null monitor reports ``False`` so hook
    #: code can skip building label dicts when nobody is watching.
    enabled: bool = True

    def __init__(
        self,
        config: HealthConfig | None = None,
        *,
        now: Callable[[], float] | None = None,
    ) -> None:
        self.config = config or HealthConfig()
        self.now: Callable[[], float] = now if now is not None else time.monotonic
        self._series: dict[str, RollupSeries] = {}
        for spec in self.config.series:
            if spec.name in self._series:
                raise ConfigurationError(f"duplicate series {spec.name!r}")
            self._series[spec.name] = RollupSeries(
                spec.name,
                spec.labels,
                self.config.window,
                track_values=spec.kind == "distribution",
                max_values_per_key=self.config.max_values_per_key,
            )
        self._kinds = {spec.name: spec.kind for spec in self.config.series}
        self._slos: dict[str, SloTracker] = {}
        for slo in self.config.slos:
            if slo.objective in self._slos:
                raise ConfigurationError(f"duplicate SLO {slo.objective!r}")
            self._slos[slo.objective] = SloTracker(slo, self.config.window)
        self._seq = 0

    # -- recording ------------------------------------------------------

    def _resolve(self, name: str, kind: str) -> RollupSeries | None:
        """The series behind ``name``, or ``None`` when not collected.

        Hooks feed unconditionally; the *config* decides which series
        are collected (e.g. the virtual-clock loadgen drops the
        wall-time ``health.recording_ms`` series so replays stay
        bit-identical).  A name of the wrong kind is still a
        configuration error — that's a code bug, not a config choice.
        """
        series = self._series.get(name)
        if series is None:
            return None
        if self._kinds[name] != kind:
            raise ConfigurationError(
                f"series {name!r} is a {self._kinds[name]}, not a {kind}"
            )
        return series

    def increment(
        self,
        name: str,
        value: int = 1,
        *,
        labels: Mapping[str, str] | None = None,
        now: float | None = None,
    ) -> None:
        """Bump a counter series by ``value`` under ``labels``."""
        series = self._resolve(name, "counter")
        if series is None:
            return
        series.observe(
            1.0,
            self.now() if now is None else now,
            labels=labels,
            weight=int(value),
        )

    def observe(
        self,
        name: str,
        value: float,
        *,
        labels: Mapping[str, str] | None = None,
        now: float | None = None,
    ) -> None:
        """Record one sample into a distribution series."""
        series = self._resolve(name, "distribution")
        if series is None:
            return
        series.observe(value, self.now() if now is None else now, labels=labels)

    def slo_sample(
        self,
        objective: str,
        *,
        good: bool | None = None,
        value_ms: float | None = None,
        now: float | None = None,
    ) -> None:
        """Feed one good/bad event to an objective.

        Explicit ``good`` wins; otherwise the objective's
        ``threshold_ms`` classifies ``value_ms``.  Objectives absent
        from the config are ignored — hooks feed unconditionally.
        """
        tracker = self._slos.get(objective)
        if tracker is None:
            return
        if good is None:
            threshold = tracker.config.threshold_ms
            if threshold is None or value_ms is None:
                raise ConfigurationError(
                    f"SLO {objective!r} needs an explicit good= verdict "
                    "(no threshold_ms configured)"
                )
            good = value_ms <= threshold
        tracker.sample(good, self.now() if now is None else now)

    # -- worker propagation ---------------------------------------------

    def capture_context(self) -> HealthContext | None:
        """Shippable context for pool workers (see :class:`HealthContext`)."""
        return HealthContext(config=self.config, frozen_now=self.now())

    def export_state(self) -> dict[str, Any]:
        """JSON-safe series state for the trip back to the parent."""
        return {
            "series": {
                name: series.export_state()
                for name, series in sorted(self._series.items())
            },
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Fold a worker monitor's exported series into this one."""
        for name, payload in state["series"].items():
            series = self._series.get(name)
            if series is not None:
                series.merge_state(payload)

    # -- evaluation / rendering -----------------------------------------

    def evaluate(self, now: float | None = None) -> list[dict[str, Any]]:
        """Evaluate every SLO; returns per-objective gauge dicts."""
        at = self.now() if now is None else now
        out = []
        for objective in sorted(self._slos):
            tracker = self._slos[objective]
            out.append(
                {
                    "objective": objective,
                    "target": tracker.config.target,
                    "threshold_ms": tracker.config.threshold_ms,
                    "rules": tracker.evaluate(at),
                    "firing": tracker.firing,
                }
            )
        return out

    @property
    def transitions(self) -> list[dict[str, Any]]:
        """Every alert transition so far, in evaluation order."""
        out: list[dict[str, Any]] = []
        for objective in sorted(self._slos):
            out.extend(self._slos[objective].transitions)
        out.sort(key=lambda t: (t["at_s"], t["slo"], t["rule"]))
        return out

    def active_alerts(self) -> list[dict[str, str]]:
        """Currently firing (slo, severity, rule) triples."""
        alerts = []
        for objective in sorted(self._slos):
            tracker = self._slos[objective]
            for rule in tracker.config.rules:
                if tracker._firing[rule.key]:
                    alerts.append(
                        {
                            "slo": objective,
                            "severity": rule.severity,
                            "rule": rule.key,
                        }
                    )
        return alerts

    def snapshot(self, now: float | None = None) -> dict[str, Any]:
        """One JSON-safe health snapshot: series rows, SLOs, alerts.

        Evaluates the SLOs as a side effect, so alert transitions are
        stamped with this snapshot's clock reading.
        """
        at = self.now() if now is None else now
        self._seq += 1
        with current_tracer().span(obs_names.SPAN_HEALTH_SNAPSHOT) as span:
            series: dict[str, list[dict[str, Any]]] = {}
            for name in sorted(self._series):
                rows = [
                    {"labels": labels, **snap.to_dict()}
                    for labels, snap in self._series[name].rows(
                        at,
                        quantiles=self.config.quantiles
                        if self._kinds[name] == "distribution"
                        else (),
                    )
                ]
                if rows:
                    series[name] = rows
            slos = self.evaluate(at)
            alerts = self.active_alerts()
            span.set("series", len(series))
            span.set("alerts", len(alerts))
        return {
            "seq": self._seq,
            "at_s": round(at, 6),
            "series": series,
            "slos": slos,
            "alerts_active": alerts,
            "transitions": self.transitions,
        }

    def prometheus(self, now: float | None = None) -> str:
        """Prometheus text-format rendering with rollup label dimensions."""
        at = self.now() if now is None else now
        lines: list[str] = []
        for name in sorted(self._series):
            kind = self._kinds[name]
            metric = _sanitize(name) + ("_total" if kind == "counter" else "")
            lines.append(f"# TYPE {metric} {'counter' if kind == 'counter' else 'summary'}")
            for labels, snap in self._series[name].rows(
                at,
                quantiles=self.config.quantiles if kind == "distribution" else (),
            ):
                rendered = _labels(labels)
                if kind == "counter":
                    lines.append(f"{metric}{rendered} {snap.count}")
                    continue
                for qname, qvalue in snap.quantiles.items():
                    quantile = float(qname[1:]) / 100.0
                    lines.append(
                        f"{metric}{_labels({**labels, 'quantile': f'{quantile:g}'})}"
                        f" {qvalue:.6f}"
                    )
                lines.append(f"{metric}_count{rendered} {snap.count}")
                lines.append(f"{metric}_sum{rendered} {snap.total:.6f}")
        lines.append("# TYPE earsonar_slo_burn_rate gauge")
        lines.append("# TYPE earsonar_slo_alert_firing gauge")
        for entry in self.evaluate(at):
            for rule in entry["rules"]:
                labels = {
                    "slo": entry["objective"],
                    "severity": rule["severity"],
                    "rule": rule["rule"],
                }
                lines.append(
                    f"earsonar_slo_burn_rate{_labels({**labels, 'window': 'long'})}"
                    f" {rule['burn_long']:.6f}"
                )
                lines.append(
                    f"earsonar_slo_burn_rate{_labels({**labels, 'window': 'short'})}"
                    f" {rule['burn_short']:.6f}"
                )
                lines.append(
                    f"earsonar_slo_alert_firing{_labels(labels)}"
                    f" {1 if rule['firing'] else 0}"
                )
        return "\n".join(lines) + "\n"


def _sanitize(name: str) -> str:
    return "earsonar_" + name.replace(".", "_")


def _labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape(str(labels[key]))}"' for key in sorted(labels)
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"")


class NullHealthMonitor:
    """Disabled monitor: every hook is a stateless no-op."""

    __slots__ = ()

    #: Always ``False``.
    enabled: bool = False

    def increment(self, name: str, value: int = 1, *, labels: Any = None, now: Any = None) -> None:
        """Discard the observation."""

    def observe(self, name: str, value: float, *, labels: Any = None, now: Any = None) -> None:
        """Discard the observation."""

    def slo_sample(self, objective: str, *, good: Any = None, value_ms: Any = None, now: Any = None) -> None:
        """Discard the sample."""

    def capture_context(self) -> None:
        """Always ``None``: workers stay disabled too."""

    def merge_state(self, state: Any) -> None:
        """Discard the state."""

    def snapshot(self, now: Any = None) -> dict[str, Any]:
        """Always empty."""
        return {}

    def prometheus(self, now: Any = None) -> str:
        """Always empty."""
        return ""

    @property
    def transitions(self) -> tuple:
        """Always empty."""
        return ()

    def active_alerts(self) -> list:
        """Always empty."""
        return []


#: Process-wide disabled monitor; the ambient default.
NULL_HEALTH = NullHealthMonitor()

AnyHealth = Union[HealthMonitor, NullHealthMonitor]

_CURRENT_HEALTH: ContextVar[AnyHealth] = ContextVar(
    "repro_obs_health", default=NULL_HEALTH
)


def current_health() -> AnyHealth:
    """The ambient monitor (the shared :data:`NULL_HEALTH` by default)."""
    return _CURRENT_HEALTH.get()


@contextmanager
def use_health(monitor: AnyHealth) -> Iterator[AnyHealth]:
    """Make ``monitor`` ambient for the duration of the ``with`` block."""
    token = _CURRENT_HEALTH.set(monitor)
    try:
        yield monitor
    finally:
        _CURRENT_HEALTH.reset(token)


@contextmanager
def activate_health_from_context(
    context: HealthContext | None,
) -> Iterator[HealthMonitor | None]:
    """Worker-side monitor activation from a shipped :class:`HealthContext`.

    Yields the local :class:`HealthMonitor` (ambient inside the block)
    when the context asks for health aggregation, else ``None`` with
    the null monitor left in place.  The local monitor's clock is
    frozen at the context's capture time so every worker observation
    lands on the parent's time axis deterministically.
    """
    if context is None:
        yield None
        return
    frozen = context.frozen_now
    monitor = HealthMonitor(context.config, now=lambda: frozen)
    with use_health(monitor):
        yield monitor
