"""Bounded-cardinality dimensional rollups over sliding windows.

A :class:`RollupSeries` is one named metric (``health.requests``,
``health.calib_offset_db``, ...) broken down by a *declared* tuple of
label keys.  Two disciplines keep the fleet dashboard from melting
down the way unbounded label sets melt down real Prometheus servers:

- **Closed key vocabulary.**  Every label key must come from
  :data:`repro.obs.names.HEALTH_LABEL_KEYS`.  This is enforced here at
  runtime and by the QA012 lint rule at every call site, so a typo'd
  or invented dimension fails review, not production.
- **Per-key value budget.**  Label *values* are caller data (tenant
  ids, device models); each key admits at most
  ``max_values_per_key`` distinct values, after which new values
  collapse into the :data:`OVERFLOW_VALUE` bucket.  Totals stay right;
  only the long tail loses its own row.

Series state is mergeable: rows merge window-wise by label tuple, so
worker-local rollups ship home and fold into the parent's exactly.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from ...errors import ConfigurationError
from ..names import HEALTH_LABEL_KEYS
from .window import SlidingWindow, WindowConfig, WindowSnapshot

__all__ = ["OVERFLOW_VALUE", "RollupSeries"]

#: Label value absorbing the tail past the per-key cardinality budget.
OVERFLOW_VALUE = "__other__"


class RollupSeries:
    """One metric's windows, keyed by a bounded label-value tuple."""

    __slots__ = (
        "name",
        "label_keys",
        "window_config",
        "track_values",
        "max_values_per_key",
        "_rows",
        "_seen_values",
    )

    def __init__(
        self,
        name: str,
        label_keys: tuple[str, ...],
        window_config: WindowConfig,
        *,
        track_values: bool = True,
        max_values_per_key: int = 16,
    ) -> None:
        undeclared = [key for key in label_keys if key not in HEALTH_LABEL_KEYS]
        if undeclared:
            raise ConfigurationError(
                f"series {name!r} uses undeclared label key(s) "
                f"{undeclared}; the closed vocabulary is "
                f"{sorted(HEALTH_LABEL_KEYS)} (obs.names.HEALTH_LABEL_KEYS)"
            )
        if max_values_per_key < 1:
            raise ConfigurationError(
                f"max_values_per_key must be >= 1, got {max_values_per_key}"
            )
        self.name = name
        self.label_keys = tuple(label_keys)
        self.window_config = window_config
        self.track_values = track_values
        self.max_values_per_key = max_values_per_key
        self._rows: dict[tuple[str, ...], SlidingWindow] = {}
        self._seen_values: dict[str, set[str]] = {key: set() for key in label_keys}

    # -- writing --------------------------------------------------------

    def _bound_value(self, key: str, value: str) -> str:
        """Admit ``value`` under ``key``'s budget, or fold to overflow."""
        seen = self._seen_values[key]
        if value in seen:
            return value
        if len(seen) < self.max_values_per_key:
            seen.add(value)
            return value
        return OVERFLOW_VALUE

    def _row_key(self, labels: Mapping[str, str] | None) -> tuple[str, ...]:
        labels = labels or {}
        for key in labels:
            if key not in self.label_keys:
                raise ConfigurationError(
                    f"series {self.name!r} declares labels "
                    f"{self.label_keys}; got undeclared key {key!r}"
                )
        return tuple(
            self._bound_value(key, str(labels.get(key, "")))
            for key in self.label_keys
        )

    def observe(
        self,
        value: float,
        now: float,
        *,
        labels: Mapping[str, str] | None = None,
        weight: int = 1,
    ) -> None:
        """Record one observation under its (bounded) label tuple."""
        key = self._row_key(labels)
        window = self._rows.get(key)
        if window is None:
            window = self._rows[key] = SlidingWindow(
                self.window_config, track_values=self.track_values
            )
        window.observe(value, now, weight)

    # -- reading --------------------------------------------------------

    def rows(
        self,
        now: float,
        *,
        horizon_s: float | None = None,
        quantiles: tuple[float, ...] = (),
    ) -> Iterator[tuple[dict[str, str], WindowSnapshot]]:
        """Yield ``(labels, snapshot)`` per live row, sorted by labels."""
        for key in sorted(self._rows):
            snapshot = self._rows[key].totals(
                now, horizon_s=horizon_s, quantiles=quantiles
            )
            if snapshot.count == 0:
                continue
            yield dict(zip(self.label_keys, key)), snapshot

    def total(self, now: float, *, horizon_s: float | None = None) -> WindowSnapshot:
        """Label-blind aggregate across every row."""
        count = 0
        total = 0.0
        vmin: float | None = None
        vmax: float | None = None
        for _, snap in self.rows(now, horizon_s=horizon_s):
            count += snap.count
            total += snap.total
            if snap.vmin is not None:
                vmin = snap.vmin if vmin is None else min(vmin, snap.vmin)
            if snap.vmax is not None:
                vmax = snap.vmax if vmax is None else max(vmax, snap.vmax)
        horizon = self.window_config.horizon_s if horizon_s is None else horizon_s
        return WindowSnapshot(
            count=count,
            total=total,
            vmin=vmin,
            vmax=vmax,
            rate_per_s=count / horizon if horizon > 0 else 0.0,
        )

    # -- merge / serialization ------------------------------------------

    def merge(self, other: "RollupSeries") -> None:
        """Fold another series' rows into this one, label tuple-wise."""
        if other.name != self.name or other.label_keys != self.label_keys:
            raise ConfigurationError(
                f"cannot merge series {other.name!r}{other.label_keys} "
                f"into {self.name!r}{self.label_keys}"
            )
        for key, window in other._rows.items():
            for index, value in zip(self.label_keys, key):
                if value != OVERFLOW_VALUE:
                    self._bound_value(index, value)
            mine = self._rows.get(key)
            if mine is None:
                mine = self._rows[key] = SlidingWindow(
                    self.window_config, track_values=self.track_values
                )
            mine.merge(window)

    def export_state(self) -> dict[str, Any]:
        """JSON-safe rows for cross-process shipping."""
        return {
            "name": self.name,
            "rows": [
                {"labels": list(key), "window": window.export_state()}
                for key, window in sorted(self._rows.items())
            ],
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Fold an :meth:`export_state` payload into this series."""
        if state["name"] != self.name:
            raise ConfigurationError(
                f"cannot merge state of series {state['name']!r} into "
                f"{self.name!r}"
            )
        for row in state["rows"]:
            key = tuple(str(v) for v in row["labels"])
            for index, value in zip(self.label_keys, key):
                if value != OVERFLOW_VALUE:
                    self._bound_value(index, value)
            window = self._rows.get(key)
            if window is None:
                window = self._rows[key] = SlidingWindow(
                    self.window_config, track_values=self.track_values
                )
            window.merge_state(row["window"])
