"""Mergeable exponential-bucket quantile sketch.

The fleet-health aggregators need latency and drift *distributions*
that many producers (pool workers, serve shards) can accumulate locally
and a parent can combine without loss.  Exact reservoirs don't merge —
two reservoirs concatenated are no longer a uniform sample — so the
health tier uses the standard mergeable alternative: a histogram whose
bucket boundaries grow geometrically, giving a bounded *relative* error
on every quantile estimate.

Properties that the tests pin down:

- **Mergeable, exactly.**  Bucket counts are integers; ``merge`` is a
  bucket-wise add, so it is commutative and associative to the bit.
  Any partition of a value stream across producers yields the same
  merged sketch as a single-producer run.
- **Bounded relative error.**  A value lands in the bucket whose
  geometric span covers it; quantiles are answered with the bucket's
  geometric midpoint, so the estimate is within one ``growth`` factor
  of the true rank value.
- **Signed.**  Calibration offsets are dB values around zero; negative
  magnitudes mirror into negative bucket indices, and values inside
  ``(-min_value, +min_value)`` share the exact-zero bucket.

The exact ``count`` / ``total`` / ``min`` / ``max`` moments ride along
so rates and means never pay the quantization error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from ...errors import ConfigurationError

__all__ = ["SketchConfig", "QuantileSketch"]

#: Bucket index for values whose magnitude is below ``min_value``.
_ZERO_BUCKET = 0


@dataclass(frozen=True)
class SketchConfig:
    """Shape of the exponential bucket grid.

    Attributes
    ----------
    growth:
        Ratio between consecutive bucket boundaries.  1.15 gives a
        worst-case quantile error of ~7% of the value — plenty for
        burn-rate math and dashboard percentiles.
    min_value:
        Magnitudes below this collapse into the shared zero bucket;
        it is also the first bucket boundary.
    max_index:
        Bucket indices are clamped to ``[-max_index, max_index]`` so a
        wild outlier cannot grow the sketch without bound.  256 buckets
        at growth 1.15 span ``min_value`` to ``min_value * 1.15**256``
        (about 15 decades) per sign.
    """

    growth: float = 1.15
    min_value: float = 1e-3
    max_index: int = 256

    def __post_init__(self) -> None:
        if self.growth <= 1.0:
            raise ConfigurationError(f"growth must be > 1, got {self.growth}")
        if self.min_value <= 0.0:
            raise ConfigurationError(
                f"min_value must be positive, got {self.min_value}"
            )
        if self.max_index < 1:
            raise ConfigurationError(
                f"max_index must be >= 1, got {self.max_index}"
            )


class QuantileSketch:
    """Signed exponential-bucket histogram with exact moments."""

    __slots__ = ("config", "count", "total", "vmin", "vmax", "buckets", "_log_growth")

    def __init__(self, config: SketchConfig | None = None) -> None:
        self.config = config or SketchConfig()
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        #: Sparse bucket table: signed index -> integer count.
        self.buckets: dict[int, int] = {}
        self._log_growth = math.log(self.config.growth)

    # -- recording ------------------------------------------------------

    def _index(self, value: float) -> int:
        magnitude = abs(value)
        cfg = self.config
        if magnitude < cfg.min_value:
            return _ZERO_BUCKET
        # Bucket k (k >= 1) covers [min_value * g**(k-1), min_value * g**k).
        index = 1 + int(math.log(magnitude / cfg.min_value) / self._log_growth)
        index = min(index, cfg.max_index)
        return index if value >= 0.0 else -index

    def observe(self, value: float, weight: int = 1) -> None:
        """Record ``value`` with an integer multiplicity."""
        if weight <= 0:
            return
        self.count += weight
        self.total += value * weight
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + weight

    # -- querying -------------------------------------------------------

    def _bucket_value(self, index: int) -> float:
        """Representative value of one bucket: its geometric midpoint."""
        if index == _ZERO_BUCKET:
            return 0.0
        cfg = self.config
        magnitude = cfg.min_value * cfg.growth ** (abs(index) - 1)
        midpoint = magnitude * math.sqrt(cfg.growth)
        return midpoint if index > 0 else -midpoint

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]); NaN when empty.

        The answer is clamped into the exact observed ``[min, max]``
        envelope, so degenerate streams (one value repeated) come back
        exact instead of quantized.
        """
        if self.count == 0:
            return math.nan
        q = min(max(q, 0.0), 1.0)
        rank = q * (self.count - 1)
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen > rank:
                estimate = self._bucket_value(index)
                return min(max(estimate, self.vmin), self.vmax)
        return self.vmax

    @property
    def mean(self) -> float:
        """Exact mean of the observed values; NaN when empty."""
        return self.total / self.count if self.count else math.nan

    # -- merge / serialization ------------------------------------------

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (bucket-wise integer add)."""
        if other.config != self.config:
            raise ConfigurationError(
                "cannot merge sketches with different configs: "
                f"{self.config} vs {other.config}"
            )
        self.count += other.count
        self.total += other.total
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)
        for index, weight in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + weight

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe state (bucket keys become strings)."""
        return {
            "count": self.count,
            "total": self.total,
            "vmin": None if self.count == 0 else self.vmin,
            "vmax": None if self.count == 0 else self.vmax,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], config: SketchConfig | None = None
    ) -> "QuantileSketch":
        """Rebuild a sketch serialized by :meth:`to_dict`."""
        sketch = cls(config)
        sketch.count = int(data["count"])
        sketch.total = float(data["total"])
        sketch.vmin = math.inf if data["vmin"] is None else float(data["vmin"])
        sketch.vmax = -math.inf if data["vmax"] is None else float(data["vmax"])
        sketch.buckets = {int(k): int(v) for k, v in data["buckets"].items()}
        return sketch

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(count={self.count}, mean={self.mean:.4g}, "
            f"buckets={len(self.buckets)})"
        )
