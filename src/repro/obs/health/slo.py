"""Declarative SLOs with multi-window multi-burn-rate alerting.

An :class:`SloConfig` states an objective — availability, a latency
target, quality acceptance — as a *good-event ratio* target (e.g.
99% of requests answered, 95% of requests under 250 ms).  The error
budget is ``1 - target``; the **burn rate** over a window is the
observed error ratio divided by that budget, so burn 1.0 spends the
budget exactly at the sustainable pace and burn 14.4 exhausts a
30-day budget in ~2 days.

Alerting follows the Google SRE multi-window multi-burn-rate recipe:
each :class:`BurnRule` pairs a *long* window (sustained damage) with a
*short* window (still happening right now) and fires only when **both**
exceed the rule's factor — the long window keeps one bad minute from
paging, the short window un-pages as soon as the bleeding stops.

Every timestamp comes from the caller (ultimately the injected
:class:`~repro.serve.clock.Clock`), and the good/bad tallies are
integer bucket counts, so alert transitions are bit-deterministic
under :class:`~repro.serve.clock.VirtualClock` and reproducible from a
replayed event log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ...errors import ConfigurationError
from ..events import EventLevel, current_event_log
from .. import names as obs_names
from .window import SlidingWindow, WindowConfig

__all__ = ["BurnRule", "SloConfig", "DEFAULT_BURN_RULES", "SloTracker"]


@dataclass(frozen=True)
class BurnRule:
    """One (long window, short window, factor) alerting condition."""

    long_s: float
    short_s: float
    factor: float
    severity: str = "page"
    #: Minimum events in the long window before the rule may fire, so
    #: one bad request in an idle fleet cannot page anyone.
    min_events: int = 1

    def __post_init__(self) -> None:
        if self.long_s <= 0 or self.short_s <= 0:
            raise ConfigurationError(
                f"burn windows must be positive, got {self.long_s}/{self.short_s}"
            )
        if self.short_s > self.long_s:
            raise ConfigurationError(
                f"short window {self.short_s}s exceeds long window {self.long_s}s"
            )
        if self.factor <= 0:
            raise ConfigurationError(f"factor must be positive, got {self.factor}")

    @property
    def key(self) -> str:
        """Stable id of this rule inside its SLO: ``<long>s/<short>s``."""
        return f"{self.long_s:g}s/{self.short_s:g}s"


#: The classic page/ticket pair, scaled to soak-test horizons: a fast
#: page on 5 min/1 min at 14.4x budget burn, a slower ticket on
#: 25 min/5 min at 6x.
DEFAULT_BURN_RULES = (
    BurnRule(long_s=300.0, short_s=60.0, factor=14.4, severity="page"),
    BurnRule(long_s=1500.0, short_s=300.0, factor=6.0, severity="ticket"),
)


@dataclass(frozen=True)
class SloConfig:
    """One declarative objective over a good-event ratio.

    Attributes
    ----------
    objective:
        Objective id from :data:`repro.obs.names.SLO_OBJECTIVES`.
    target:
        Good-event ratio target in (0, 1); the error budget is
        ``1 - target``.
    threshold_ms:
        For the latency objective: a sample is *good* when its value
        is at or under this many milliseconds.  ``None`` for
        objectives fed with explicit good/bad verdicts.
    rules:
        Burn-rate alert conditions evaluated over the sample stream.
    """

    objective: str
    target: float
    threshold_ms: float | None = None
    rules: tuple[BurnRule, ...] = DEFAULT_BURN_RULES

    def __post_init__(self) -> None:
        if self.objective not in obs_names.SLO_OBJECTIVES:
            raise ConfigurationError(
                f"unknown SLO objective {self.objective!r}; declared ids: "
                f"{sorted(obs_names.SLO_OBJECTIVES)}"
            )
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError(
                f"target must be in (0, 1), got {self.target}"
            )
        if self.threshold_ms is not None and self.threshold_ms <= 0:
            raise ConfigurationError(
                f"threshold_ms must be positive, got {self.threshold_ms}"
            )


class SloTracker:
    """Good/bad tallies plus burn-rate evaluation for one SLO."""

    __slots__ = ("config", "_total", "_bad", "_firing", "transitions")

    def __init__(self, config: SloConfig, window: WindowConfig) -> None:
        horizon = window.horizon_s
        for rule in config.rules:
            if rule.long_s > horizon:
                raise ConfigurationError(
                    f"burn rule {rule.key} of {config.objective!r} needs "
                    f"{rule.long_s:g}s of history but the window ring "
                    f"retains only {horizon:g}s"
                )
        self.config = config
        self._total = SlidingWindow(window, track_values=False)
        self._bad = SlidingWindow(window, track_values=False)
        self._firing: dict[str, bool] = {rule.key: False for rule in config.rules}
        #: Every state change, in evaluation order: dicts with ``at_s``,
        #: ``slo``, ``severity``, ``rule``, ``state``, ``burn_long``,
        #: ``burn_short``.
        self.transitions: list[dict[str, Any]] = []

    # -- feeding --------------------------------------------------------

    def sample(self, good: bool, now: float) -> None:
        """Record one good/bad event at ``now``."""
        self._total.observe(1.0, now)
        if not good:
            self._bad.observe(1.0, now)

    # -- evaluation -----------------------------------------------------

    def burn_rate(self, now: float, window_s: float) -> tuple[float, int]:
        """``(burn, total_events)`` over the trailing ``window_s``."""
        total = self._total.totals(now, horizon_s=window_s).count
        if total == 0:
            return 0.0, 0
        bad = self._bad.totals(now, horizon_s=window_s).count
        budget = 1.0 - self.config.target
        return (bad / total) / budget, total

    def evaluate(self, now: float) -> list[dict[str, Any]]:
        """Evaluate every rule at ``now``; return per-rule gauge dicts.

        State changes are appended to :attr:`transitions` and emitted to
        the ambient event log, stamped with the caller's clock — under
        ``VirtualClock`` a replayed run reproduces identical timestamps.
        """
        gauges: list[dict[str, Any]] = []
        events = current_event_log()
        for rule in self.config.rules:
            burn_long, total_long = self.burn_rate(now, rule.long_s)
            burn_short, _ = self.burn_rate(now, rule.short_s)
            firing = (
                total_long >= rule.min_events
                and burn_long > rule.factor
                and burn_short > rule.factor
            )
            was_firing = self._firing[rule.key]
            if firing != was_firing:
                self._firing[rule.key] = firing
                transition = {
                    "at_s": round(now, 6),
                    "slo": self.config.objective,
                    "severity": rule.severity,
                    "rule": rule.key,
                    "state": "fired" if firing else "resolved",
                    "burn_long": round(burn_long, 6),
                    "burn_short": round(burn_short, 6),
                }
                self.transitions.append(transition)
                if firing:
                    events.emit(
                        obs_names.EVENT_SLO_ALERT_FIRED,
                        level=EventLevel.ERROR,
                        slo=self.config.objective,
                        severity=rule.severity,
                        rule=rule.key,
                        at_s=transition["at_s"],
                        burn_long=transition["burn_long"],
                        burn_short=transition["burn_short"],
                    )
                else:
                    events.emit(
                        obs_names.EVENT_SLO_ALERT_RESOLVED,
                        level=EventLevel.INFO,
                        slo=self.config.objective,
                        severity=rule.severity,
                        rule=rule.key,
                        at_s=transition["at_s"],
                        burn_long=transition["burn_long"],
                        burn_short=transition["burn_short"],
                    )
            gauges.append(
                {
                    "rule": rule.key,
                    "severity": rule.severity,
                    "factor": rule.factor,
                    "burn_long": round(burn_long, 6),
                    "burn_short": round(burn_short, 6),
                    "events_long": total_long,
                    "firing": firing,
                }
            )
        return gauges

    @property
    def firing(self) -> bool:
        """True while any rule of this SLO is in the fired state."""
        return any(self._firing.values())
