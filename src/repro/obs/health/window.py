"""Mergeable sliding-window aggregator: a ring of time buckets.

A :class:`SlidingWindow` covers the trailing ``bucket_s * num_buckets``
seconds with fixed-width buckets, each holding exact count/sum/min/max
moments plus (for distributions) a mergeable
:class:`~repro.obs.health.sketch.QuantileSketch`.  Buckets are aligned
to the absolute epoch grid (``bucket index = floor(now / bucket_s)``),
which is what makes two windows fed from *different processes*
mergeable: the grid is a pure function of the injected clock, not of
either window's construction time.

Expiry is lazy and allocation-free: the ring slot for a new epoch is
recycled in place, and reads simply skip buckets whose epoch has fallen
out of the horizon.  Nothing here reads a wall clock — every operation
takes ``now`` from the caller, so the whole tier runs deterministically
under :class:`~repro.serve.clock.VirtualClock`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from ...errors import ConfigurationError
from .sketch import QuantileSketch, SketchConfig

__all__ = ["WindowConfig", "WindowSnapshot", "SlidingWindow"]


@dataclass(frozen=True)
class WindowConfig:
    """Bucket grid of a sliding window.

    The defaults — 5 s buckets, 360 of them — retain 30 minutes, enough
    to cover the default long burn-rate window with one ring.
    """

    bucket_s: float = 5.0
    num_buckets: int = 360
    sketch: SketchConfig = field(default_factory=SketchConfig)

    def __post_init__(self) -> None:
        if self.bucket_s <= 0.0:
            raise ConfigurationError(
                f"bucket_s must be positive, got {self.bucket_s}"
            )
        if self.num_buckets < 1:
            raise ConfigurationError(
                f"num_buckets must be >= 1, got {self.num_buckets}"
            )

    @property
    def horizon_s(self) -> float:
        """Maximum lookback the ring can answer."""
        return self.bucket_s * self.num_buckets


@dataclass(frozen=True)
class WindowSnapshot:
    """Aggregates over one trailing horizon, plus quantile estimates."""

    count: int
    total: float
    vmin: float | None
    vmax: float | None
    rate_per_s: float
    quantiles: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form with stable float rounding."""
        payload: dict[str, Any] = {
            "count": self.count,
            "total": round(self.total, 6),
            "min": None if self.vmin is None else round(self.vmin, 6),
            "max": None if self.vmax is None else round(self.vmax, 6),
            "rate_per_s": round(self.rate_per_s, 6),
        }
        if self.quantiles:
            payload["quantiles"] = {
                key: round(value, 6) for key, value in self.quantiles.items()
            }
        return payload


class _Bucket:
    """One epoch's accumulator; recycled in place when its slot turns over."""

    __slots__ = ("epoch", "count", "total", "vmin", "vmax", "sketch")

    def __init__(self, epoch: int, sketch: QuantileSketch | None) -> None:
        self.epoch = epoch
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.sketch = sketch

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "epoch": self.epoch,
            "count": self.count,
            "total": self.total,
            "vmin": None if self.count == 0 else self.vmin,
            "vmax": None if self.count == 0 else self.vmax,
        }
        if self.sketch is not None:
            payload["sketch"] = self.sketch.to_dict()
        return payload


class SlidingWindow:
    """Ring of epoch-aligned buckets; observe / merge / read.

    Parameters
    ----------
    config:
        Bucket grid shared by every window that will ever be merged
        into this one (merging across grids is a
        :class:`~repro.errors.ConfigurationError`).
    track_values:
        ``True`` keeps a quantile sketch per bucket (distribution
        series); ``False`` keeps only the exact moments (counter
        series), which makes ``observe`` an O(1) integer bump.
    """

    __slots__ = ("config", "track_values", "_ring")

    def __init__(self, config: WindowConfig | None = None, *, track_values: bool = True) -> None:
        self.config = config or WindowConfig()
        self.track_values = track_values
        self._ring: list[_Bucket | None] = [None] * self.config.num_buckets

    # -- writing --------------------------------------------------------

    def _epoch(self, now: float) -> int:
        return int(now // self.config.bucket_s)

    def _bucket_for(self, epoch: int) -> _Bucket:
        slot = epoch % self.config.num_buckets
        bucket = self._ring[slot]
        if bucket is None or bucket.epoch != epoch:
            bucket = _Bucket(
                epoch,
                QuantileSketch(self.config.sketch) if self.track_values else None,
            )
            self._ring[slot] = bucket
        return bucket

    def observe(self, value: float, now: float, weight: int = 1) -> None:
        """Record ``value`` (``weight`` times) in the bucket of ``now``."""
        if weight <= 0:
            return
        bucket = self._bucket_for(self._epoch(now))
        bucket.count += weight
        bucket.total += value * weight
        if value < bucket.vmin:
            bucket.vmin = value
        if value > bucket.vmax:
            bucket.vmax = value
        if bucket.sketch is not None:
            bucket.sketch.observe(value, weight)

    # -- merging --------------------------------------------------------

    def merge(self, other: "SlidingWindow") -> None:
        """Fold another window's live buckets into this ring.

        Buckets combine epoch-wise; an incoming bucket older than the
        one its slot currently holds is expired data and is dropped,
        and an incoming *newer* bucket replaces the stale resident.
        """
        if other.config != self.config:
            raise ConfigurationError(
                "cannot merge windows with different configs: "
                f"{self.config} vs {other.config}"
            )
        for incoming in other._ring:
            if incoming is None or incoming.count == 0:
                continue
            slot = incoming.epoch % self.config.num_buckets
            resident = self._ring[slot]
            if resident is None or resident.epoch < incoming.epoch:
                fresh = _Bucket(
                    incoming.epoch,
                    QuantileSketch(self.config.sketch) if self.track_values else None,
                )
                self._ring[slot] = resident = fresh
            elif resident.epoch > incoming.epoch:
                continue
            resident.count += incoming.count
            resident.total += incoming.total
            resident.vmin = min(resident.vmin, incoming.vmin)
            resident.vmax = max(resident.vmax, incoming.vmax)
            if resident.sketch is not None and incoming.sketch is not None:
                resident.sketch.merge(incoming.sketch)

    # -- reading --------------------------------------------------------

    def _live_buckets(self, now: float, horizon_s: float | None) -> list[_Bucket]:
        horizon = self.config.horizon_s if horizon_s is None else horizon_s
        current = self._epoch(now)
        span = max(1, min(self.config.num_buckets, math.ceil(horizon / self.config.bucket_s)))
        oldest = current - span + 1
        return [
            bucket
            for bucket in self._ring
            if bucket is not None
            and bucket.count > 0
            and oldest <= bucket.epoch <= current
        ]

    def totals(
        self,
        now: float,
        *,
        horizon_s: float | None = None,
        quantiles: tuple[float, ...] = (),
    ) -> WindowSnapshot:
        """Aggregate the trailing ``horizon_s`` (full ring by default)."""
        live = self._live_buckets(now, horizon_s)
        count = sum(bucket.count for bucket in live)
        total = sum(bucket.total for bucket in live)
        horizon = self.config.horizon_s if horizon_s is None else horizon_s
        qvals: dict[str, float] = {}
        if quantiles and self.track_values and count:
            merged = QuantileSketch(self.config.sketch)
            for bucket in live:
                if bucket.sketch is not None:
                    merged.merge(bucket.sketch)
            qvals = {f"p{q * 100:g}": merged.quantile(q) for q in quantiles}
        return WindowSnapshot(
            count=count,
            total=total,
            vmin=min((b.vmin for b in live), default=None),
            vmax=max((b.vmax for b in live), default=None),
            rate_per_s=count / horizon if horizon > 0 else 0.0,
            quantiles=qvals,
        )

    # -- serialization --------------------------------------------------

    def export_state(self) -> dict[str, Any]:
        """JSON-safe live buckets, for shipping across a process boundary."""
        return {
            "buckets": [
                bucket.to_dict()
                for bucket in self._ring
                if bucket is not None and bucket.count > 0
            ],
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Fold an :meth:`export_state` payload into this ring."""
        other = SlidingWindow(self.config, track_values=self.track_values)
        for data in state["buckets"]:
            bucket = other._bucket_for(int(data["epoch"]))
            bucket.count = int(data["count"])
            bucket.total = float(data["total"])
            bucket.vmin = math.inf if data["vmin"] is None else float(data["vmin"])
            bucket.vmax = -math.inf if data["vmax"] is None else float(data["vmax"])
            if bucket.sketch is not None and "sketch" in data:
                bucket.sketch = QuantileSketch.from_dict(
                    data["sketch"], self.config.sketch
                )
        self.merge(other)
