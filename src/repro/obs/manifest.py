"""Run provenance: who computed what, with which code, config, and seed.

A screening result that cannot name the configuration, seed, and code
revision that produced it is not auditable — and clinical-screening
reproductions are judged on exactly that audit trail.  The
:class:`RunManifest` freezes the full provenance of one run:

- the ``EarSonarConfig`` fingerprint (the same content hash that keys
  the feature cache, so manifest and cache namespace can never drift),
- the RNG seed,
- interpreter / numpy / package versions, platform and hostname,
- the git revision of the working tree (when available), and
- the exact CLI ``argv``.

Manifests serialize to JSON and ride inside every trace file the
exporters write, so a flamegraph, a metrics dump, and a result table
all answer "which run is this?" the same way.

This module lives outside the QA001 determinism boundary on purpose:
provenance *should* read wall clocks and ambient machine identity —
that is its job — while the science packages stay clock-free.
"""

from __future__ import annotations

import json
import platform
import socket
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Protocol

__all__ = ["RunManifest", "capture_manifest", "git_revision"]


class _Fingerprintable(Protocol):
    """Anything exposing a ``fingerprint() -> str`` content hash."""

    def fingerprint(self) -> str: ...


def git_revision(start: Path | None = None) -> str | None:
    """Best-effort ``git rev-parse HEAD`` of the tree containing ``start``.

    Returns ``None`` outside a git checkout, when git is missing, or on
    any other failure — provenance capture must never break a run.
    """
    cwd = start if start is not None else Path(__file__).resolve().parent
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _package_version() -> str:
    from importlib.metadata import PackageNotFoundError, version

    try:
        return version("repro")
    except PackageNotFoundError:  # pragma: no cover - not installed as a dist
        return "unknown"


@dataclass(frozen=True)
class RunManifest:
    """Immutable provenance record of one run.

    Attributes
    ----------
    created_at:
        ISO-8601 UTC wall-clock timestamp of manifest capture.
    config_fingerprint:
        ``EarSonarConfig.fingerprint()`` of the run's configuration
        (empty string when no config was supplied).
    seed:
        The run's RNG seed, if one governed it.
    argv:
        The CLI invocation, ``sys.argv`` verbatim.
    python_version / numpy_version / package_version:
        Toolchain identity.
    platform:
        ``platform.platform()`` string.
    hostname:
        Machine identity (``socket.gethostname()``).
    git_sha:
        Revision of the source tree, or ``None`` outside a checkout.
    extra:
        Free-form caller-supplied context (workload knobs, labels).
    """

    created_at: str
    config_fingerprint: str
    seed: int | None
    argv: tuple[str, ...]
    python_version: str
    numpy_version: str
    package_version: str
    platform: str
    hostname: str
    git_sha: str | None
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (``argv`` becomes a list for JSON)."""
        data = asdict(self)
        data["argv"] = list(self.argv)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest serialized by :meth:`to_dict`."""
        known = {
            "created_at": str(data["created_at"]),
            "config_fingerprint": str(data.get("config_fingerprint", "")),
            "seed": data.get("seed"),
            "argv": tuple(data.get("argv", ())),
            "python_version": str(data.get("python_version", "")),
            "numpy_version": str(data.get("numpy_version", "")),
            "package_version": str(data.get("package_version", "")),
            "platform": str(data.get("platform", "")),
            "hostname": str(data.get("hostname", "")),
            "git_sha": data.get("git_sha"),
            "extra": dict(data.get("extra", {})),
        }
        return cls(**known)

    def to_json(self) -> str:
        """Pretty JSON form."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: str | Path) -> Path:
        """Write the manifest to ``path`` as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        """Read a manifest written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def capture_manifest(
    config: _Fingerprintable | None = None,
    seed: int | None = None,
    argv: list[str] | None = None,
    extra: dict[str, Any] | None = None,
) -> RunManifest:
    """Snapshot the provenance of the current process.

    ``config`` is anything with a ``fingerprint()`` method (normally an
    ``EarSonarConfig``); ``argv`` defaults to ``sys.argv``.
    """
    import numpy as np

    return RunManifest(
        created_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        config_fingerprint=config.fingerprint() if config is not None else "",
        seed=seed,
        argv=tuple(sys.argv if argv is None else argv),
        python_version=platform.python_version(),
        numpy_version=str(np.__version__),
        package_version=_package_version(),
        platform=platform.platform(),
        hostname=socket.gethostname(),
        git_sha=git_revision(),
        extra=dict(extra or {}),
    )
