"""Canonical telemetry names: the single registry of spans, events, and metrics.

Every span the tracer opens, every structured event the log emits, and
every counter/histogram the runtime records is named by a constant
defined here.  Centralizing the vocabulary buys three things:

- dashboards and trace tooling can rely on stable names (renaming a
  stage is a reviewed change to this module, not a drive-by string
  edit);
- the QA007 lint rule can enforce that library code never invents span
  or event names inline — a literal string passed to ``.span()`` or
  ``.emit()`` outside a ``__main__`` module is a finding;
- the canonical-emission test can assert that every documented metric
  name is actually produced by an end-to-end batch run, so the
  :class:`~repro.runtime.metrics.RuntimeMetrics` docstring cannot
  drift from reality.

Names are dotted, lowercase, and grouped by subsystem prefix
(``stage.``, ``cache.``, ``executor.``, ``quality.``, ``breaker.``,
``recordings.``, ``serve.``); histogram names carry their unit as a
suffix (``_ms``).

The online service (:mod:`repro.serve`) has its own canonical sets
(``SERVE_CANONICAL_COUNTERS`` / ``SERVE_CANONICAL_HISTOGRAMS``),
asserted by the serving end-to-end emission suite, plus the
:func:`tenant_counter` pattern for per-tenant counters whose tenant
segment is dynamic by nature.
"""

from __future__ import annotations

__all__ = [
    "SPAN_RECORDING",
    "SPAN_RETRY_ATTEMPT",
    "SPAN_QUALITY_GATE",
    "SPAN_CACHE_LOOKUP",
    "SPAN_CHUNK",
    "SPAN_STAGE_BANDPASS",
    "SPAN_STAGE_EVENTS",
    "SPAN_STAGE_PARITY",
    "SPAN_STAGE_SPECTRUM",
    "SPAN_STAGE_FEATURES",
    "SPAN_STAGE_MFCC",
    "SPAN_STAGE_RAKE",
    "SPAN_STAGE_CALIBRATION",
    "SPAN_NAMES",
    "STAGE_SPAN_NAMES",
    "EVENT_BATCH_STARTED",
    "EVENT_BATCH_FINISHED",
    "EVENT_BREAKER_OPENED",
    "EVENT_CACHE_CORRUPT_EVICTED",
    "EVENT_RECORDING_QUARANTINED",
    "EVENT_SERIAL_FALLBACK",
    "EVENT_EXPERIMENT_STARTED",
    "EVENT_EXPERIMENT_FINISHED",
    "EVENT_KERNEL_BACKEND_SELECTED",
    "EVENT_KERNEL_BACKEND_FALLBACK",
    "EVENT_KERNEL_AUTOTUNE_DECIDED",
    "EVENT_SHM_FALLBACK",
    "EVENT_NAMES",
    "METRIC_RECORDINGS_SUBMITTED",
    "METRIC_RECORDINGS_OK",
    "METRIC_RECORDINGS_FAILED",
    "METRIC_RECORDINGS_RETRIED",
    "METRIC_PIPELINE_CALLS",
    "METRIC_CACHE_HITS",
    "METRIC_CACHE_MISSES",
    "METRIC_CACHE_CORRUPT",
    "METRIC_CHUNKS_DISPATCHED",
    "METRIC_SERIAL_FALLBACK",
    "METRIC_TIMEOUTS",
    "METRIC_WORKER_FAILURES",
    "METRIC_CHUNKS_SKIPPED",
    "METRIC_BREAKER_OPENED",
    "METRIC_QUALITY_DEGRADED",
    "METRIC_QUALITY_REJECTED",
    "METRIC_SHM_SEGMENTS_CREATED",
    "METRIC_SHM_SEGMENTS_RELEASED",
    "METRIC_SHM_BYTES_SAVED",
    "METRIC_SHM_FALLBACKS",
    "METRIC_SHM_ORPHANS_CLEANED",
    "METRIC_REVERB_TAPS_REMOVED",
    "METRIC_QUALITY_ECHO_DOMINANT",
    "HIST_RECORDING_MS",
    "HIST_STAGE_BANDPASS_MS",
    "HIST_STAGE_FEATURES_MS",
    "HIST_BATCH_MS",
    "HIST_SHM_HANDOFF_MS",
    "HIST_JIT_COMPILE_MS",
    "HIST_CALIB_OFFSET_DB",
    "CANONICAL_COUNTERS",
    "CANONICAL_HISTOGRAMS",
    "SHM_DEGRADED_COUNTERS",
    "ECHO_CONDITIONAL_COUNTERS",
    "SPAN_SERVE_ADMISSION",
    "SPAN_SERVE_BATCH",
    "EVENT_SERVE_STARTED",
    "EVENT_SERVE_STOPPED",
    "EVENT_SERVE_REJECTED",
    "EVENT_SERVE_BATCH_DISPATCHED",
    "EVENT_SERVE_POOL_RESIZED",
    "METRIC_SERVE_SUBMITTED",
    "METRIC_SERVE_ADMITTED",
    "METRIC_SERVE_COMPLETED",
    "METRIC_SERVE_FAST_REJECTED",
    "METRIC_SERVE_REJECTED_RATE_LIMITED",
    "METRIC_SERVE_REJECTED_QUEUE_FULL",
    "METRIC_SERVE_REJECTED_OVERLOAD",
    "METRIC_SERVE_REJECTED_SHUTDOWN",
    "METRIC_SERVE_BATCHES_DISPATCHED",
    "METRIC_SERVE_BATCH_FAILURES",
    "METRIC_SERVE_POOL_RESIZES",
    "HIST_SERVE_REQUEST_MS",
    "HIST_SERVE_QUEUE_MS",
    "HIST_SERVE_BATCH_MS",
    "SERVE_CANONICAL_COUNTERS",
    "SERVE_CANONICAL_HISTOGRAMS",
    "SERVE_REJECTION_COUNTERS",
    "METRIC_TENANT_SUBMITTED",
    "METRIC_TENANT_COMPLETED",
    "METRIC_TENANT_REJECTED",
    "tenant_counter",
    "SPAN_HEALTH_SNAPSHOT",
    "EVENT_HEALTH_SNAPSHOT",
    "EVENT_SLO_ALERT_FIRED",
    "EVENT_SLO_ALERT_RESOLVED",
    "HEALTH_SCREENINGS",
    "HEALTH_REQUESTS",
    "HEALTH_RAKE_TAPS",
    "HEALTH_RECORDING_MS",
    "HEALTH_REQUEST_MS",
    "HEALTH_CALIB_OFFSET_DB",
    "HEALTH_COUNTER_SERIES",
    "HEALTH_DISTRIBUTION_SERIES",
    "SLO_AVAILABILITY",
    "SLO_LATENCY",
    "SLO_QUALITY",
    "SLO_OBJECTIVES",
    "HEALTH_LABEL_KEYS",
    "registry",
]

# -- span names ---------------------------------------------------------

#: Root span of one recording's trace (attrs: index, participant, day).
SPAN_RECORDING = "recording"
#: One processing attempt under the retry policy (attr: attempt).
SPAN_RETRY_ATTEMPT = "retry.attempt"
#: Pre-DSP quality-gate assessment (attrs: verdict, reasons).
SPAN_QUALITY_GATE = "quality.gate"
#: Parent-side feature-cache lookup for one recording (attrs: index, hit).
SPAN_CACHE_LOOKUP = "cache.lookup"
#: Parent-side wait for one pool chunk (attrs: chunk, size).
SPAN_CHUNK = "executor.chunk"
#: Butterworth band-pass over the raw capture.
SPAN_STAGE_BANDPASS = "stage.bandpass"
#: Adaptive-energy chirp/echo event detection (attr: events).
SPAN_STAGE_EVENTS = "stage.events"
#: Parity-decomposition eardrum-echo segmentation (attr: echoes).
SPAN_STAGE_PARITY = "stage.parity"
#: Per-echo spectra, TX deconvolution, and curve averaging.
SPAN_STAGE_SPECTRUM = "stage.spectrum"
#: Feature-vector assembly (curve bins + statistics + MFCCs).
SPAN_STAGE_FEATURES = "stage.features"
#: MFCC extraction of the mean echo segment (child of stage.features).
SPAN_STAGE_MFCC = "stage.mfcc"
#: Rake cancellation of early canal reflections (attr: removed).
#: Conditional: opened only when ``EarSonarConfig.reverb`` is enabled.
SPAN_STAGE_RAKE = "stage.rake"
#: Calibration-offset estimation over the per-echo curves (attrs:
#: offset_db, stable).  Conditional: opened only when
#: ``EarSonarConfig.calibration`` is enabled.
SPAN_STAGE_CALIBRATION = "stage.calibration"

#: Admission decision for one service request (attrs: tenant, outcome).
SPAN_SERVE_ADMISSION = "serve.admission"
#: One dispatched micro-batch (attrs: batch, size, tenants).
SPAN_SERVE_BATCH = "serve.batch"
#: Snapshot assembly inside :meth:`HealthMonitor.snapshot` (attrs:
#: series, alerts).  Opened only when a real tracer is ambient.
SPAN_HEALTH_SNAPSHOT = "health.snapshot_build"

#: The in-recording pipeline stages, in execution order.
STAGE_SPAN_NAMES = (
    SPAN_STAGE_BANDPASS,
    SPAN_STAGE_EVENTS,
    SPAN_STAGE_PARITY,
    SPAN_STAGE_SPECTRUM,
    SPAN_STAGE_FEATURES,
    SPAN_STAGE_MFCC,
)

#: Every registered span name.
SPAN_NAMES = frozenset(
    {
        SPAN_RECORDING,
        SPAN_RETRY_ATTEMPT,
        SPAN_QUALITY_GATE,
        SPAN_CACHE_LOOKUP,
        SPAN_CHUNK,
        SPAN_SERVE_ADMISSION,
        SPAN_SERVE_BATCH,
        SPAN_STAGE_RAKE,
        SPAN_STAGE_CALIBRATION,
        SPAN_HEALTH_SNAPSHOT,
        *STAGE_SPAN_NAMES,
    }
)

# -- structured-event names --------------------------------------------

#: A batch run began (fields: recordings, workers).
EVENT_BATCH_STARTED = "batch.started"
#: A batch run completed (fields: ok, failed, seconds).
EVENT_BATCH_FINISHED = "batch.finished"
#: The circuit breaker opened (field: consecutive_failures).
EVENT_BREAKER_OPENED = "breaker.opened"
#: An unreadable disk cache entry was evicted (field: entry).
EVENT_CACHE_CORRUPT_EVICTED = "cache.corrupt_evicted"
#: One recording was quarantined (fields: participant, error_type).
EVENT_RECORDING_QUARANTINED = "recording.quarantined"
#: A parallel run degraded to serial execution (field: reason).
EVENT_SERIAL_FALLBACK = "executor.serial_fallback"
#: An experiments-CLI run started (field: experiment).
EVENT_EXPERIMENT_STARTED = "experiment.started"
#: An experiments-CLI run finished (fields: experiment, seconds).
EVENT_EXPERIMENT_FINISHED = "experiment.finished"
#: A kernel backend was chosen for this process (fields: backend,
#: requested, jit_available).  Announced once per process.
EVENT_KERNEL_BACKEND_SELECTED = "kernels.backend_selected"
#: The requested JIT backend is unavailable and the NumPy reference
#: backend was substituted (fields: requested, reason).  Emitted at
#: WARNING level, once per process.
EVENT_KERNEL_BACKEND_FALLBACK = "kernels.backend_fallback"
#: The autotuner timed the candidates of one (op, shape, dtype) and
#: pinned a winner (fields: op, shape, dtype, choice, plus one
#: ``ms_<candidate>`` timing per candidate).
EVENT_KERNEL_AUTOTUNE_DECIDED = "kernels.autotune_decided"
#: A shared-memory handoff degraded to the pickled path (fields:
#: reason).  Emitted at WARNING level.
EVENT_SHM_FALLBACK = "shm.fallback"
#: The online screening service started (fields: workers, max_depth).
EVENT_SERVE_STARTED = "serve.started"
#: The service stopped (fields: completed, rejected, drained).
EVENT_SERVE_STOPPED = "serve.stopped"
#: Admission control rejected a request (fields: tenant, reason,
#: retry_after_s).
EVENT_SERVE_REJECTED = "serve.request_rejected"
#: A micro-batch was handed to the executor (fields: batch, size, ms).
EVENT_SERVE_BATCH_DISPATCHED = "serve.batch_dispatched"
#: The SLO controller resized the worker pool (fields: previous,
#: workers, p95_ms).
EVENT_SERVE_POOL_RESIZED = "serve.pool_resized"
#: A periodic fleet-health snapshot was taken (fields: seq, at_s,
#: alerts_active, series).  The full snapshot travels out of band (the
#: serve loop's snapshot sink / ``--health-out``); the event carries a
#: scalar summary so an ``EventLog`` replay can reconstruct the alert
#: timeline without megabyte field payloads.
EVENT_HEALTH_SNAPSHOT = "health.snapshot"
#: A burn-rate rule crossed its threshold on both its windows (fields:
#: slo, severity, at_s, burn_long, burn_short).
EVENT_SLO_ALERT_FIRED = "slo.alert_fired"
#: A previously firing burn-rate rule dropped back below threshold
#: (fields: slo, severity, at_s, burn_long, burn_short).
EVENT_SLO_ALERT_RESOLVED = "slo.alert_resolved"

#: Every registered structured-event name.
EVENT_NAMES = frozenset(
    {
        EVENT_BATCH_STARTED,
        EVENT_BATCH_FINISHED,
        EVENT_BREAKER_OPENED,
        EVENT_CACHE_CORRUPT_EVICTED,
        EVENT_RECORDING_QUARANTINED,
        EVENT_SERIAL_FALLBACK,
        EVENT_EXPERIMENT_STARTED,
        EVENT_EXPERIMENT_FINISHED,
        EVENT_KERNEL_BACKEND_SELECTED,
        EVENT_KERNEL_BACKEND_FALLBACK,
        EVENT_KERNEL_AUTOTUNE_DECIDED,
        EVENT_SHM_FALLBACK,
        EVENT_SERVE_STARTED,
        EVENT_SERVE_STOPPED,
        EVENT_SERVE_REJECTED,
        EVENT_SERVE_BATCH_DISPATCHED,
        EVENT_SERVE_POOL_RESIZED,
        EVENT_HEALTH_SNAPSHOT,
        EVENT_SLO_ALERT_FIRED,
        EVENT_SLO_ALERT_RESOLVED,
    }
)

# -- metric names -------------------------------------------------------

#: Recordings handed to :meth:`BatchExecutor.run`.
METRIC_RECORDINGS_SUBMITTED = "recordings.submitted"
#: Recordings that produced a :class:`ProcessedRecording`.
METRIC_RECORDINGS_OK = "recordings.ok"
#: Recordings quarantined as :class:`FailedRecording`.
METRIC_RECORDINGS_FAILED = "recordings.failed"
#: Extra attempts granted by the retry policy.
METRIC_RECORDINGS_RETRIED = "recordings.retried"
#: Actual DSP invocations (cache misses only).
METRIC_PIPELINE_CALLS = "pipeline.calls"
#: Cache lookups served from the cache.
METRIC_CACHE_HITS = "cache.hits"
#: Cache lookups that had to run the pipeline.
METRIC_CACHE_MISSES = "cache.misses"
#: Unreadable disk cache entries evicted (each also a miss).
METRIC_CACHE_CORRUPT = "cache.corrupt"
#: Pool tasks submitted by the parallel path.
METRIC_CHUNKS_DISPATCHED = "chunks.dispatched"
#: Parallel runs degraded to serial execution.
METRIC_SERIAL_FALLBACK = "executor.serial_fallback"
#: Pool tasks that missed their deadline.
METRIC_TIMEOUTS = "executor.timeouts"
#: Chunks lost to worker crashes or injected faults.
METRIC_WORKER_FAILURES = "executor.worker_failures"
#: Chunks quarantined by an open circuit breaker.
METRIC_CHUNKS_SKIPPED = "executor.chunks_skipped"
#: Circuit-breaker open transitions.
METRIC_BREAKER_OPENED = "breaker.opened"
#: Quality-gate DEGRADE verdicts (and pipeline-degraded results).
METRIC_QUALITY_DEGRADED = "quality.degraded"
#: Quality-gate REJECT verdicts.
METRIC_QUALITY_REJECTED = "quality.rejected"
#: Shared-memory segments created for zero-copy chunk handoff.
METRIC_SHM_SEGMENTS_CREATED = "shm.segments_created"
#: Shared-memory segments released (unlinked) after chunk completion.
METRIC_SHM_SEGMENTS_RELEASED = "shm.segments_released"
#: Waveform bytes handed to workers by reference instead of pickling.
METRIC_SHM_BYTES_SAVED = "shm.bytes_saved"
#: Chunk handoffs that degraded to the pickled path (shm unavailable
#: or segment creation failed).  Conditional: only emitted in degraded
#: environments, so it lives in :data:`SHM_DEGRADED_COUNTERS`.
METRIC_SHM_FALLBACKS = "shm.fallbacks"
#: Orphaned ``/dev/shm`` segments reclaimed by the cleanup sweep.
#: Conditional: only emitted after a worker/parent crash left litter.
METRIC_SHM_ORPHANS_CLEANED = "shm.orphans_cleaned"
#: Early reflections subtracted by the rake stage.  Conditional: only
#: emitted when ``EarSonarConfig.reverb`` is enabled and the rake
#: removed at least one tap, so it lives in
#: :data:`ECHO_CONDITIONAL_COUNTERS`.
METRIC_REVERB_TAPS_REMOVED = "reverb.taps_removed"
#: Recordings whose quality report carries the ``echo_dominant``
#: reason (rejected as unusable multipath, or degraded-but-rescued
#: reverberant captures).  Conditional: healthy batches never emit it.
METRIC_QUALITY_ECHO_DOMINANT = "quality.echo_dominant"

#: Per-recording DSP wall time (band-pass + feature extraction).
HIST_RECORDING_MS = "recording_ms"
#: Band-pass stage wall time per recording.
HIST_STAGE_BANDPASS_MS = "stage.bandpass_ms"
#: Feature-extraction stage wall time per recording.
HIST_STAGE_FEATURES_MS = "stage.features_ms"
#: Whole-batch wall time per :meth:`BatchExecutor.run` call.
HIST_BATCH_MS = "batch_ms"
#: Parent-side cost of sharing one chunk's waveforms (copy into the
#: shared-memory arena + descriptor construction).
HIST_SHM_HANDOFF_MS = "shm.handoff_ms"
#: One-time kernel-backend warm-up cost per executor (numba compile
#: time; 0.0 when the NumPy backend is active).
HIST_JIT_COMPILE_MS = "kernels.jit_compile_ms"
#: Per-recording calibration offset estimate in dB (0.0 when the
#: estimation stage is disabled).
HIST_CALIB_OFFSET_DB = "calib.offset_db"

#: Every counter the runtime documents; the canonical-emission test
#: asserts each one is produced by an end-to-end batch scenario.
CANONICAL_COUNTERS = frozenset(
    {
        METRIC_RECORDINGS_SUBMITTED,
        METRIC_RECORDINGS_OK,
        METRIC_RECORDINGS_FAILED,
        METRIC_RECORDINGS_RETRIED,
        METRIC_PIPELINE_CALLS,
        METRIC_CACHE_HITS,
        METRIC_CACHE_MISSES,
        METRIC_CACHE_CORRUPT,
        METRIC_CHUNKS_DISPATCHED,
        METRIC_SERIAL_FALLBACK,
        METRIC_TIMEOUTS,
        METRIC_WORKER_FAILURES,
        METRIC_CHUNKS_SKIPPED,
        METRIC_BREAKER_OPENED,
        METRIC_QUALITY_DEGRADED,
        METRIC_QUALITY_REJECTED,
        METRIC_SHM_SEGMENTS_CREATED,
        METRIC_SHM_SEGMENTS_RELEASED,
        METRIC_SHM_BYTES_SAVED,
    }
)

#: Every histogram the runtime documents.
CANONICAL_HISTOGRAMS = frozenset(
    {
        HIST_RECORDING_MS,
        HIST_STAGE_BANDPASS_MS,
        HIST_STAGE_FEATURES_MS,
        HIST_BATCH_MS,
        HIST_SHM_HANDOFF_MS,
        HIST_JIT_COMPILE_MS,
        HIST_CALIB_OFFSET_DB,
    }
)

#: Counters that only fire in *degraded* environments (shared memory
#: unavailable, worker crash leaving orphaned segments).  They are
#: documented names — the leak test accepts them — but the canonical
#: emission test does not require a healthy batch run to produce them;
#: dedicated degraded-environment tests assert their emission instead.
SHM_DEGRADED_COUNTERS = frozenset(
    {
        METRIC_SHM_FALLBACKS,
        METRIC_SHM_ORPHANS_CLEANED,
    }
)

#: Counters that only fire on *reverberant or miscalibrated* inputs
#: (the rake subtracted a reflection, or the quality gate saw
#: echo-dominant multipath).  Documented names — the leak test accepts
#: them — but a healthy anechoic batch run is not required to produce
#: them; the echo-robustness tests assert their emission instead.
ECHO_CONDITIONAL_COUNTERS = frozenset(
    {
        METRIC_REVERB_TAPS_REMOVED,
        METRIC_QUALITY_ECHO_DOMINANT,
    }
)

# -- online-service (repro.serve) metric names --------------------------

#: Requests handed to :meth:`ScreeningService.submit` (pre-admission).
METRIC_SERVE_SUBMITTED = "serve.requests.submitted"
#: Requests that passed admission control into the bounded queue.
METRIC_SERVE_ADMITTED = "serve.requests.admitted"
#: Admitted requests that received a response (any outcome).
METRIC_SERVE_COMPLETED = "serve.requests.completed"
#: Requests answered by the pre-enqueue quality gate without queueing.
METRIC_SERVE_FAST_REJECTED = "serve.requests.fast_rejected"
#: Rejections: the tenant's token bucket was empty.
METRIC_SERVE_REJECTED_RATE_LIMITED = "serve.rejected.rate_limited"
#: Rejections: the bounded request queue was at capacity.
METRIC_SERVE_REJECTED_QUEUE_FULL = "serve.rejected.queue_full"
#: Rejections: estimated queue wait exceeded the SLO headroom.
METRIC_SERVE_REJECTED_OVERLOAD = "serve.rejected.overload"
#: Rejections: the service was stopping.
METRIC_SERVE_REJECTED_SHUTDOWN = "serve.rejected.shutdown"
#: Micro-batches handed to the batch executor.
METRIC_SERVE_BATCHES_DISPATCHED = "serve.batches.dispatched"
#: Micro-batches whose executor call raised (requests answered as failed).
METRIC_SERVE_BATCH_FAILURES = "serve.batch_failures"
#: Worker-pool resizes applied by the SLO latency controller.
METRIC_SERVE_POOL_RESIZES = "serve.pool_resizes"

#: Submit-to-response wall time per request.
HIST_SERVE_REQUEST_MS = "serve.request_ms"
#: Admission-to-dispatch wait per request.
HIST_SERVE_QUEUE_MS = "serve.queue_ms"
#: Executor wall time per dispatched micro-batch.
HIST_SERVE_BATCH_MS = "serve.batch_ms"

#: Rejection counter for each :class:`~repro.errors.AdmissionRejected`
#: reason the service can emit.
SERVE_REJECTION_COUNTERS = {
    "rate_limited": METRIC_SERVE_REJECTED_RATE_LIMITED,
    "queue_full": METRIC_SERVE_REJECTED_QUEUE_FULL,
    "overload": METRIC_SERVE_REJECTED_OVERLOAD,
    "shutdown": METRIC_SERVE_REJECTED_SHUTDOWN,
}

#: Every counter the online service documents; the serving emission
#: test asserts each one is produced by an end-to-end service scenario.
SERVE_CANONICAL_COUNTERS = frozenset(
    {
        METRIC_SERVE_SUBMITTED,
        METRIC_SERVE_ADMITTED,
        METRIC_SERVE_COMPLETED,
        METRIC_SERVE_FAST_REJECTED,
        METRIC_SERVE_REJECTED_RATE_LIMITED,
        METRIC_SERVE_REJECTED_QUEUE_FULL,
        METRIC_SERVE_REJECTED_OVERLOAD,
        METRIC_SERVE_REJECTED_SHUTDOWN,
        METRIC_SERVE_BATCHES_DISPATCHED,
        METRIC_SERVE_BATCH_FAILURES,
        METRIC_SERVE_POOL_RESIZES,
    }
)

#: Every histogram the online service documents.
SERVE_CANONICAL_HISTOGRAMS = frozenset(
    {
        HIST_SERVE_REQUEST_MS,
        HIST_SERVE_QUEUE_MS,
        HIST_SERVE_BATCH_MS,
    }
)

# -- per-tenant counter pattern ----------------------------------------

#: Per-tenant requests submitted (see :func:`tenant_counter`).
METRIC_TENANT_SUBMITTED = "serve.tenant.submitted"
#: Per-tenant responses delivered.
METRIC_TENANT_COMPLETED = "serve.tenant.completed"
#: Per-tenant admission rejections.
METRIC_TENANT_REJECTED = "serve.tenant.rejected"


# -- fleet-health (repro.obs.health) names ------------------------------

#: Screening outcomes per verdict/reason (labels: verdict, reason).
#: Fed by the executor's parent-side outcome hook.
HEALTH_SCREENINGS = "health.screenings"
#: Service answers per tenant and outcome (labels: tenant, outcome).
HEALTH_REQUESTS = "health.requests"
#: Early-reflection taps the rake stage subtracted, rolled up per
#: device model (labels: device_model).  Fed by the pipeline's rake
#: hook — worker-local monitors ship the counts home for merging.
HEALTH_RAKE_TAPS = "health.rake_taps"

#: Per-recording DSP wall time distribution (labels: lane).
HEALTH_RECORDING_MS = "health.recording_ms"
#: Submit-to-response latency distribution per tenant (labels: tenant).
HEALTH_REQUEST_MS = "health.request_ms"
#: Calibration-offset estimates per device model (labels:
#: device_model) — the fleet-drift rollup the ROADMAP asked for.
HEALTH_CALIB_OFFSET_DB = "health.calib_offset_db"

#: Every health *counter* series the monitor documents.
HEALTH_COUNTER_SERIES = frozenset(
    {
        HEALTH_SCREENINGS,
        HEALTH_REQUESTS,
        HEALTH_RAKE_TAPS,
    }
)

#: Every health *distribution* series the monitor documents.
HEALTH_DISTRIBUTION_SERIES = frozenset(
    {
        HEALTH_RECORDING_MS,
        HEALTH_REQUEST_MS,
        HEALTH_CALIB_OFFSET_DB,
    }
)

#: SLO objective ids: the declarative objectives a
#: :class:`~repro.obs.health.SloConfig` may carry and the hooks feed.
SLO_AVAILABILITY = "slo.availability"
SLO_LATENCY = "slo.latency"
SLO_QUALITY = "slo.quality_acceptance"

#: Every declared SLO objective id.
SLO_OBJECTIVES = frozenset(
    {
        SLO_AVAILABILITY,
        SLO_LATENCY,
        SLO_QUALITY,
    }
)

#: The closed vocabulary of rollup label *keys*.  Label values may be
#: caller data (tenant ids, device models) — bounded at runtime by the
#: per-key cardinality budget — but the keys themselves are a reviewed
#: set: QA012 fails any ``labels={...}`` call site using a key outside
#: this frozenset, and the rollup tables reject undeclared keys at
#: runtime too.
HEALTH_LABEL_KEYS = frozenset(
    {
        "tenant",
        "device_model",
        "verdict",
        "reason",
        "lane",
        "outcome",
    }
)


def tenant_counter(base: str, tenant: str) -> str:
    """Per-tenant counter name: ``<base>.<tenant>``.

    Tenant ids are caller data, so per-tenant counters cannot be a
    closed vocabulary; instead the *base* must be one of the
    ``METRIC_TENANT_*`` constants and the tenant id is appended as the
    final segment (e.g. ``serve.tenant.completed.clinic-a``).
    """
    return f"{base}.{tenant}"


def registry() -> dict[str, tuple[str, ...]]:
    """Machine-readable export of every name registry, sorted.

    One entry per registry set, keyed by the set's constant name.  This
    is the runtime counterpart of the static view the QA010 rule builds
    from this module's source — ``tests/qa`` asserts the two agree, so
    a registry refactor that the static analyzer cannot follow fails
    loudly instead of silently weakening the lint.
    """
    return {
        "SPAN_NAMES": tuple(sorted(SPAN_NAMES)),
        "EVENT_NAMES": tuple(sorted(EVENT_NAMES)),
        "CANONICAL_COUNTERS": tuple(sorted(CANONICAL_COUNTERS)),
        "CANONICAL_HISTOGRAMS": tuple(sorted(CANONICAL_HISTOGRAMS)),
        "SHM_DEGRADED_COUNTERS": tuple(sorted(SHM_DEGRADED_COUNTERS)),
        "ECHO_CONDITIONAL_COUNTERS": tuple(sorted(ECHO_CONDITIONAL_COUNTERS)),
        "SERVE_REJECTION_COUNTERS": tuple(sorted(SERVE_REJECTION_COUNTERS.values())),
        "SERVE_CANONICAL_COUNTERS": tuple(sorted(SERVE_CANONICAL_COUNTERS)),
        "SERVE_CANONICAL_HISTOGRAMS": tuple(sorted(SERVE_CANONICAL_HISTOGRAMS)),
        "HEALTH_COUNTER_SERIES": tuple(sorted(HEALTH_COUNTER_SERIES)),
        "HEALTH_DISTRIBUTION_SERIES": tuple(sorted(HEALTH_DISTRIBUTION_SERIES)),
        "SLO_OBJECTIVES": tuple(sorted(SLO_OBJECTIVES)),
        "HEALTH_LABEL_KEYS": tuple(sorted(HEALTH_LABEL_KEYS)),
    }
