"""Trace analysis: per-stage percentiles, critical paths, and run diffs.

Pure functions over the span forest of a run record.  Everything here
consumes the output of :func:`repro.obs.export.load_run_record` and
returns plain data (or render-ready text), so the ``python -m
repro.obs`` CLI stays a thin argument parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from . import names
from .tracer import Span

__all__ = [
    "StageStats",
    "stage_stats",
    "slowest_recordings",
    "critical_path",
    "render_tree",
    "diff_stages",
    "render_stage_table",
    "render_diff",
]


@dataclass(frozen=True)
class StageStats:
    """Latency digest of every span sharing one name across a run."""

    name: str
    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float


def _percentile_digest(name: str, durations: list[float]) -> StageStats:
    data = np.asarray(durations)
    p50, p95, p99 = np.percentile(data, [50.0, 95.0, 99.0])
    return StageStats(
        name=name,
        count=int(data.size),
        mean_ms=float(data.mean()),
        p50_ms=float(p50),
        p95_ms=float(p95),
        p99_ms=float(p99),
        max_ms=float(data.max()),
    )


def stage_stats(spans: Iterable[Span]) -> dict[str, StageStats]:
    """Aggregate span durations by span name over the whole forest."""
    by_name: dict[str, list[float]] = {}
    for root in spans:
        for span in root.walk():
            by_name.setdefault(span.name, []).append(span.duration_ms)
    return {
        name: _percentile_digest(name, durations)
        for name, durations in sorted(by_name.items())
    }


def _quality_verdict(root: Span) -> str:
    """The quality-gate verdict recorded anywhere under ``root``."""
    for span in root.walk():
        if span.name == names.SPAN_QUALITY_GATE:
            verdict = span.attrs.get("verdict")
            if verdict is not None:
                return str(verdict)
    return "-"


def slowest_recordings(spans: Iterable[Span], top: int = 10) -> list[dict]:
    """The ``top`` recording traces by total duration, slowest first.

    Each entry carries the recording's provenance, outcome, and the
    quality-gate verdict found in its subtree (``"-"`` when the run
    had no quality gate).
    """
    roots = [s for s in spans if s.name == names.SPAN_RECORDING]
    roots.sort(key=lambda s: s.duration_ms, reverse=True)
    return [
        {
            "index": root.attrs.get("index"),
            "participant": root.attrs.get("participant", ""),
            "day": root.attrs.get("day"),
            "duration_ms": root.duration_ms,
            "outcome": root.attrs.get("outcome", ""),
            "quality_verdict": _quality_verdict(root),
        }
        for root in roots[: max(0, top)]
    ]


def critical_path(root: Span) -> list[Span]:
    """The chain of longest children from ``root`` down to a leaf.

    The classic flamegraph reading aid: at every level, descend into
    the child that consumed the most wall time.  The returned list
    starts at ``root``.
    """
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda child: child.duration_ms)
        path.append(node)
    return path


def render_tree(root: Span, *, highlight_critical: bool = True) -> str:
    """ASCII rendering of one span tree, critical path marked with ``*``."""
    critical = set(map(id, critical_path(root))) if highlight_critical else set()
    lines: list[str] = []

    def visit(span: Span, depth: int) -> None:
        marker = "*" if id(span) in critical else " "
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span.attrs.items())
        )
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(
            f"{marker} {'  ' * depth}{span.name:<{max(1, 24 - 2 * depth)}} "
            f"{span.duration_ms:9.3f} ms{suffix}"
        )
        for child in span.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def diff_stages(
    before: dict[str, StageStats], after: dict[str, StageStats]
) -> list[dict]:
    """Per-stage p50 deltas between two runs, sorted by regression.

    Positive ``delta_pct`` means ``after`` is slower.  Stages present
    in only one run are included with ``None`` on the missing side.
    """
    rows: list[dict] = []
    for name in sorted(set(before) | set(after)):
        a = before.get(name)
        b = after.get(name)
        delta_pct: float | None = None
        if a is not None and b is not None and a.p50_ms > 0.0:
            delta_pct = (b.p50_ms / a.p50_ms - 1.0) * 100.0
        rows.append(
            {
                "stage": name,
                "before_p50_ms": a.p50_ms if a else None,
                "after_p50_ms": b.p50_ms if b else None,
                "delta_pct": delta_pct,
            }
        )
    rows.sort(key=lambda r: -(r["delta_pct"] if r["delta_pct"] is not None else -1e18))
    return rows


def render_stage_table(stats: dict[str, StageStats]) -> str:
    """Aligned text table of per-stage percentiles."""
    header = (
        f"{'span':<22}{'count':>7}{'mean ms':>10}{'p50 ms':>10}"
        f"{'p95 ms':>10}{'p99 ms':>10}{'max ms':>10}"
    )
    lines = [header, "-" * len(header)]
    for name in sorted(stats):
        s = stats[name]
        lines.append(
            f"{s.name:<22}{s.count:>7}{s.mean_ms:>10.3f}{s.p50_ms:>10.3f}"
            f"{s.p95_ms:>10.3f}{s.p99_ms:>10.3f}{s.max_ms:>10.3f}"
        )
    return "\n".join(lines)


def render_diff(rows: list[dict]) -> str:
    """Aligned text table of a :func:`diff_stages` result."""
    header = f"{'span':<22}{'before p50':>12}{'after p50':>12}{'delta':>9}"
    lines = [header, "-" * len(header)]
    for row in rows:
        before = f"{row['before_p50_ms']:.3f}" if row["before_p50_ms"] is not None else "-"
        after = f"{row['after_p50_ms']:.3f}" if row["after_p50_ms"] is not None else "-"
        delta = f"{row['delta_pct']:+.1f}%" if row["delta_pct"] is not None else "-"
        lines.append(f"{row['stage']:<22}{before:>12}{after:>12}{delta:>9}")
    return "\n".join(lines)
