"""Hierarchical span tracing with a zero-cost disabled path.

One *trace* is the span tree of one recording (or one run-level
operation such as a pool-chunk wait): a root :class:`Span` with child
spans for every pipeline stage and runtime step executed on its
behalf.  The :class:`Tracer` collects finished root spans; exporters
turn them into Chrome trace-event files, per-stage percentile tables,
and run diffs.

Three properties are load-bearing:

- **Zero cost when disabled.**  The ambient tracer defaults to the
  :data:`NULL_TRACER` singleton, whose ``span()`` returns a shared
  no-op context manager — no allocation, no clock read, no branch in
  the instrumented code.  Instrumentation is therefore left permanently
  compiled into the pipeline and runtime.
- **Deterministic structure.**  Span *names, attributes, and
  parent/child shape* are pure functions of the input data; only the
  timing fields vary between runs.  :meth:`Span.structure` projects a
  tree onto exactly the deterministic part, which is what the
  serial-vs-parallel equivalence test compares.
- **Worker propagation.**  Process-pool workers cannot share the
  parent's tracer object; instead the parent ships a
  :class:`TraceContext`, the worker records into a local tracer, and
  the finished span trees travel back with the chunk results where
  :meth:`Tracer.adopt` grafts them into the parent's timeline.  A
  parallel run therefore produces the same per-recording trees as a
  serial one.

Timestamps are monotonic (``time.perf_counter``) milliseconds relative
to each tracer's construction; wall-clock provenance lives in the
:class:`~repro.obs.manifest.RunManifest`, not in spans.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator, Union

__all__ = [
    "Span",
    "NullSpan",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceContext",
    "current_tracer",
    "use_tracer",
    "activate_from_context",
]

#: Attribute value types spans accept: JSON-safe scalars only, so span
#: trees serialize losslessly and structures compare by value.
AttrValue = Union[str, int, float, bool, None]


class Span:
    """One timed, attributed node of a trace tree.

    Created by :meth:`Tracer.span` and used as a context manager; the
    span closes (records its duration and attaches itself to its
    parent, or to the tracer's root list) when the ``with`` block
    exits.  An exception escaping the block stamps an ``error``
    attribute with the exception class name before propagating.
    """

    __slots__ = ("name", "attrs", "start_ms", "duration_ms", "children", "_tracer")

    def __init__(self, name: str, attrs: dict[str, AttrValue]) -> None:
        self.name = name
        self.attrs = attrs
        self.start_ms = 0.0
        self.duration_ms = 0.0
        self.children: list[Span] = []
        self._tracer: "Tracer | None" = None

    def set(self, key: str, value: AttrValue) -> None:
        """Attach (or overwrite) one attribute on the open span."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        tracer = self._tracer
        if tracer is not None:
            tracer._finish(self)
        return False

    # -- serialization / comparison ------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, round-trippable via :meth:`from_dict`."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start_ms": self.start_ms,
            "duration_ms": self.duration_ms,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span tree serialized by :meth:`to_dict`."""
        span = cls(str(data["name"]), dict(data.get("attrs", {})))
        span.start_ms = float(data.get("start_ms", 0.0))
        span.duration_ms = float(data.get("duration_ms", 0.0))
        span.children = [cls.from_dict(child) for child in data.get("children", ())]
        return span

    def structure(self) -> tuple:
        """Deterministic projection: names + attrs + shape, no timings.

        Two runs of the same input produce equal structures regardless
        of execution mode (serial vs pool) or machine speed; the
        equivalence tests compare exactly this.
        """
        return (
            self.name,
            tuple(sorted(self.attrs.items())),
            tuple(child.structure() for child in self.children),
        )

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def shift(self, delta_ms: float) -> None:
        """Translate this tree's start times by ``delta_ms``."""
        self.start_ms += delta_ms
        for child in self.children:
            child.shift(delta_ms)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, attrs={self.attrs!r}, "
            f"duration_ms={self.duration_ms:.3f}, "
            f"children={len(self.children)})"
        )


class NullSpan:
    """Shared no-op span: every method is a stateless no-op."""

    __slots__ = ()

    def set(self, key: str, value: AttrValue) -> None:
        """Discard the attribute."""

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


#: The single :class:`NullSpan` instance handed out by :data:`NULL_TRACER`.
_NULL_SPAN = NullSpan()


class Tracer:
    """Collects span trees for one run.

    A tracer is single-threaded by design: the executor's parallel
    path records parent-side spans from the parent process only, and
    each pool worker records into its own local tracer whose finished
    trees are shipped back and :meth:`adopt`-ed.  ``traces`` holds the
    finished root spans in completion order.
    """

    #: Real tracers record; the null tracer reports ``False`` so code
    #: can skip building expensive attributes when nobody listens.
    enabled: bool = True

    def __init__(self) -> None:
        # Bound builtin cached on the instance: the span open/close
        # path is hot enough (every pipeline stage of every recording)
        # that the module-attribute lookup on ``time`` shows up.
        self._clock = time.perf_counter
        self._epoch = self._clock()
        self.traces: list[Span] = []
        self._stack: list[Span] = []

    def _now_ms(self) -> float:
        return (self._clock() - self._epoch) * 1e3

    def span(self, name: str, **attrs: AttrValue) -> Span:
        """Open a span as a child of the innermost open span (or a root)."""
        span = Span(name, attrs)
        span._tracer = self
        span.start_ms = (self._clock() - self._epoch) * 1e3
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.duration_ms = (self._clock() - self._epoch) * 1e3 - span.start_ms
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - misuse guard
            while stack and stack[-1] is not span:
                stack.pop()
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            self.traces.append(span)

    def adopt(self, span: Span) -> None:
        """Graft a finished root span (e.g. from a worker) into this run.

        The tree is rebased onto this tracer's timeline — its end is
        pinned to "now", preserving internal relative offsets — so an
        exported trace stays monotone even though the span was timed
        against another process's epoch.
        """
        span.shift((self._now_ms() - span.duration_ms) - span.start_ms)
        self.traces.append(span)

    def roots(self, name: str | None = None) -> list[Span]:
        """Finished root spans, optionally filtered by span name."""
        if name is None:
            return list(self.traces)
        return [span for span in self.traces if span.name == name]


class NullTracer:
    """Disabled tracer: records nothing, allocates nothing per span."""

    __slots__ = ()

    #: Always ``False``; instrumented code may branch on it to skip
    #: building expensive attribute values.
    enabled: bool = False
    #: Always empty.
    traces: tuple = ()

    def span(self, name: str, **attrs: AttrValue) -> NullSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def adopt(self, span: Span) -> None:
        """Discard the span."""

    def roots(self, name: str | None = None) -> list[Span]:
        """Always the empty list."""
        return []


#: Process-wide disabled tracer; the ambient default.
NULL_TRACER = NullTracer()

_CURRENT_TRACER: ContextVar["Tracer | NullTracer"] = ContextVar(
    "repro_obs_tracer", default=NULL_TRACER
)


def current_tracer() -> "Tracer | NullTracer":
    """The ambient tracer (the shared :data:`NULL_TRACER` by default)."""
    return _CURRENT_TRACER.get()


@contextmanager
def use_tracer(tracer: "Tracer | NullTracer") -> Iterator["Tracer | NullTracer"]:
    """Make ``tracer`` ambient for the duration of the ``with`` block."""
    token = _CURRENT_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT_TRACER.reset(token)


@dataclass(frozen=True)
class TraceContext:
    """Picklable trace-propagation marker shipped to pool workers.

    Workers cannot share the parent's tracer object across the process
    boundary; they receive this context instead and, when ``enabled``,
    record into a local tracer whose root spans are returned with the
    chunk results.
    """

    enabled: bool = False

    @classmethod
    def capture(cls) -> "TraceContext | None":
        """Context for the ambient tracer; ``None`` when disabled.

        Returning ``None`` keeps the disabled path's pickled task
        payload byte-identical to pre-tracing builds.
        """
        return cls(enabled=True) if current_tracer().enabled else None


@contextmanager
def activate_from_context(context: TraceContext | None) -> Iterator[Tracer | None]:
    """Worker-side tracer activation from a shipped :class:`TraceContext`.

    Yields the local :class:`Tracer` (ambient inside the block) when
    the context asks for tracing, else ``None`` with the null tracer
    left in place.
    """
    if context is None or not context.enabled:
        yield None
        return
    tracer = Tracer()
    with use_tracer(tracer):
        yield tracer
