"""repro.qa — AST-based domain lint engine for reproducibility invariants.

The EarSonar reproduction's results are only trustworthy while a set of
*domain* invariants hold — invariants no general-purpose linter knows
about:

- **QA001 determinism** — science packages never touch ambient entropy
  or wall clocks; randomness arrives as a threaded, seeded
  ``np.random.Generator``.
- **QA002 fingerprint completeness** — every field of the
  ``EarSonarConfig`` tree is visible to ``config_fingerprint``, so the
  feature cache can never serve results computed under a different
  configuration.
- **QA003 pool safety** — callables dispatched to process pools are
  module-level and state-free, so parallel runs stay byte-identical to
  serial ones.
- **QA004 unit discipline** — sample rates and band edges come from the
  config, never from inline literals.
- **QA005 public-API hygiene** — exported names carry docstrings and
  annotations.

Run it as ``python -m repro.qa`` (see :mod:`repro.qa.__main__`); use it
programmatically via :class:`QAEngine`::

    from pathlib import Path
    from repro.qa import Project, QAEngine

    report = QAEngine().run(Project.scan(Path("src")))
    for finding in report.findings:
        print(finding.render())

Suppression is two-layered: a ``# qa: ignore[QA001]`` pragma on the
offending line, or an accepted-debt baseline (``qa_baseline.json``,
written by ``--write-baseline``) that makes only *new* findings fail.
"""

from .baseline import Baseline, BaselineResult, apply_baseline
from .engine import QAEngine, Report, Rule, all_rules, register
from .findings import Finding, Severity
from .pragmas import PragmaIndex, parse_pragmas
from .project import ModuleInfo, Project

__all__ = [
    "Baseline",
    "BaselineResult",
    "apply_baseline",
    "QAEngine",
    "Report",
    "Rule",
    "all_rules",
    "register",
    "Finding",
    "Severity",
    "PragmaIndex",
    "parse_pragmas",
    "ModuleInfo",
    "Project",
]
