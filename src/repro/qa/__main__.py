"""Command-line entry point: ``python -m repro.qa``.

Examples::

    python -m repro.qa                       # lint src/, text report
    python -m repro.qa --strict              # warnings fail too (CI)
    python -m repro.qa --format json         # machine-readable output
    python -m repro.qa --write-baseline      # accept current findings
    python -m repro.qa --rules QA001,QA004   # subset of rules
    python -m repro.qa --root other/src      # lint a different tree

Exit codes: 0 clean, 1 findings (new errors; with ``--strict`` any new
finding), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import Baseline
from .engine import QAEngine, Report, all_rules

__all__ = ["main"]


def _default_root() -> Path:
    """``src/`` when run from a repo checkout, else the working dir."""
    src = Path("src")
    return src if (src / "repro").is_dir() else Path(".")


def _render_text(report: Report, baseline_path: Path) -> str:
    lines = [f.render() for f in report.findings]
    summary = (
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
        f" ({len(report.pragma_suppressed)} pragma-suppressed,"
        f" {len(report.baseline_suppressed)} baselined)"
    )
    lines.append(summary)
    if report.stale_baseline_keys:
        lines.append(
            f"note: {len(report.stale_baseline_keys)} stale baseline entr"
            f"{'y' if len(report.stale_baseline_keys) == 1 else 'ies'} in "
            f"{baseline_path} no longer match anything; re-run "
            "--write-baseline to ratchet the debt down"
        )
    return "\n".join(lines)


def _render_json(report: Report) -> str:
    return json.dumps(
        {
            "findings": [f.to_dict() for f in report.findings],
            "counts": {
                "errors": len(report.errors),
                "warnings": len(report.warnings),
                "pragma_suppressed": len(report.pragma_suppressed),
                "baseline_suppressed": len(report.baseline_suppressed),
            },
            "stale_baseline_keys": report.stale_baseline_keys,
        },
        indent=2,
    )


def main(argv: list[str] | None = None) -> int:
    """Run the lint engine; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.qa",
        description="Domain lint: determinism, cache-key, and pool-safety "
        "invariants of the EarSonar reproduction.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="source root to lint (default: ./src if it contains repro/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("qa_baseline.json"),
        help="baseline file of accepted findings (default: qa_baseline.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings as well as errors (CI mode)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print registered rules and exit",
    )
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id} [{rule.severity.value}] {rule.description}")
        return 0
    if args.rules:
        wanted = {r.strip().upper() for r in args.rules.split(",") if r.strip()}
        unknown = wanted - {r.rule_id for r in rules}
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = [r for r in rules if r.rule_id in wanted]

    root = args.root if args.root is not None else _default_root()
    if not root.exists():
        print(f"source root {root} does not exist", file=sys.stderr)
        return 2

    from .project import Project

    project = Project.scan(root)
    try:
        baseline = Baseline.load(args.baseline)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    engine = QAEngine(rules=rules, baseline=baseline)

    if args.write_baseline:
        # Pragma-suppressed findings stay suppressed by their pragma;
        # everything else becomes accepted debt.
        report = QAEngine(rules=rules).run(project)
        Baseline.from_findings(report.findings).save(args.baseline)
        print(
            f"wrote {len(report.findings)} finding(s) to {args.baseline}",
        )
        return 0

    report = engine.run(project)
    if args.format == "json":
        print(_render_json(report))
    else:
        print(_render_text(report, args.baseline))
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
