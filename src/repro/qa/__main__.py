"""Command-line entry point: ``python -m repro.qa``.

Examples::

    python -m repro.qa                       # lint src/, text report
    python -m repro.qa --strict              # warnings fail too (CI)
    python -m repro.qa --format json         # machine-readable output
    python -m repro.qa --format sarif        # code-scanning annotations
    python -m repro.qa --jobs 4              # parallel per-file analysis
    python -m repro.qa --no-cache            # ignore the summary cache
    python -m repro.qa --write-baseline      # accept current findings
    python -m repro.qa --rules QA001,QA004   # subset of rules
    python -m repro.qa --root other/src      # lint a different tree

Exit codes: 0 clean, 1 findings (new errors; with ``--strict`` any new
finding), 2 usage error.

The whole-program rules (QA008–QA010) build per-function summaries,
cached by content hash under ``--cache-dir`` (default ``.qa-cache``
next to the source root) so repeated runs only re-analyze changed
files; findings are byte-identical to a cold run either way.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import Baseline
from .engine import QAEngine, Report, all_rules

__all__ = ["main"]


def _default_root() -> Path:
    """``src/`` when run from a repo checkout, else the working dir."""
    src = Path("src")
    return src if (src / "repro").is_dir() else Path(".")


def _uri_prefix(root: Path) -> str:
    """Repo-relative prefix for SARIF URIs (``src`` in this repo).

    Finding paths are relative to the scanned root; annotations need
    paths relative to the repository checkout, i.e. the working dir.
    """
    try:
        rel = root.resolve().relative_to(Path.cwd())
    except ValueError:
        return ""
    return "" if rel == Path(".") else rel.as_posix()


def _render_text(report: Report, baseline_path: Path) -> str:
    lines = [f.render() for f in report.findings]
    summary = (
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
        f" ({len(report.pragma_suppressed)} pragma-suppressed,"
        f" {len(report.baseline_suppressed)} baselined)"
    )
    lines.append(summary)
    if report.stale_baseline_keys:
        lines.append(
            f"note: {len(report.stale_baseline_keys)} stale baseline entr"
            f"{'y' if len(report.stale_baseline_keys) == 1 else 'ies'} in "
            f"{baseline_path} no longer match anything; re-run "
            "--write-baseline to ratchet the debt down"
        )
    return "\n".join(lines)


def _render_json(report: Report) -> str:
    return json.dumps(
        {
            "findings": [f.to_dict() for f in report.findings],
            "counts": {
                "errors": len(report.errors),
                "warnings": len(report.warnings),
                "pragma_suppressed": len(report.pragma_suppressed),
                "baseline_suppressed": len(report.baseline_suppressed),
            },
            "stale_baseline_keys": report.stale_baseline_keys,
        },
        indent=2,
    )


def main(argv: list[str] | None = None) -> int:
    """Run the lint engine; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.qa",
        description="Domain lint: determinism, cache-key, and pool-safety "
        "invariants of the EarSonar reproduction.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="source root to lint (default: ./src if it contains repro/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel worker processes for per-file analysis (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="summary cache directory (default: ./.qa-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental summary cache",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("qa_baseline.json"),
        help="baseline file of accepted findings (default: qa_baseline.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings as well as errors (CI mode)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print registered rules and exit",
    )
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id} [{rule.severity.value}] {rule.description}")
        return 0
    if args.rules:
        wanted = {r.strip().upper() for r in args.rules.split(",") if r.strip()}
        unknown = wanted - {r.rule_id for r in rules}
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = [r for r in rules if r.rule_id in wanted]

    root = args.root if args.root is not None else _default_root()
    if not root.exists():
        print(f"source root {root} does not exist", file=sys.stderr)
        return 2

    from .graph import DEFAULT_CACHE_DIR, SummaryCache
    from .project import Project

    project = Project.scan(root)
    try:
        baseline = Baseline.load(args.baseline)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.no_cache:
        cache = None
    else:
        cache_dir = args.cache_dir or Path(DEFAULT_CACHE_DIR)
        cache = SummaryCache(cache_dir)

    engine = QAEngine(rules=rules, baseline=baseline, cache=cache, jobs=args.jobs)

    if args.write_baseline:
        # Pragma-suppressed findings stay suppressed by their pragma;
        # everything else becomes accepted debt.
        report = QAEngine(rules=rules, cache=cache, jobs=args.jobs).run(project)
        Baseline.from_findings(report.findings).save(args.baseline)
        print(
            f"wrote {len(report.findings)} finding(s) to {args.baseline}",
        )
        return 0

    report = engine.run(project)
    if args.format == "json":
        print(_render_json(report))
    elif args.format == "sarif":
        from .sarif import render_sarif

        print(render_sarif(report, rules, uri_prefix=_uri_prefix(root)))
    else:
        print(_render_text(report, args.baseline))
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
