"""Baseline file: accepted pre-existing findings.

Introducing a linter into a living codebase needs a ratchet: existing
debt is recorded once (``python -m repro.qa --write-baseline``) and only
*new* findings fail the build afterwards.  The baseline maps each
finding's line-free :meth:`~repro.qa.findings.Finding.key` to an
occurrence count, so

- moving code within a file does not resurrect accepted findings, and
- adding a *second* instance of an accepted violation is still new
  (counts are per-key budgets, not blanket waivers).

Entries that no longer match anything are *stale*; they are reported so
the baseline can be re-written smaller, ratcheting debt monotonically
down.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .findings import Finding

__all__ = ["Baseline", "apply_baseline", "BaselineResult"]

_VERSION = 1


@dataclass
class Baseline:
    """Accepted-finding budgets keyed by ``path::rule::message``."""

    entries: dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("version") != _VERSION:
            raise ValueError(
                f"{path}: unsupported baseline format (expected version {_VERSION})"
            )
        entries = data.get("entries", {})
        if not isinstance(entries, dict):
            raise ValueError(f"{path}: 'entries' must be an object")
        return cls({str(k): int(v) for k, v in entries.items()})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """Baseline accepting exactly the given findings."""
        return cls(dict(Counter(f.key() for f in findings)))

    def save(self, path: Path) -> None:
        """Write the baseline deterministically (sorted keys, trailing \\n)."""
        payload = {"version": _VERSION, "entries": dict(sorted(self.entries.items()))}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def __len__(self) -> int:
        return sum(self.entries.values())


@dataclass
class BaselineResult:
    """Outcome of filtering findings through a baseline."""

    active: list[Finding]
    suppressed: list[Finding]
    stale_keys: list[str]


def apply_baseline(findings: Sequence[Finding], baseline: Baseline) -> BaselineResult:
    """Split findings into new (active) and baseline-accepted (suppressed).

    For each key the first ``budget`` occurrences (in file/line order)
    are suppressed; any beyond the budget are active.  Unused budget
    surfaces the key as stale.
    """
    budgets = dict(baseline.entries)
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in sorted(findings):
        remaining = budgets.get(finding.key(), 0)
        if remaining > 0:
            budgets[finding.key()] = remaining - 1
            suppressed.append(finding)
        else:
            active.append(finding)
    stale = sorted(key for key, remaining in budgets.items() if remaining > 0)
    return BaselineResult(active=active, suppressed=suppressed, stale_keys=stale)
