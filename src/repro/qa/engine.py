"""Rule registry and the lint engine that orchestrates a run.

A rule is a class with a ``rule_id``, a default :class:`Severity`, and
one or both of two hooks:

- :meth:`Rule.check_module` — called once per module (most rules);
- :meth:`Rule.check_project` — called once per run with the whole
  :class:`~repro.qa.project.Project` (rules that need cross-module
  resolution, like fingerprint completeness).

Rules register themselves with the :func:`register` decorator; the
engine instantiates every registered rule (or a requested subset), runs
them over a project, then applies the two suppression layers in order —
inline ``# qa: ignore`` pragmas first, the baseline second — and
returns a :class:`Report` that the CLI renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Type

from .baseline import Baseline, apply_baseline
from .findings import Finding, Severity
from .pragmas import parse_pragmas
from .project import ModuleInfo, Project

__all__ = ["Rule", "register", "all_rules", "QAEngine", "Report"]


class Rule:
    """Base class for lint rules; subclasses override one of the hooks."""

    #: Unique identifier, e.g. ``"QA001"``.
    rule_id: str = ""
    #: Default severity for this rule's findings.
    severity: Severity = Severity.ERROR
    #: One-line description shown by ``--list-rules``.
    description: str = ""

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        """Yield findings for one module (default: none)."""
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        """Yield project-wide findings (default: none)."""
        return ()

    def finding(
        self,
        module_or_path: "ModuleInfo | str",
        line: int,
        message: str,
        suggestion: str | None = None,
        severity: Severity | None = None,
    ) -> Finding:
        """Convenience constructor stamping this rule's id/severity."""
        path = (
            module_or_path.relpath
            if isinstance(module_or_path, ModuleInfo)
            else module_or_path
        )
        return Finding(
            path=path,
            line=line,
            rule=self.rule_id,
            severity=severity or self.severity,
            message=message,
            suggestion=suggestion,
        )


_REGISTRY: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must define a rule_id")
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in id order."""
    from . import rules as _rules  # noqa: F401  (import registers the rules)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


@dataclass
class Report:
    """Everything one engine run produced, pre-sorted for rendering."""

    findings: list[Finding] = field(default_factory=list)
    pragma_suppressed: list[Finding] = field(default_factory=list)
    baseline_suppressed: list[Finding] = field(default_factory=list)
    stale_baseline_keys: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        """Active findings at ERROR severity."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        """Active findings at WARNING severity."""
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def exit_code(self, strict: bool = False) -> int:
        """1 if the run should fail CI, else 0.

        Default mode fails on new errors only; ``--strict`` also fails
        on warnings, so hygiene debt cannot accrete silently.
        """
        gate = self.findings if strict else self.errors
        return 1 if gate else 0


class QAEngine:
    """Run rules over a project and apply suppression layers."""

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        baseline: Baseline | None = None,
    ) -> None:
        self.rules = list(rules) if rules is not None else all_rules()
        self.baseline = baseline or Baseline()

    def collect(self, project: Project) -> list[Finding]:
        """Raw findings from every rule, before any suppression."""
        findings: list[Finding] = []
        for rule in self.rules:
            findings.extend(rule.check_project(project))
            for module in project:
                findings.extend(rule.check_module(module, project))
        return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))

    def run(self, project: Project) -> Report:
        """Collect findings, then filter through pragmas and baseline."""
        raw = self.collect(project)

        pragma_indexes = {
            module.relpath: parse_pragmas(module.source) for module in project
        }
        surviving: list[Finding] = []
        pragma_suppressed: list[Finding] = []
        for finding in raw:
            index = pragma_indexes.get(finding.path)
            if index is not None and index.suppresses(finding.line, finding.rule):
                pragma_suppressed.append(finding)
            else:
                surviving.append(finding)

        filtered = apply_baseline(surviving, self.baseline)
        return Report(
            findings=filtered.active,
            pragma_suppressed=pragma_suppressed,
            baseline_suppressed=filtered.suppressed,
            stale_baseline_keys=filtered.stale_keys,
        )
