"""Rule registry and the lint engine that orchestrates a run.

A rule is a class with a ``rule_id``, a default :class:`Severity`, and
one or more of three hooks:

- :meth:`Rule.check_module` — called once per module (most rules);
- :meth:`Rule.check_project` — called once per run with the whole
  :class:`~repro.qa.project.Project` (rules that need cross-module
  *name* resolution, like fingerprint completeness);
- :meth:`Rule.check_program` — called once per run with the
  :class:`~repro.qa.graph.ProgramModel` (import graph + per-function
  summaries + call graph) for interprocedural rules (QA008–QA010).

Rules register themselves with the :func:`register` decorator; the
engine instantiates every registered rule (or a requested subset), runs
them over a project, then applies the two suppression layers in order —
inline ``# qa: ignore`` pragmas first, the baseline second — and
returns a :class:`Report` that the CLI renders.

Per-module work (``check_module`` across all rules, plus summary
extraction) is pure per-file, so ``jobs > 1`` fans it out over a
process pool; findings and summaries are merged and sorted in the
parent, making the output byte-identical for any job count.  The
summary step routes through an optional content-hash
:class:`~repro.qa.graph.SummaryCache` so repeated runs only re-analyze
changed files.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence, Type

from .baseline import Baseline, apply_baseline
from .findings import Finding, Severity
from .pragmas import parse_pragmas
from .project import ModuleInfo, Project

if TYPE_CHECKING:  # imported lazily at runtime to keep startup light
    from .graph import ModuleSummary, ProgramModel, SummaryCache

__all__ = ["Rule", "register", "all_rules", "QAEngine", "Report"]


class Rule:
    """Base class for lint rules; subclasses override one of the hooks."""

    #: Unique identifier, e.g. ``"QA001"``.
    rule_id: str = ""
    #: Default severity for this rule's findings.
    severity: Severity = Severity.ERROR
    #: One-line description shown by ``--list-rules``.
    description: str = ""

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        """Yield findings for one module (default: none)."""
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        """Yield project-wide findings (default: none)."""
        return ()

    def check_program(self, program: "ProgramModel") -> Iterable[Finding]:
        """Yield whole-program findings from the call-graph model."""
        return ()

    def finding(
        self,
        module_or_path: "ModuleInfo | str",
        line: int,
        message: str,
        suggestion: str | None = None,
        severity: Severity | None = None,
    ) -> Finding:
        """Convenience constructor stamping this rule's id/severity."""
        path = (
            module_or_path.relpath
            if isinstance(module_or_path, ModuleInfo)
            else module_or_path
        )
        return Finding(
            path=path,
            line=line,
            rule=self.rule_id,
            severity=severity or self.severity,
            message=message,
            suggestion=suggestion,
        )


_REGISTRY: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must define a rule_id")
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in id order."""
    from . import rules as _rules  # noqa: F401  (import registers the rules)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


@dataclass
class Report:
    """Everything one engine run produced, pre-sorted for rendering."""

    findings: list[Finding] = field(default_factory=list)
    pragma_suppressed: list[Finding] = field(default_factory=list)
    baseline_suppressed: list[Finding] = field(default_factory=list)
    stale_baseline_keys: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        """Active findings at ERROR severity."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        """Active findings at WARNING severity."""
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def exit_code(self, strict: bool = False) -> int:
        """1 if the run should fail CI, else 0.

        Default mode fails on new errors only; ``--strict`` also fails
        on warnings, so hygiene debt cannot accrete silently.
        """
        gate = self.findings if strict else self.errors
        return 1 if gate else 0


# ---------------------------------------------------------------------------
# Parallel worker machinery (module-level so it pickles)
# ---------------------------------------------------------------------------

_WORKER_PROJECT: Project | None = None
_WORKER_RULES: list[Rule] = []


def _init_worker(
    root: str, exclude_parts: tuple[str, ...], rule_ids: frozenset[str]
) -> None:
    """Per-worker setup: scan the project once, instantiate the rules."""
    global _WORKER_PROJECT, _WORKER_RULES
    _WORKER_PROJECT = Project.scan(Path(root), exclude_parts=exclude_parts)
    _WORKER_RULES = [rule for rule in all_rules() if rule.rule_id in rule_ids]


def _analyze_module(
    task: tuple[str, bool],
) -> tuple[str, list[Finding], dict | None]:
    """One module's worth of work: per-file rules + optional summary."""
    from .graph import summarize_module

    name, need_summary = task
    assert _WORKER_PROJECT is not None
    module = _WORKER_PROJECT.get(name)
    if module is None:  # racing edit between parent scan and worker scan
        return name, [], None
    findings = [
        finding
        for rule in _WORKER_RULES
        for finding in rule.check_module(module, _WORKER_PROJECT)
    ]
    summary = summarize_module(module).to_dict() if need_summary else None
    return name, findings, summary


class QAEngine:
    """Run rules over a project and apply suppression layers."""

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        baseline: Baseline | None = None,
        *,
        cache: "SummaryCache | None" = None,
        jobs: int = 1,
    ) -> None:
        self.rules = list(rules) if rules is not None else all_rules()
        self.baseline = baseline or Baseline()
        self.cache = cache
        self.jobs = max(1, jobs)

    # -- collection -------------------------------------------------------

    def _program_rules(self) -> list[Rule]:
        return [
            rule
            for rule in self.rules
            if type(rule).check_program is not Rule.check_program
        ]

    def collect(self, project: Project) -> list[Finding]:
        """Raw findings from every rule, before any suppression."""
        findings: list[Finding] = []
        for rule in self.rules:
            findings.extend(rule.check_project(project))

        need_summaries = bool(self._program_rules())
        module_findings, summaries = self._analyze_modules(project, need_summaries)
        findings.extend(module_findings)

        if need_summaries:
            from .graph import build_program_model

            program = build_program_model(project, summaries=summaries)
            for rule in self._program_rules():
                findings.extend(rule.check_program(program))
        return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))

    def _analyze_modules(
        self, project: Project, need_summaries: bool
    ) -> tuple[list[Finding], "dict[str, ModuleSummary]"]:
        """Per-module rules + summaries, serial or fanned out over jobs.

        Results are merged and sorted in the parent either way, so the
        findings are byte-identical for any job count.
        """
        if self.jobs > 1 and self._parallel_safe():
            return self._analyze_parallel(project, need_summaries)
        return self._analyze_serial(project, need_summaries)

    def _parallel_safe(self) -> bool:
        """Workers rebuild rules from the registry; ad-hoc instances can't ship."""
        return all(type(rule) is _REGISTRY.get(rule.rule_id) for rule in self.rules)

    def _analyze_serial(
        self, project: Project, need_summaries: bool
    ) -> tuple[list[Finding], "dict[str, ModuleSummary]"]:
        from .graph import summarize_module

        findings: list[Finding] = []
        summaries: dict[str, "ModuleSummary"] = {}
        for module in project:
            for rule in self.rules:
                findings.extend(rule.check_module(module, project))
            if need_summaries:
                if self.cache is not None:
                    summaries[module.name] = self.cache.summarize(module)
                else:
                    summaries[module.name] = summarize_module(module)
        return findings, summaries

    def _analyze_parallel(
        self, project: Project, need_summaries: bool
    ) -> tuple[list[Finding], "dict[str, ModuleSummary]"]:
        from .graph import ModuleSummary

        summaries: dict[str, "ModuleSummary"] = {}
        tasks: list[tuple[str, bool]] = []
        modules = {module.name: module for module in project}
        for name in sorted(modules):
            need = need_summaries
            if need and self.cache is not None:
                cached = self.cache.peek(modules[name])
                if cached is not None:
                    summaries[name] = cached
                    need = False
            tasks.append((name, need))

        rule_ids = frozenset(rule.rule_id for rule in self.rules)
        findings: list[Finding] = []
        with ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_init_worker,
            initargs=(str(project.root), project.exclude_parts, rule_ids),
        ) as pool:
            for name, module_findings, summary_dict in pool.map(
                _analyze_module, tasks
            ):
                findings.extend(module_findings)
                if summary_dict is not None:
                    summary = ModuleSummary.from_dict(summary_dict)
                    summaries[name] = summary
                    if self.cache is not None:
                        self.cache.put(modules[name], summary)
        return findings, summaries

    # -- suppression ------------------------------------------------------

    def run(self, project: Project) -> Report:
        """Collect findings, then filter through pragmas and baseline."""
        raw = self.collect(project)

        pragma_indexes = {
            module.relpath: parse_pragmas(module.source) for module in project
        }
        surviving: list[Finding] = []
        pragma_suppressed: list[Finding] = []
        for finding in raw:
            index = pragma_indexes.get(finding.path)
            if index is not None and index.suppresses(finding.line, finding.rule):
                pragma_suppressed.append(finding)
            else:
                surviving.append(finding)

        filtered = apply_baseline(surviving, self.baseline)
        return Report(
            findings=filtered.active,
            pragma_suppressed=pragma_suppressed,
            baseline_suppressed=filtered.suppressed,
            stale_baseline_keys=filtered.stale_keys,
        )
