"""Structured lint findings.

Every rule reports :class:`Finding` objects rather than printing text:
the engine owns presentation (text/JSON), suppression (pragmas and the
baseline), and exit-code policy.  A finding's :meth:`Finding.key` is
deliberately *line-free* — baselines match on ``path::rule::message`` so
that unrelated edits shifting a file by a few lines do not resurrect
already-accepted findings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How seriously a finding threatens reproducibility.

    ``ERROR`` findings break an invariant the science depends on
    (determinism, cache-key completeness, pool safety) and fail every
    run; ``WARNING`` findings are hygiene debt that only fails
    ``--strict`` runs.
    """

    WARNING = "warning"
    ERROR = "error"

    @property
    def weight(self) -> int:
        """Ordering weight: errors sort before warnings."""
        return 0 if self is Severity.ERROR else 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        Repo-relative POSIX path of the offending file.
    line:
        1-based source line of the violation.
    rule:
        Rule identifier, e.g. ``"QA001"``.
    severity:
        :class:`Severity` of the violation.
    message:
        Human-readable description of what is wrong.  Messages name the
        offending symbol so they stay stable under line drift (the
        baseline keys on them).
    suggestion:
        Optional actionable fix, shown indented under the message.
    """

    path: str
    line: int
    rule: str = field(compare=False)
    severity: Severity = field(compare=False)
    message: str = field(compare=False)
    suggestion: str | None = field(default=None, compare=False)

    def key(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.path}::{self.rule}::{self.message}"

    def render(self) -> str:
        """Single-line text rendering (plus an indented suggestion)."""
        text = f"{self.path}:{self.line}: {self.rule} {self.severity.value}: {self.message}"
        if self.suggestion:
            text += f"\n    hint: {self.suggestion}"
        return text

    def to_dict(self) -> dict:
        """JSON-serializable form for ``--format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "suggestion": self.suggestion,
        }
