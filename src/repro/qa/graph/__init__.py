"""Whole-program analysis: import graph, summaries, call graph, cache.

This subpackage turns ``repro.qa`` from a per-file linter into a
whole-program analyzer.  The pipeline is::

    Project ──summarize_module──▶ ModuleSummary (cached by content hash)
            ──ImportGraph.build──▶ module dependency edges
    {ModuleSummary} ──CallGraph──▶ interprocedural resolution + BFS

Rules that need the program view implement ``check_program`` (see
:class:`repro.qa.engine.Rule`) and receive a :class:`ProgramModel`
bundling all three artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..project import Project
from .cache import DEFAULT_CACHE_DIR, CacheStats, SummaryCache
from .callgraph import CallGraph
from .imports import ImportGraph, ModuleBindings, resolve_relative_import
from .summaries import (
    SUMMARY_FORMAT_VERSION,
    BlockingUse,
    CallSite,
    ClassSummary,
    FunctionSummary,
    GlobalRebind,
    LockAcquisition,
    ModuleSummary,
    TelemetryUse,
    summarize_module,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "SUMMARY_FORMAT_VERSION",
    "BlockingUse",
    "CacheStats",
    "CallGraph",
    "CallSite",
    "ClassSummary",
    "FunctionSummary",
    "GlobalRebind",
    "ImportGraph",
    "LockAcquisition",
    "ModuleBindings",
    "ModuleSummary",
    "ProgramModel",
    "SummaryCache",
    "TelemetryUse",
    "build_program_model",
    "resolve_relative_import",
    "summarize_module",
]


@dataclass
class ProgramModel:
    """Everything a ``check_program`` rule hook receives."""

    project: Project
    summaries: dict[str, ModuleSummary]
    imports: ImportGraph
    callgraph: CallGraph


def build_program_model(
    project: Project,
    *,
    cache: SummaryCache | None = None,
    summaries: dict[str, ModuleSummary] | None = None,
) -> ProgramModel:
    """Assemble the program model, summarizing through ``cache`` if given.

    Pre-computed ``summaries`` (e.g. merged from parallel workers) are
    used as-is; remaining modules are summarized here.
    """
    table: dict[str, ModuleSummary] = dict(summaries or {})
    for module in project:
        if module.name not in table:
            if cache is not None:
                table[module.name] = cache.summarize(module)
            else:
                table[module.name] = summarize_module(module)
    return ProgramModel(
        project=project,
        summaries=table,
        imports=ImportGraph.build(project),
        callgraph=CallGraph(table),
    )
