"""Incremental summary cache keyed by content hash.

A module's summary is a pure function of its source text and the
analyzer version, so caching is sound by construction: the key is
``sha256(source)`` and any extraction-semantics change bumps
:data:`~repro.qa.graph.summaries.SUMMARY_FORMAT_VERSION`, orphaning
every stale entry at once.  Repeated runs therefore re-analyze only
files whose bytes changed — and because the whole-program pass is
rebuilt from summaries (cached or fresh) the findings are byte-identical
either way; the incremental test in ``tests/qa`` locks that in.

Layout: one JSON file per module under the cache directory, named by
relpath with separators flattened (``src_repro_serve_service.py.json``),
holding ``{"hash": ..., "version": ..., "summary": {...}}``.  Corrupt or
unreadable entries are treated as misses, never errors.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..project import ModuleInfo
from .summaries import SUMMARY_FORMAT_VERSION, ModuleSummary, summarize_module

__all__ = ["SummaryCache", "CacheStats", "DEFAULT_CACHE_DIR"]

#: Default cache location, relative to the analysis root's parent.
DEFAULT_CACHE_DIR = ".qa-cache"


def _content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _entry_name(relpath: str) -> str:
    return relpath.replace("/", "_").replace("\\", "_") + ".json"


@dataclass
class CacheStats:
    """Counters for the incremental-analysis tests and ``--format json``."""

    reused: int = 0
    analyzed: int = 0
    reused_modules: list[str] = field(default_factory=list)
    analyzed_modules: list[str] = field(default_factory=list)

    def record(self, relpath: str, *, hit: bool) -> None:
        if hit:
            self.reused += 1
            self.reused_modules.append(relpath)
        else:
            self.analyzed += 1
            self.analyzed_modules.append(relpath)


class SummaryCache:
    """Content-hash summary store; ``directory=None`` disables persistence."""

    def __init__(self, directory: Path | None) -> None:
        self.directory = directory
        self.stats = CacheStats()

    def summarize(self, module: ModuleInfo) -> ModuleSummary:
        """Return the module's summary, from cache when the hash matches."""
        cached = self.peek(module)
        if cached is not None:
            return cached
        summary = summarize_module(module)
        self.put(module, summary)
        return summary

    def peek(self, module: ModuleInfo) -> ModuleSummary | None:
        """Cached summary for the module's current content, or ``None``.

        A hit is recorded in the stats; a miss records nothing (the
        caller computes the summary and calls :meth:`put`).
        """
        cached = self._load(module.relpath, _content_hash(module.source))
        if cached is not None:
            self.stats.record(module.relpath, hit=True)
        return cached

    def put(self, module: ModuleInfo, summary: ModuleSummary) -> None:
        """Record a freshly computed summary (counts as 'analyzed')."""
        self.stats.record(module.relpath, hit=False)
        self._store(module.relpath, _content_hash(module.source), summary)

    # -- persistence ------------------------------------------------------

    def _entry_path(self, relpath: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / _entry_name(relpath)

    def _load(self, relpath: str, digest: str) -> ModuleSummary | None:
        path = self._entry_path(relpath)
        if path is None or not path.is_file():
            return None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if (
                data.get("hash") != digest
                or data.get("version") != SUMMARY_FORMAT_VERSION
            ):
                return None
            return ModuleSummary.from_dict(data["summary"])
        except (OSError, ValueError, KeyError, TypeError):
            return None  # corrupt entry == miss

    def _store(self, relpath: str, digest: str, summary: ModuleSummary) -> None:
        path = self._entry_path(relpath)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = {
                "hash": digest,
                "version": SUMMARY_FORMAT_VERSION,
                "summary": summary.to_dict(),
            }
            path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        except OSError:
            pass  # read-only cache dir: analysis still succeeds
