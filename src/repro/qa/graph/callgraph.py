"""Module-qualified call graph built from per-function summaries.

The graph resolves three call shapes:

- **dotted calls** — ``repro.quality.assess_recording(...)`` or a bound
  alias (``quality.assess_recording`` after ``from .. import quality``),
  chased through package ``__init__`` re-exports;
- **constructor calls** — a dotted call landing on a class resolves to
  that class's ``__init__``;
- **method calls** — ``self.batcher.flush()`` where the receiver's
  class is statically provable, resolved through the class and its
  bases in order.

Resolution failures are silent by design: a dynamic callable produces
no edge, so the interprocedural rules under-approximate rather than
guess.  :meth:`CallGraph.reachable_from` returns call paths so rule
findings can show the chain from root to sink.
"""

from __future__ import annotations

from collections import deque

from .summaries import CallSite, ClassSummary, FunctionSummary, ModuleSummary

__all__ = ["CallGraph"]

#: Cap on re-export chase depth (cycles are also guarded by a seen-set).
_MAX_CHASE = 16


class CallGraph:
    """Whole-program call graph over a set of module summaries."""

    def __init__(self, summaries: dict[str, ModuleSummary]) -> None:
        self.summaries = summaries
        self.functions: dict[str, FunctionSummary] = {}
        self.classes: dict[str, ClassSummary] = {}
        for summary in summaries.values():
            for fn in summary.functions:
                self.functions[fn.qualname] = fn
            for cls in summary.classes:
                self.classes[cls.qualname] = cls

    # -- name resolution --------------------------------------------------

    def _split_module(self, dotted: str) -> tuple[ModuleSummary, list[str]] | None:
        """Longest module prefix of a dotted path, plus the remainder."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            name = ".".join(parts[:cut])
            if name in self.summaries:
                return self.summaries[name], parts[cut:]
        return None

    def resolve_function(self, dotted: str) -> FunctionSummary | None:
        """Resolve a canonical dotted path to a function summary.

        Follows re-export bindings (``from .service import submit`` in a
        package ``__init__``) and maps a class target to its
        ``__init__`` (constructor call).
        """
        seen: set[str] = set()
        current = dotted
        for _ in range(_MAX_CHASE):
            if current in seen:
                return None
            seen.add(current)
            split = self._split_module(current)
            if split is None:
                return None
            module, rest = split
            if not rest:
                return None  # bare module, not callable
            qual = f"{module.module}.{'.'.join(rest)}"
            if qual in self.functions:
                return self.functions[qual]
            if len(rest) == 1 and qual in self.classes:
                return self.resolve_method(qual, "__init__")
            if len(rest) == 2:
                class_qual = f"{module.module}.{rest[0]}"
                if class_qual in self.classes:
                    return self.resolve_method(class_qual, rest[1])
            # Re-export chase: the head symbol may be bound in the module.
            head = rest[0]
            if head in module.bindings:
                target = module.bindings[head]
                tail = rest[1:]
                current = ".".join([target, *tail]) if tail else target
                continue
            return None
        return None

    def resolve_class(self, dotted: str) -> ClassSummary | None:
        """Resolve a canonical dotted path to a class summary."""
        seen: set[str] = set()
        current = dotted
        for _ in range(_MAX_CHASE):
            if current in seen:
                return None
            seen.add(current)
            if current in self.classes:
                return self.classes[current]
            split = self._split_module(current)
            if split is None:
                return None
            module, rest = split
            if not rest:
                return None
            head = rest[0]
            if head in module.bindings:
                current = ".".join([module.bindings[head], *rest[1:]])
                continue
            return None
        return None

    def resolve_method(self, class_dotted: str, method: str) -> FunctionSummary | None:
        """Resolve a method through a class and its bases, in MRO order."""
        seen: set[str] = set()
        queue = deque([class_dotted])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            cls = self.resolve_class(current)
            if cls is None:
                continue
            if method in cls.methods:
                return self.functions.get(f"{cls.qualname}.{method}")
            queue.extend(cls.bases)
        return None

    def resolve_call(self, site: CallSite) -> FunctionSummary | None:
        """Resolve one call site to its target, when statically possible."""
        if site.receiver_class:
            return self.resolve_method(site.receiver_class, site.name)
        return self.resolve_function(site.name)

    # -- traversal --------------------------------------------------------

    def callees(self, fn: FunctionSummary) -> list[tuple[CallSite, FunctionSummary]]:
        """Resolved (site, target) pairs for a function's call sites."""
        out: list[tuple[CallSite, FunctionSummary]] = []
        for site in fn.calls:
            target = self.resolve_call(site)
            if target is not None:
                out.append((site, target))
        return out

    def reachable_from(
        self, root: FunctionSummary, *, skip_modules: frozenset[str] = frozenset()
    ) -> dict[str, tuple[str, ...]]:
        """BFS over call edges: reachable qualname → path from ``root``.

        The path includes the root and the target, so findings can show
        the full chain.  Functions defined in ``skip_modules`` are not
        expanded (nor reported) — this is how sanctioned boundary
        modules terminate QA008 traversals.
        """
        paths: dict[str, tuple[str, ...]] = {root.qualname: (root.qualname,)}
        queue = deque([root])
        while queue:
            current = queue.popleft()
            for _site, target in self.callees(current):
                if target.module in skip_modules:
                    continue
                if target.qualname in paths:
                    continue
                paths[target.qualname] = (*paths[current.qualname], target.qualname)
                queue.append(target)
        return paths

    def transitive_locks(
        self, root: FunctionSummary, *, _cache: dict[str, frozenset[str]] | None = None
    ) -> frozenset[str]:
        """All lock ids acquired by ``root`` or any reachable callee."""
        out: set[str] = set()
        for qual in self.reachable_from(root):
            fn = self.functions.get(qual)
            if fn is not None:
                out.update(acq.lock_id for acq in fn.locks)
        return frozenset(out)
