"""Project-wide import resolution: bindings and the module import graph.

The whole-program rules need two things the per-file :class:`ImportMap`
cannot give them:

- **relative imports resolved** — ``from ..obs import names as
  obs_names`` inside ``repro.serve.service`` must canonicalize
  ``obs_names.X`` to ``repro.obs.names.X``, or every cross-package edge
  in the call graph is lost;
- **a module-level dependency graph** — which project modules each
  module imports, so incremental invalidation and rule scoping can
  reason about the package topology without re-walking every AST.

Both are computed from source only; nothing is imported or executed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..project import ModuleInfo, Project

__all__ = ["ModuleBindings", "ImportGraph", "resolve_relative_import"]


def resolve_relative_import(module: ModuleInfo, node: ast.ImportFrom) -> str | None:
    """Dotted name of the module an ``ImportFrom`` pulls from.

    Absolute imports pass through; relative ones are resolved against
    the importing module's package (``from ..quality import x`` inside
    ``repro.serve.service`` → ``repro.quality``).  Returns ``None`` for
    relative imports that climb above the source root.
    """
    if node.level == 0:
        return node.module
    base = module.package_parts()
    hops = node.level - 1
    if hops > len(base):
        return None
    if hops:
        base = base[: len(base) - hops]
    if node.module:
        base = [*base, *node.module.split(".")]
    return ".".join(base) if base else None


@dataclass
class ModuleBindings:
    """Top-level binding name → canonical dotted target for one module.

    Unlike the per-file :class:`~repro.qa.rules._helpers.ImportMap`,
    relative imports are resolved to absolute dotted names, so the
    canonical form of ``obs_names.METRIC_X`` is identical regardless of
    how the module spelled the import.  A binding's target may name a
    module (``from . import clock`` → ``repro.serve.clock``) or a
    symbol inside one (``from .clock import Clock`` →
    ``repro.serve.clock.Clock``); the call graph disambiguates.
    """

    bindings: dict[str, str] = field(default_factory=dict)

    @classmethod
    def collect(cls, module: ModuleInfo) -> "ModuleBindings":
        """Scan a module's imports into a binding table."""
        bindings: dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        bindings[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        bindings[head] = head
            elif isinstance(node, ast.ImportFrom):
                target = resolve_relative_import(module, node)
                if target is None:
                    continue
                for alias in node.names:
                    bound = alias.asname or alias.name
                    bindings[bound] = f"{target}.{alias.name}"
        return cls(bindings)

    def canonicalize(self, dotted: str) -> str:
        """Rewrite a dotted chain's head through the binding table."""
        head, _, rest = dotted.partition(".")
        canonical_head = self.bindings.get(head, head)
        return f"{canonical_head}.{rest}" if rest else canonical_head

    def __contains__(self, name: str) -> bool:
        return name in self.bindings


class ImportGraph:
    """Directed module-dependency graph over one project."""

    def __init__(self, edges: dict[str, frozenset[str]]) -> None:
        self.edges = edges

    @classmethod
    def build(cls, project: Project) -> "ImportGraph":
        """Edges from each module to the project modules it imports.

        Both forms contribute: ``import repro.signal.chirp`` and
        ``from ..signal import chirp``.  A ``from pkg import name``
        where ``pkg.name`` is itself a project module counts as an edge
        to the submodule; otherwise the edge lands on ``pkg``.
        """
        edges: dict[str, frozenset[str]] = {}
        for module in project:
            targets: set[str] = set()
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if project.get(alias.name) is not None:
                            targets.add(alias.name)
                elif isinstance(node, ast.ImportFrom):
                    base = resolve_relative_import(module, node)
                    if base is None:
                        continue
                    for alias in node.names:
                        sub = f"{base}.{alias.name}"
                        if project.get(sub) is not None:
                            targets.add(sub)
                        elif project.get(base) is not None:
                            targets.add(base)
            targets.discard(module.name)
            edges[module.name] = frozenset(targets)
        return cls(edges)

    def imports_of(self, module_name: str) -> frozenset[str]:
        """Project modules directly imported by ``module_name``."""
        return self.edges.get(module_name, frozenset())

    def importers_of(self, module_name: str) -> frozenset[str]:
        """Project modules that directly import ``module_name``."""
        return frozenset(
            source for source, targets in self.edges.items() if module_name in targets
        )

    def transitive_imports(self, module_name: str) -> frozenset[str]:
        """Every project module reachable through the import edges."""
        seen: set[str] = set()
        frontier = [module_name]
        while frontier:
            current = frontier.pop()
            for target in self.edges.get(current, frozenset()):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return frozenset(seen)
