"""Per-function summaries: the unit of whole-program analysis.

One :class:`ModuleSummary` per source module captures everything the
interprocedural rules need — so the call graph, the async-blocking
closure, the lock-order graph, and the telemetry diff can all be built
from summaries alone, without re-touching the ASTs.  That property is
what makes the incremental cache sound: a summary is a pure function of
one file's text, serialized by content hash, and re-deriving the whole
program from cached summaries is byte-identical to a cold analysis.

Each :class:`FunctionSummary` records, per function or method:

- **calls** — canonicalized call sites (``repro.quality.assess_recording``,
  or method calls with a statically known receiver class), including
  ``functools.partial`` unwrapping and the lock set held at the site;
- **blocking uses** — direct blocking primitives (``time.sleep``,
  builtin ``open`` / pathlib file I/O, ``subprocess``, lock
  acquisitions) for the QA008 reachability rule;
- **lock acquisitions** — with a stable cross-process lock identity
  (``repro.runtime.metrics.Histogram._lock``) and the locks already
  held, for the QA009 ordering rule;
- **telemetry uses** — span/event/counter/histogram names referenced
  by registered constant, literal, rejection-table subscript, or the
  ``tenant_counter`` pattern, for the QA010 registry diff;
- **global rebinds** and **pool-dispatch targets** — for the QA009
  worker-state check.

Resolution is deliberately conservative: only receivers whose class is
statically provable (``self``, annotated parameters, ``self.attr``
assigned or annotated in the class body, locals assigned from a known
constructor) produce method call sites.  A dynamic callable —
``self._runner(...)`` — produces no edge; the DESIGN chapter documents
this as the analysis boundary.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field

from ..project import ModuleInfo
from .imports import ModuleBindings

__all__ = [
    "SUMMARY_FORMAT_VERSION",
    "CallSite",
    "BlockingUse",
    "LockAcquisition",
    "TelemetryUse",
    "GlobalRebind",
    "FunctionSummary",
    "ClassSummary",
    "ModuleSummary",
    "summarize_module",
]

#: Bump whenever extraction semantics change; invalidates cached summaries.
SUMMARY_FORMAT_VERSION = 1

#: Canonical dotted calls that block the calling thread.
_BLOCKING_CALLS: dict[str, str] = {
    "time.sleep": "sleep",
    "subprocess.run": "subprocess",
    "subprocess.Popen": "subprocess",
    "subprocess.call": "subprocess",
    "subprocess.check_call": "subprocess",
    "subprocess.check_output": "subprocess",
    "os.system": "subprocess",
    "os.popen": "subprocess",
}

#: Attribute method names that are file I/O on any plausible receiver.
_FILE_IO_METHODS = frozenset({"read_text", "write_text", "read_bytes", "write_bytes"})

#: Dotted constructors that build a lock object.
_LOCK_CONSTRUCTORS = ("threading.Lock", "threading.RLock", "multiprocessing.Lock")

#: Telemetry-emitting method name → name kind.
_TELEMETRY_METHODS = {
    "span": "span",
    "emit": "event",
    "increment": "counter",
    "observe": "histogram",
    "histogram": "histogram",
}

#: Pool map-family methods (same set the QA003 rule polices).
_MAP_METHODS = frozenset({"map", "imap", "imap_unordered", "starmap", "apply_async"})
_POOLISH = ("pool", "executor")


@dataclass(frozen=True)
class CallSite:
    """One statically resolvable call expression.

    ``receiver_class`` is empty for plain dotted calls (the ``name`` is
    then a canonical dotted path); for method calls it is the canonical
    dotted name of the receiver's class and ``name`` is the bare method.
    """

    name: str
    receiver_class: str
    lineno: int
    via_partial: bool = False
    held_locks: tuple[str, ...] = ()


@dataclass(frozen=True)
class BlockingUse:
    """A direct use of a blocking primitive inside a function body."""

    category: str  # "sleep" | "file-io" | "subprocess" | "lock"
    symbol: str
    lineno: int


@dataclass(frozen=True)
class LockAcquisition:
    """One lock acquisition site with the locks already held there."""

    lock_id: str
    lineno: int
    held: tuple[str, ...] = ()


@dataclass(frozen=True)
class TelemetryUse:
    """One telemetry-name reference at an emission call site.

    ``form`` is ``"constant"`` (``ref`` is a canonical dotted constant,
    e.g. ``repro.obs.names.METRIC_SERVE_ADMITTED``), ``"literal"``
    (``ref`` is the raw string), ``"subscript"`` (``ref`` names a
    registry mapping whose values are all considered used), or
    ``"pattern"`` (``ref`` is the base constant of a dynamic-name
    helper such as ``tenant_counter``).
    """

    kind: str  # "span" | "event" | "counter" | "histogram"
    ref: str
    form: str
    lineno: int


@dataclass(frozen=True)
class GlobalRebind:
    """A module-global name rebound (``global x; x = ...``) in a function."""

    name: str
    lineno: int


@dataclass(frozen=True)
class FunctionSummary:
    """Everything whole-program rules need to know about one function."""

    qualname: str
    module: str
    name: str
    lineno: int
    is_async: bool
    owner_class: str = ""
    calls: tuple[CallSite, ...] = ()
    blocking: tuple[BlockingUse, ...] = ()
    locks: tuple[LockAcquisition, ...] = ()
    telemetry: tuple[TelemetryUse, ...] = ()
    global_rebinds: tuple[GlobalRebind, ...] = ()
    pool_targets: tuple[CallSite, ...] = ()


@dataclass(frozen=True)
class ClassSummary:
    """A class definition: bases, methods, and provable attribute types."""

    qualname: str
    name: str
    module: str
    lineno: int
    bases: tuple[str, ...] = ()
    methods: tuple[str, ...] = ()
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class ModuleSummary:
    """The per-module analysis artifact cached by content hash."""

    module: str
    relpath: str
    is_package: bool
    is_entry_point: bool
    bindings: dict[str, str] = field(default_factory=dict)
    functions: tuple[FunctionSummary, ...] = ()
    classes: tuple[ClassSummary, ...] = ()
    string_constants: dict[str, tuple[str, int]] = field(default_factory=dict)
    registry_sets: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable form (tuples become lists)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        """Rebuild a summary from :meth:`to_dict` output."""

        def calls(items: list) -> tuple[CallSite, ...]:
            return tuple(
                CallSite(
                    name=c["name"],
                    receiver_class=c["receiver_class"],
                    lineno=c["lineno"],
                    via_partial=c["via_partial"],
                    held_locks=tuple(c["held_locks"]),
                )
                for c in items
            )

        functions = tuple(
            FunctionSummary(
                qualname=f["qualname"],
                module=f["module"],
                name=f["name"],
                lineno=f["lineno"],
                is_async=f["is_async"],
                owner_class=f["owner_class"],
                calls=calls(f["calls"]),
                blocking=tuple(BlockingUse(**b) for b in f["blocking"]),
                locks=tuple(
                    LockAcquisition(
                        lock_id=k["lock_id"], lineno=k["lineno"], held=tuple(k["held"])
                    )
                    for k in f["locks"]
                ),
                telemetry=tuple(TelemetryUse(**t) for t in f["telemetry"]),
                global_rebinds=tuple(GlobalRebind(**g) for g in f["global_rebinds"]),
                pool_targets=calls(f["pool_targets"]),
            )
            for f in data["functions"]
        )
        classes = tuple(
            ClassSummary(
                qualname=c["qualname"],
                name=c["name"],
                module=c["module"],
                lineno=c["lineno"],
                bases=tuple(c["bases"]),
                methods=tuple(c["methods"]),
                attr_types=dict(c["attr_types"]),
            )
            for c in data["classes"]
        )
        return cls(
            module=data["module"],
            relpath=data["relpath"],
            is_package=data["is_package"],
            is_entry_point=data["is_entry_point"],
            bindings=dict(data["bindings"]),
            functions=functions,
            classes=classes,
            string_constants={
                k: (v[0], v[1]) for k, v in data["string_constants"].items()
            },
            registry_sets={k: tuple(v) for k, v in data["registry_sets"].items()},
        )


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def _attribute_chain(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _annotation_dotted(node: ast.expr | None) -> str | None:
    """Best-effort dotted class name out of an annotation expression."""
    if node is None:
        return None
    if isinstance(node, ast.Subscript):
        return _annotation_dotted(node.value)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # ``X | None`` → X (either side may carry the class).
        left = _annotation_dotted(node.left)
        right = _annotation_dotted(node.right)
        return left or right
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str) and all(
            part.isidentifier() for part in node.value.split(".")
        ):
            return node.value
        return None
    return _attribute_chain(node)


def _is_lockish_name(dotted: str) -> bool:
    return "lock" in dotted.split(".")[-1].lower()


def _is_lock_constructor(dotted: str) -> bool:
    if dotted in _LOCK_CONSTRUCTORS:
        return True
    return dotted.split(".")[-1] == "FileLock"


class _ModuleExtractor:
    """Single-pass extractor building a :class:`ModuleSummary`."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.bindings = ModuleBindings.collect(module)
        self.module_defs: set[str] = set()
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self.module_defs.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.module_defs.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                self.module_defs.add(node.target.id)

    # -- canonicalization ----------------------------------------------

    def canonical(self, dotted: str) -> str | None:
        """Canonical dotted path for a chain, or ``None`` if unrooted."""
        head = dotted.split(".")[0]
        if head in self.bindings:
            return self.bindings.canonicalize(dotted)
        if head in self.module_defs:
            return f"{self.module.name}.{dotted}"
        return None

    # -- class table ----------------------------------------------------

    def class_summary(self, node: ast.ClassDef) -> ClassSummary:
        qualname = f"{self.module.name}.{node.name}"
        bases = tuple(
            canonical
            for base in node.bases
            if (chain := _attribute_chain(base)) is not None
            and (canonical := self.canonical(chain)) is not None
        )
        methods: list[str] = []
        attr_types: dict[str, str] = {}
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
                self._collect_self_attr_types(stmt, attr_types)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                dotted = _annotation_dotted(stmt.annotation)
                canonical = self.canonical(dotted) if dotted else None
                if canonical is not None:
                    attr_types[stmt.target.id] = canonical
        return ClassSummary(
            qualname=qualname,
            name=node.name,
            module=self.module.name,
            lineno=node.lineno,
            bases=bases,
            methods=tuple(methods),
            attr_types=attr_types,
        )

    def _collect_self_attr_types(
        self, method: ast.FunctionDef | ast.AsyncFunctionDef, out: dict[str, str]
    ) -> None:
        """``self.x = Cls(...)`` / ``self.x: Cls = ...`` → provable types."""
        for node in ast.walk(method):
            target: ast.expr | None = None
            annotation: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, annotation, value = node.target, node.annotation, node.value
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            canonical = None
            if annotation is not None:
                dotted = _annotation_dotted(annotation)
                canonical = self.canonical(dotted) if dotted else None
            if canonical is None and isinstance(value, ast.Call):
                chain = _attribute_chain(value.func)
                canonical = self.canonical(chain) if chain else None
            if canonical is not None and attr not in out:
                out[attr] = canonical

    # -- module-level constants and registry sets ------------------------

    def module_constants(
        self,
    ) -> tuple[dict[str, tuple[str, int]], dict[str, tuple[str, ...]]]:
        constants: dict[str, tuple[str, int]] = {}
        sets: dict[str, tuple[str, ...]] = {}
        for node in self.module.tree.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                constants[target.id] = (value.value, node.lineno)
                continue
            resolved = self._resolve_name_collection(value, constants, sets)
            if resolved is not None:
                sets[target.id] = resolved
        return constants, sets

    def _resolve_name_collection(
        self,
        value: ast.expr,
        constants: dict[str, tuple[str, int]],
        sets: dict[str, tuple[str, ...]],
    ) -> tuple[str, ...] | None:
        """Evaluate a registry collection display to its string values.

        Handles ``frozenset({...})`` / ``set()`` / tuple / list / dict
        displays whose elements are string literals, references to
        earlier string constants, or ``*STARRED`` earlier collections.
        Unresolvable elements are skipped (the registry parity test
        guards against the static view drifting from the runtime one).
        """
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("frozenset", "set", "tuple")
            and len(value.args) == 1
        ):
            return self._resolve_name_collection(value.args[0], constants, sets)
        elements: list[ast.expr]
        if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            elements = list(value.elts)
        elif isinstance(value, ast.Dict):
            elements = [v for v in value.values if v is not None]
        else:
            return None
        out: list[str] = []
        for element in elements:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.append(element.value)
            elif isinstance(element, ast.Name):
                if element.id in constants:
                    out.append(constants[element.id][0])
                elif element.id in sets:
                    out.extend(sets[element.id])
            elif isinstance(element, ast.Starred):
                inner = element.value
                if isinstance(inner, ast.Name):
                    out.extend(sets.get(inner.id, ()))
                elif (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr == "values"
                    and isinstance(inner.func.value, ast.Name)
                ):
                    # ``*TABLE.values()`` over an earlier dict display.
                    out.extend(sets.get(inner.func.value.id, ()))
        return tuple(out)

    # -- function bodies -------------------------------------------------

    def function_summary(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        owner: ClassSummary | None,
    ) -> FunctionSummary:
        walker = _BodyWalker(self, node, owner)
        walker.run()
        qualname = (
            f"{owner.qualname}.{node.name}"
            if owner is not None
            else f"{self.module.name}.{node.name}"
        )
        return FunctionSummary(
            qualname=qualname,
            module=self.module.name,
            name=node.name,
            lineno=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            owner_class=owner.qualname if owner is not None else "",
            calls=tuple(walker.calls),
            blocking=tuple(walker.blocking),
            locks=tuple(walker.locks),
            telemetry=tuple(walker.telemetry),
            global_rebinds=tuple(walker.global_rebinds),
            pool_targets=tuple(walker.pool_targets),
        )


class _BodyWalker:
    """Lexical walk of one function body, threading the held-lock stack.

    Nested function and lambda bodies are folded into the enclosing
    function's summary — a conservative over-approximation (defining a
    closure is treated like running it) that keeps the call graph free
    of unresolvable closure nodes.
    """

    def __init__(
        self,
        extractor: _ModuleExtractor,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        owner: ClassSummary | None,
    ) -> None:
        self.x = extractor
        self.node = node
        self.owner = owner
        self.calls: list[CallSite] = []
        self.blocking: list[BlockingUse] = []
        self.locks: list[LockAcquisition] = []
        self.telemetry: list[TelemetryUse] = []
        self.global_rebinds: list[GlobalRebind] = []
        self.pool_targets: list[CallSite] = []
        self._global_names: set[str] = set()
        #: local name → canonical dotted class (provable instances only)
        self._env: dict[str, str] = {}
        self._locals: set[str] = set()
        for arg in self._all_args(node):
            self._locals.add(arg.arg)
            dotted = _annotation_dotted(arg.annotation)
            canonical = self.x.canonical(dotted) if dotted else None
            if canonical is not None:
                self._env[arg.arg] = canonical

    @staticmethod
    def _all_args(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.arg]:
        args = node.args
        out = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if args.vararg:
            out.append(args.vararg)
        if args.kwarg:
            out.append(args.kwarg)
        return out

    def run(self) -> None:
        for stmt in self.node.body:
            self._walk(stmt, ())

    # -- receiver typing -------------------------------------------------

    def _receiver_class(self, node: ast.expr) -> str | None:
        """Canonical class of an expression, when statically provable."""
        if isinstance(node, ast.Name):
            if node.id in ("self", "cls") and self.owner is not None:
                return self.owner.qualname
            return self._env.get(node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.owner is not None
        ):
            return self.owner.attr_types.get(node.attr)
        return None

    def _lock_identity(self, node: ast.expr) -> str | None:
        """Stable identity for a lock-shaped context expression."""
        if isinstance(node, ast.Call):
            chain = _attribute_chain(node.func)
            canonical = self.x.canonical(chain) if chain else None
            if canonical is not None and _is_lock_constructor(canonical):
                return canonical
            return None
        chain = _attribute_chain(node)
        if chain is None:
            return None
        parts = chain.split(".")
        if not _is_lockish_name(chain):
            # Not named like a lock: accept only if its provable type is
            # a lock class (e.g. ``with self.guard`` annotated FileLock).
            receiver = (
                self._receiver_class(node)
                if isinstance(node, (ast.Name, ast.Attribute))
                else None
            )
            if receiver is None or not _is_lock_constructor(receiver):
                return None
        if parts[0] in ("self", "cls") and self.owner is not None:
            return f"{self.owner.qualname}.{'.'.join(parts[1:])}"
        canonical = self.x.canonical(chain)
        if canonical is not None:
            return canonical
        if parts[0] in self._locals or parts[0] in self._env:
            return f"{self.node.name}:{chain}"
        return chain

    # -- the walk ---------------------------------------------------------

    def _walk(self, node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            new_held = held
            for item in node.items:
                self._walk(item.context_expr, held)
                lock_id = self._lock_identity(item.context_expr)
                if lock_id is not None:
                    self.locks.append(
                        LockAcquisition(
                            lock_id=lock_id,
                            lineno=item.context_expr.lineno,
                            held=new_held,
                        )
                    )
                    self.blocking.append(
                        BlockingUse(
                            category="lock",
                            symbol=f"with {lock_id}",
                            lineno=item.context_expr.lineno,
                        )
                    )
                    new_held = (*new_held, lock_id)
                if item.optional_vars is not None:
                    self._walk(item.optional_vars, held)
            for stmt in node.body:
                self._walk(stmt, new_held)
            return
        if isinstance(node, ast.Global):
            self._global_names.update(node.names)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._handle_assign(node, held)
            return
        if isinstance(node, ast.Call):
            self._handle_call(node, held)
            for child in ast.iter_child_nodes(node):
                self._walk(child, held)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: fold its body into this summary.
            for stmt in node.body:
                self._walk(stmt, held)
            return
        if isinstance(node, ast.Lambda):
            self._walk(node.body, held)
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child, held)

    def _handle_assign(
        self, node: ast.Assign | ast.AugAssign | ast.AnnAssign, held: tuple[str, ...]
    ) -> None:
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]
        value = node.value
        if value is not None:
            self._walk(value, held)
        for target in targets:
            if isinstance(target, ast.Name):
                if target.id in self._global_names:
                    self.global_rebinds.append(
                        GlobalRebind(name=target.id, lineno=node.lineno)
                    )
                else:
                    self._locals.add(target.id)
                    if (
                        isinstance(node, ast.Assign)
                        and len(targets) == 1
                        and isinstance(value, ast.Call)
                    ):
                        chain = _attribute_chain(value.func)
                        canonical = self.x.canonical(chain) if chain else None
                        if canonical is not None:
                            self._env[target.id] = canonical
            else:
                self._walk(target, held)

    # -- call handling ----------------------------------------------------

    def _handle_call(self, node: ast.Call, held: tuple[str, ...]) -> None:
        func = node.func
        # Builtin open(): file I/O unless the name is rebound.
        if (
            isinstance(func, ast.Name)
            and func.id == "open"
            and "open" not in self._locals
            and "open" not in self.x.bindings
            and "open" not in self.x.module_defs
        ):
            self.blocking.append(
                BlockingUse(category="file-io", symbol="open", lineno=node.lineno)
            )
            return

        chain = _attribute_chain(func)
        canonical = self.x.canonical(chain) if chain else None

        if canonical is not None:
            category = _BLOCKING_CALLS.get(canonical)
            if category is None and canonical.split(".")[0] == "subprocess":
                category = "subprocess"
            if category is not None:
                self.blocking.append(
                    BlockingUse(
                        category=category, symbol=canonical, lineno=node.lineno
                    )
                )
            if canonical.split(".")[-1] == "partial" and node.args:
                self._record_partial(node, held)
                return
            self.calls.append(
                CallSite(
                    name=canonical,
                    receiver_class="",
                    lineno=node.lineno,
                    held_locks=held,
                )
            )

        if isinstance(func, ast.Attribute):
            self._handle_method_call(node, func, held, chain)

    def _record_partial(self, node: ast.Call, held: tuple[str, ...]) -> None:
        """``functools.partial(f, ...)`` — edge to ``f`` (later called)."""
        target = node.args[0]
        chain = _attribute_chain(target)
        canonical = self.x.canonical(chain) if chain else None
        if canonical is not None:
            self.calls.append(
                CallSite(
                    name=canonical,
                    receiver_class="",
                    lineno=node.lineno,
                    via_partial=True,
                    held_locks=held,
                )
            )

    def _handle_method_call(
        self,
        node: ast.Call,
        func: ast.Attribute,
        held: tuple[str, ...],
        chain: str | None,
    ) -> None:
        method = func.attr
        # Method call on a provably typed receiver → method call site.
        receiver = self._receiver_class(func.value)
        if receiver is not None:
            self.calls.append(
                CallSite(
                    name=method,
                    receiver_class=receiver,
                    lineno=node.lineno,
                    held_locks=held,
                )
            )
        # Blocking heuristics that do not need receiver types.
        if method in _FILE_IO_METHODS:
            self.blocking.append(
                BlockingUse(
                    category="file-io",
                    symbol=f".{method}",
                    lineno=node.lineno,
                )
            )
        if method == "acquire":
            lockish = chain is not None and _is_lockish_name(
                chain.rsplit(".", 1)[0] if "." in (chain or "") else (chain or "")
            )
            typed_lock = receiver is not None and _is_lock_constructor(receiver)
            if lockish or typed_lock:
                lock_id = self._lock_identity(func.value) or (chain or "?")
                self.blocking.append(
                    BlockingUse(
                        category="lock",
                        symbol=f"{lock_id}.acquire",
                        lineno=node.lineno,
                    )
                )
                self.locks.append(
                    LockAcquisition(lock_id=lock_id, lineno=node.lineno, held=held)
                )
        # Telemetry emission.
        kind = _TELEMETRY_METHODS.get(method)
        if kind is not None and node.args:
            self._record_telemetry(kind, node.args[0], node.lineno)
        # Pool dispatch (QA003-style sites feeding the QA009 check).
        if method == "submit" or (
            method in _MAP_METHODS
            and any(
                p in (_attribute_chain(func.value) or "").lower() for p in _POOLISH
            )
        ):
            if node.args:
                self._record_pool_target(node.args[0], node.lineno, held)

    def _record_telemetry(self, kind: str, arg: ast.expr, lineno: int) -> None:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            self.telemetry.append(
                TelemetryUse(kind=kind, ref=arg.value, form="literal", lineno=lineno)
            )
            return
        if isinstance(arg, ast.IfExp):
            self._record_telemetry(kind, arg.body, lineno)
            self._record_telemetry(kind, arg.orelse, lineno)
            return
        if isinstance(arg, ast.Subscript):
            chain = _attribute_chain(arg.value)
            canonical = self.x.canonical(chain) if chain else None
            if canonical is not None:
                self.telemetry.append(
                    TelemetryUse(
                        kind=kind, ref=canonical, form="subscript", lineno=lineno
                    )
                )
            return
        if isinstance(arg, ast.Call):
            chain = _attribute_chain(arg.func)
            canonical = self.x.canonical(chain) if chain else None
            if canonical is not None and canonical.split(".")[-1] == "tenant_counter":
                if arg.args:
                    base_chain = _attribute_chain(arg.args[0])
                    base = self.x.canonical(base_chain) if base_chain else None
                    if base is not None:
                        self.telemetry.append(
                            TelemetryUse(
                                kind=kind, ref=base, form="pattern", lineno=lineno
                            )
                        )
            return
        chain = _attribute_chain(arg)
        canonical = self.x.canonical(chain) if chain else None
        if canonical is not None:
            self.telemetry.append(
                TelemetryUse(kind=kind, ref=canonical, form="constant", lineno=lineno)
            )

    def _record_pool_target(
        self, arg: ast.expr, lineno: int, held: tuple[str, ...]
    ) -> None:
        if isinstance(arg, ast.Call):
            chain = _attribute_chain(arg.func)
            canonical = self.x.canonical(chain) if chain else None
            if canonical is not None and canonical.split(".")[-1] == "partial":
                if arg.args:
                    self._record_pool_target(arg.args[0], lineno, held)
            return
        chain = _attribute_chain(arg)
        canonical = self.x.canonical(chain) if chain else None
        if canonical is not None:
            self.pool_targets.append(
                CallSite(
                    name=canonical,
                    receiver_class="",
                    lineno=lineno,
                    held_locks=held,
                )
            )


def summarize_module(module: ModuleInfo) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` for one parsed module."""
    extractor = _ModuleExtractor(module)
    classes: list[ClassSummary] = []
    functions: list[FunctionSummary] = []
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            summary = extractor.class_summary(node)
            classes.append(summary)
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.append(extractor.function_summary(stmt, summary))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(extractor.function_summary(node, None))
    constants, registry_sets = extractor.module_constants()
    return ModuleSummary(
        module=module.name,
        relpath=module.relpath,
        is_package=module.is_package,
        is_entry_point=module.name.rsplit(".", 1)[-1] == "__main__",
        bindings=dict(extractor.bindings.bindings),
        functions=tuple(functions),
        classes=tuple(classes),
        string_constants=constants,
        registry_sets=registry_sets,
    )
