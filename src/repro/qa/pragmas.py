"""Inline suppression pragmas.

A finding can be acknowledged at its source line with a trailing
comment::

    fs = 48_000.0          # qa: ignore[QA004]
    x = thing()            # qa: ignore[QA001, QA004]
    y = other()            # qa: ignore

The bracketed form suppresses only the listed rule ids on that line;
the bare form suppresses every rule.  Pragmas are the *local* escape
hatch (one line, visible in review next to the code it excuses); the
baseline file is the *bulk* one for pre-existing debt.
"""

from __future__ import annotations

import re

__all__ = ["PragmaIndex", "parse_pragmas"]

#: Matches ``# qa: ignore`` with an optional ``[QA001, QA002]`` list.
_PRAGMA_RE = re.compile(
    r"#\s*qa:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s-]*)\])?",
)

#: Sentinel rule set meaning "every rule".
ALL_RULES = frozenset({"*"})


class PragmaIndex:
    """Per-line suppression table for one module."""

    def __init__(self, by_line: dict[int, frozenset[str]]) -> None:
        self._by_line = by_line

    def suppresses(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is suppressed on 1-based ``line``."""
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return rules is ALL_RULES or "*" in rules or rule in rules

    def __len__(self) -> int:
        return len(self._by_line)


def parse_pragmas(source: str) -> PragmaIndex:
    """Scan source text for ``# qa: ignore`` pragmas.

    A pure line-regex scan is deliberate: pragmas inside string literals
    are vanishingly rare in practice and a tokenizer pass would make the
    linter fail on files Python itself can still parse.
    """
    by_line: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        listed = match.group("rules")
        if listed is None:
            by_line[lineno] = ALL_RULES
        else:
            rules = frozenset(
                part.strip().upper() for part in listed.split(",") if part.strip()
            )
            by_line[lineno] = rules if rules else ALL_RULES
    return PragmaIndex(by_line)
