"""Filesystem → AST model of the package under analysis.

The engine parses every Python module under one *source root* (the
directory whose children are importable top-level packages, i.e.
``src/`` in this repo) into :class:`ModuleInfo` objects, and
:class:`Project` adds the cross-module services rules need:

- dotted-name lookup (``repro.core.config``),
- static resolution of a name imported into a module back to the
  ``ClassDef`` that defines it, following relative imports and package
  ``__init__`` re-exports (required by the fingerprint-completeness
  rule, whose config tree spans five modules).

Everything is computed from source text — nothing is imported — so the
linter can analyse fixture trees containing deliberate violations
without executing them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

__all__ = ["ModuleInfo", "Project"]


@dataclass
class ModuleInfo:
    """One parsed source module.

    Attributes
    ----------
    path:
        Absolute path of the ``.py`` file.
    relpath:
        POSIX path relative to the scanned source root (what findings
        report).
    name:
        Dotted module name, e.g. ``"repro.signal.chirp"``; package
        ``__init__`` files take the package's own dotted name.
    is_package:
        True for ``__init__.py`` modules.
    source:
        Raw source text.
    tree:
        Parsed ``ast.Module``.
    """

    path: Path
    relpath: str
    name: str
    is_package: bool
    source: str
    tree: ast.Module
    _classes: dict[str, ast.ClassDef] | None = field(default=None, repr=False)

    @property
    def lines(self) -> list[str]:
        """Source split into lines (1-based indexing via ``lines[n-1]``)."""
        return self.source.splitlines()

    def top_level_classes(self) -> dict[str, ast.ClassDef]:
        """Name → ``ClassDef`` for classes defined at module top level."""
        if self._classes is None:
            self._classes = {
                node.name: node
                for node in self.tree.body
                if isinstance(node, ast.ClassDef)
            }
        return self._classes

    def package_parts(self) -> list[str]:
        """Dotted parts of the package containing this module."""
        parts = self.name.split(".")
        return parts if self.is_package else parts[:-1]


class Project:
    """All modules under one source root, with static name resolution."""

    def __init__(
        self,
        root: Path,
        modules: dict[str, ModuleInfo],
        exclude_parts: tuple[str, ...] = ("__pycache__",),
    ) -> None:
        self.root = root
        self.modules = modules
        #: Kept so parallel workers can reproduce this exact scan.
        self.exclude_parts = exclude_parts

    @classmethod
    def scan(
        cls, root: Path, *, exclude_parts: tuple[str, ...] = ("__pycache__",)
    ) -> "Project":
        """Parse every ``.py`` under ``root`` into a project model.

        Files that fail to parse are skipped (the engine lints code, it
        does not compile it); hidden directories and ``exclude_parts``
        are pruned.
        """
        root = Path(root).resolve()
        modules: dict[str, ModuleInfo] = {}
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root)
            if any(part.startswith(".") or part in exclude_parts for part in rel.parts):
                continue
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, UnicodeDecodeError):
                continue
            is_package = path.name == "__init__.py"
            parts = list(rel.parts[:-1]) if is_package else [
                *rel.parts[:-1],
                rel.stem,
            ]
            name = ".".join(parts) if parts else rel.stem
            modules[name] = ModuleInfo(
                path=path,
                relpath=rel.as_posix(),
                name=name,
                is_package=is_package,
                source=source,
                tree=tree,
            )
        return cls(root, modules, exclude_parts)

    def __iter__(self) -> Iterable[ModuleInfo]:
        return iter(self.modules.values())

    def get(self, dotted: str) -> ModuleInfo | None:
        """Module by dotted name, or ``None``."""
        return self.modules.get(dotted)

    # -- static name resolution ---------------------------------------

    def resolve_import_target(
        self, module: ModuleInfo, node: ast.ImportFrom
    ) -> str | None:
        """Dotted name of the module an ``ImportFrom`` pulls from.

        Handles relative imports: ``from ..signal.chirp import X``
        inside ``repro.core.config`` resolves to ``repro.signal.chirp``.
        """
        if node.level == 0:
            return node.module
        base = module.package_parts()
        hops = node.level - 1
        if hops > len(base):
            return None
        base = base[: len(base) - hops] if hops else base
        if node.module:
            base = [*base, *node.module.split(".")]
        return ".".join(base) if base else None

    def resolve_class(
        self,
        module: ModuleInfo,
        class_name: str,
        _seen: frozenset[str] = frozenset(),
    ) -> tuple[ModuleInfo, ast.ClassDef] | None:
        """Find the ``ClassDef`` that ``class_name`` refers to in ``module``.

        Resolution order: a class defined in the module itself, then
        imports (following chains of re-exports through package
        ``__init__`` files), then — as a last resort — a *unique*
        top-level class of that name anywhere in the project.
        """
        if module.name in _seen:
            return None
        _seen = _seen | {module.name}

        own = module.top_level_classes().get(class_name)
        if own is not None:
            return module, own

        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if bound != class_name:
                        continue
                    target = self.resolve_import_target(module, node)
                    if target is None:
                        continue
                    target_module = self.get(target)
                    if target_module is not None:
                        found = self.resolve_class(target_module, alias.name, _seen)
                        if found is not None:
                            return found
                    # ``from pkg import submodule`` binds a module, not
                    # a class; nothing to resolve in that case.

        candidates = [
            (m, m.top_level_classes()[class_name])
            for m in self.modules.values()
            if class_name in m.top_level_classes()
        ]
        if len(candidates) == 1:
            return candidates[0]
        return None
