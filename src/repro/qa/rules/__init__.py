"""Domain lint rules.

Importing this package registers every rule with the engine registry
(:func:`repro.qa.engine.all_rules` relies on that side effect).  Each
rule lives in its own module, named after its id, and documents the
scientific invariant it protects in its module docstring.

QA001–QA007, QA011, and QA012 are per-file (``check_module``) rules;
QA008–QA010 are whole-program (``check_program``) rules built on the
call-graph and summary machinery in :mod:`repro.qa.graph`.
"""

from . import (  # noqa: F401  (imports register the rules)
    qa001_determinism,
    qa002_fingerprint,
    qa003_pool_safety,
    qa004_units,
    qa005_api,
    qa006_exceptions,
    qa007_telemetry,
    qa008_async_blocking,
    qa009_lock_discipline,
    qa010_telemetry_registry,
    qa011_dtype,
    qa012_cardinality,
)
from .qa001_determinism import DeterminismRule
from .qa002_fingerprint import FingerprintCompletenessRule
from .qa003_pool_safety import PoolSafetyRule
from .qa004_units import UnitDisciplineRule
from .qa005_api import PublicApiRule
from .qa006_exceptions import ExceptionBoundaryRule
from .qa007_telemetry import TelemetryDisciplineRule
from .qa008_async_blocking import AsyncBlockingRule
from .qa009_lock_discipline import LockDisciplineRule
from .qa010_telemetry_registry import TelemetryRegistryRule
from .qa011_dtype import DtypeDisciplineRule
from .qa012_cardinality import LabelCardinalityRule

__all__ = [
    "DeterminismRule",
    "FingerprintCompletenessRule",
    "PoolSafetyRule",
    "UnitDisciplineRule",
    "PublicApiRule",
    "ExceptionBoundaryRule",
    "TelemetryDisciplineRule",
    "AsyncBlockingRule",
    "LockDisciplineRule",
    "TelemetryRegistryRule",
    "DtypeDisciplineRule",
    "LabelCardinalityRule",
]
