"""Domain lint rules.

Importing this package registers every rule with the engine registry
(:func:`repro.qa.engine.all_rules` relies on that side effect).  Each
rule lives in its own module, named after its id, and documents the
scientific invariant it protects in its module docstring.
"""

from . import (  # noqa: F401  (imports register the rules)
    qa001_determinism,
    qa002_fingerprint,
    qa003_pool_safety,
    qa004_units,
    qa005_api,
    qa006_exceptions,
    qa007_telemetry,
)
from .qa001_determinism import DeterminismRule
from .qa002_fingerprint import FingerprintCompletenessRule
from .qa003_pool_safety import PoolSafetyRule
from .qa004_units import UnitDisciplineRule
from .qa005_api import PublicApiRule
from .qa006_exceptions import ExceptionBoundaryRule
from .qa007_telemetry import TelemetryDisciplineRule

__all__ = [
    "DeterminismRule",
    "FingerprintCompletenessRule",
    "PoolSafetyRule",
    "UnitDisciplineRule",
    "PublicApiRule",
    "ExceptionBoundaryRule",
    "TelemetryDisciplineRule",
]
