"""Shared AST utilities for rules.

The common need across rules is turning syntax back into *canonical
dotted names*: ``np.random.rand`` only means ``numpy.random.rand``
under this module's imports, and ``shuffle`` may be
``random.shuffle`` in disguise.  :class:`ImportMap` records what each
top-level binding canonically refers to, and :func:`canonical_name`
rewrites an expression's dotted chain through it.
"""

from __future__ import annotations

import ast

from ..project import ModuleInfo

__all__ = ["ImportMap", "attribute_chain", "canonical_name", "module_subpackage"]


def attribute_chain(node: ast.expr) -> str | None:
    """Dotted text of a ``Name``/``Attribute`` chain, else ``None``.

    ``np.random.rand`` → ``"np.random.rand"``; anything containing a
    call or subscript in the chain yields ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportMap:
    """Top-level binding name → canonical dotted path for one module."""

    def __init__(self, tree: ast.Module) -> None:
        self.bindings: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.bindings[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds ``numpy``.
                        head = alias.name.split(".")[0]
                        self.bindings[head] = head
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.bindings[bound] = f"{node.module}.{alias.name}"

    def canonicalize(self, dotted: str) -> str:
        """Rewrite a dotted chain's head through the import bindings."""
        head, _, rest = dotted.partition(".")
        canonical_head = self.bindings.get(head, head)
        return f"{canonical_head}.{rest}" if rest else canonical_head


def canonical_name(node: ast.expr, imports: ImportMap) -> str | None:
    """Canonical dotted name of an expression, or ``None``."""
    dotted = attribute_chain(node)
    if dotted is None:
        return None
    return imports.canonicalize(dotted)


def module_subpackage(module: ModuleInfo) -> str | None:
    """First component under the top-level package, or ``None``.

    ``repro.signal.chirp`` → ``"signal"``; the root package itself
    (``repro``) has no subpackage.
    """
    parts = module.name.split(".")
    return parts[1] if len(parts) >= 2 else None
