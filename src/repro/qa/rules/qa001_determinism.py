"""QA001 — determinism of the science path.

Every published number in the reproduction is a pure function of
``(waveforms, EarSonarConfig, seed)``.  That only holds if the DSP,
feature, acoustics, simulation, and core packages never reach for an
ambient entropy or clock source.  This rule forbids, inside those
packages:

- the legacy ``numpy.random`` module API (``np.random.rand``,
  ``np.random.seed``, ``RandomState`` …) — global mutable RNG state;
- the stdlib ``random`` module — per-process Mersenne state that no
  config fingerprints;
- wall-clock reads (``time.time``, ``datetime.now``/``utcnow``/
  ``today``) — monotonic ``perf_counter`` for latency metrics is fine;
- *creating* generators ad hoc: ``np.random.default_rng()`` unseeded,
  or seeded with an inline literal, inside library code.  Generators
  are created once at an entry point from a config/CLI seed and
  threaded down as ``np.random.Generator`` parameters.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Rule, register
from ..findings import Finding, Severity
from ..project import ModuleInfo, Project
from ._helpers import ImportMap, attribute_chain, canonical_name, module_subpackage

__all__ = ["DeterminismRule"]

#: Subpackages whose code must be deterministic under a threaded seed.
#: ``serve`` is held to the same standard in *virtual time*: its entire
#: behavior (deadlines, backpressure, fairness, the feedback loop) must
#: be a pure function of submitted requests and the injected clock.
SCIENCE_SUBPACKAGES = (
    "signal",
    "features",
    "acoustics",
    "simulation",
    "core",
    "kernels",
    "faultlab",
    "quality",
    "serve",
)

#: Modules that *implement* the clock abstraction and may therefore
#: touch real time sources; everything else in ``serve`` must go
#: through an injected :class:`repro.serve.clock.Clock`.
CLOCK_BOUNDARY_MODULES = frozenset({"serve.clock"})

#: Calls forbidden in ``serve`` outside the clock boundary: direct time
#: reads and sleeps (deterministic tests would hang or flake), and the
#: asyncio timeout helpers that hard-wire the real event-loop clock
#: (``wait_for``/``timeout`` time out on the wall even under a
#: VirtualClock — use :func:`repro.serve.clock.wait_for_event`).
_SERVE_CLOCK_CALLS = frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.sleep",
        "asyncio.sleep",
        "asyncio.wait_for",
        "asyncio.timeout",
    }
)


def _is_clock_boundary(module: ModuleInfo) -> bool:
    name = module.name
    if name.startswith("repro."):
        name = name[len("repro."):]
    return name in CLOCK_BOUNDARY_MODULES

#: ``numpy.random`` attributes that are part of the modern, explicitly
#: seeded Generator API and therefore allowed.
_ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Canonical names of wall-clock reads.
_CLOCK_READS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class DeterminismRule(Rule):
    """Forbid ambient entropy and wall clocks in science packages."""

    rule_id = "QA001"
    severity = Severity.ERROR
    description = (
        "science packages must not use legacy/global RNGs, the stdlib "
        "random module, or wall clocks; thread a seeded np.random.Generator"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        subpackage = module_subpackage(module)
        if subpackage not in SCIENCE_SUBPACKAGES:
            return
        if _is_clock_boundary(module):
            return
        in_serve = subpackage == "serve"
        imports = ImportMap(module.tree)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random" or (
                    node.module and node.module.startswith("random.")
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"import from stdlib 'random' module ('{node.module}')",
                        "use a threaded np.random.Generator instead",
                    )
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            module,
                            node.lineno,
                            f"import of stdlib 'random' module ('{alias.name}')",
                            "use a threaded np.random.Generator instead",
                        )
                continue
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            yield from self._check_use(module, node, imports, in_serve=in_serve)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_rng_creation(module, node, imports)

    def _check_use(
        self,
        module: ModuleInfo,
        node: ast.expr,
        imports: ImportMap,
        in_serve: bool = False,
    ) -> Iterable[Finding]:
        dotted = attribute_chain(node)
        if dotted is None or dotted.split(".")[0] not in imports.bindings:
            # Chains rooted in locals (a variable that happens to be
            # called ``random``) are not uses of the forbidden modules.
            return
        name = imports.canonicalize(dotted)

        # Only the full chain resolves to a flaggable canonical name:
        # for ``np.random.rand`` the inner ``np.random`` maps to
        # ``numpy.random`` (allowed) so chains are not double-reported.
        if name.startswith("numpy.random.") and len(name.split(".")) >= 3:
            attr = name.split(".")[2]
            if attr not in _ALLOWED_NP_RANDOM:
                yield self.finding(
                    module,
                    node.lineno,
                    f"legacy numpy RNG '{name}' uses hidden global state",
                    "thread an explicitly seeded np.random.Generator parameter",
                )
        elif name.startswith("random."):
            yield self.finding(
                module,
                node.lineno,
                f"stdlib random call '{name}' is unseeded process state",
                "thread an explicitly seeded np.random.Generator parameter",
            )
        elif name in _CLOCK_READS:
            yield self.finding(
                module,
                node.lineno,
                f"wall-clock read '{name}' makes results time-dependent",
                "use time.perf_counter for latency metrics; pass timestamps in",
            )
        elif in_serve and name in _SERVE_CLOCK_CALLS:
            yield self.finding(
                module,
                node.lineno,
                f"direct time source '{name}' in repro.serve bypasses the "
                "injected Clock, breaking virtual-time determinism",
                "read/sleep via the injected repro.serve.clock.Clock (or "
                "wait_for_event for timeouts)",
            )

    def _check_rng_creation(
        self, module: ModuleInfo, node: ast.Call, imports: ImportMap
    ) -> Iterable[Finding]:
        """Generators must be threaded down, not created ad hoc."""
        name = canonical_name(node.func, imports)
        if name != "numpy.random.default_rng":
            return
        if not node.args and not node.keywords:
            yield self.finding(
                module,
                node.lineno,
                "unseeded np.random.default_rng() draws OS entropy",
                "accept an np.random.Generator (or seed) parameter instead",
            )
        elif node.args and isinstance(node.args[0], ast.Constant):
            yield self.finding(
                module,
                node.lineno,
                f"np.random.default_rng({node.args[0].value!r}) hard-codes a "
                "seed inside library code",
                "seeds belong in configs and entry points; thread the "
                "Generator down",
            )
