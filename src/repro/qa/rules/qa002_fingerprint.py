"""QA002 — cache-key (fingerprint) completeness of the config tree.

PR 1's :class:`~repro.runtime.cache.FeatureCache` keys every cached
result by ``EarSonarConfig.fingerprint()``.  The fingerprint walks the
dataclass tree with ``dataclasses.fields`` and canonicalizes each leaf,
so it is complete *only if* every tunable value in the tree is

1. an actual dataclass **field** — a bare class attribute or a
   ``ClassVar``/``InitVar`` is invisible to ``dataclasses.fields`` and
   therefore silently excluded from the cache key;
2. of a **canonicalizable type** — a scalar, enum, nested config
   dataclass, or container thereof.  An ``np.ndarray`` or callable
   field would make ``config_fingerprint`` raise at runtime, i.e. the
   first cache lookup after someone adds it, far from the edit;
3. on a **frozen dataclass** — mutating a config after results were
   cached under its fingerprint silently decouples key from content.

This rule proves all three statically: it finds the root config class
(``EarSonarConfig``), resolves every nested annotation across modules,
and walks the whole tree.  Adding a config field that the cache key
cannot cover is a lint error at the line of the new field.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Rule, register
from ..findings import Finding, Severity
from ..project import ModuleInfo, Project

__all__ = ["FingerprintCompletenessRule", "ROOT_CONFIG_CLASS"]

#: Name of the root class whose tree must be fully fingerprintable.
ROOT_CONFIG_CLASS = "EarSonarConfig"

#: Builtin scalar annotations ``_canonicalize`` accepts directly.
_SCALAR_NAMES = frozenset({"bool", "int", "float", "str"})

#: Generic containers whose element types are checked recursively.
_CONTAINER_NAMES = frozenset(
    {"list", "tuple", "dict", "List", "Tuple", "Dict", "Sequence", "Mapping",
     "FrozenSet", "frozenset", "Set", "set"}
)

#: Enum base-class names we recognise statically.
_ENUM_BASES = frozenset({"Enum", "IntEnum", "StrEnum", "IntFlag", "Flag"})


def _decorator_info(node: ast.ClassDef) -> tuple[bool, bool]:
    """(is_dataclass, is_frozen) from a class's decorator list."""
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name != "dataclass":
            continue
        frozen = False
        if isinstance(deco, ast.Call):
            for kw in deco.keywords:
                if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                    frozen = bool(kw.value.value)
        return True, frozen
    return False, False


def _annotation_names(node: ast.expr) -> str | None:
    """Trailing identifier of an annotation expression, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class FingerprintCompletenessRule(Rule):
    """Every leaf of the root config tree must reach the fingerprint."""

    rule_id = "QA002"
    severity = Severity.ERROR
    description = (
        "every field of the EarSonarConfig tree must be a fingerprintable "
        "dataclass field (no ClassVar/bare attributes, canonicalizable types, "
        "frozen dataclasses only)"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        for module in project:
            root = module.top_level_classes().get(ROOT_CONFIG_CLASS)
            if root is not None:
                yield from self._check_tree(project, module, root)

    # -- tree walk -----------------------------------------------------

    def _check_tree(
        self, project: Project, module: ModuleInfo, root: ast.ClassDef
    ) -> Iterable[Finding]:
        queue: list[tuple[ModuleInfo, ast.ClassDef]] = [(module, root)]
        visited: set[tuple[str, str]] = set()
        while queue:
            mod, cls = queue.pop(0)
            key = (mod.name, cls.name)
            if key in visited:
                continue
            visited.add(key)
            yield from self._check_config_class(project, mod, cls, queue)

    def _check_config_class(
        self,
        project: Project,
        module: ModuleInfo,
        cls: ast.ClassDef,
        queue: list[tuple[ModuleInfo, ast.ClassDef]],
    ) -> Iterable[Finding]:
        is_dataclass, frozen = _decorator_info(cls)
        if not is_dataclass:
            yield self.finding(
                module,
                cls.lineno,
                f"config class '{cls.name}' is not a dataclass; "
                "config_fingerprint cannot traverse it",
                "decorate it with @dataclass(frozen=True)",
            )
            return
        if not frozen:
            yield self.finding(
                module,
                cls.lineno,
                f"config dataclass '{cls.name}' is not frozen; mutation after "
                "caching would decouple cache keys from content",
                "use @dataclass(frozen=True)",
            )

        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                yield from self._check_field(
                    project, module, cls, stmt, queue
                )
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and not target.id.startswith("__"):
                        yield self.finding(
                            module,
                            stmt.lineno,
                            f"'{cls.name}.{target.id}' is a bare class attribute: "
                            "invisible to dataclasses.fields() and therefore "
                            "excluded from the cache fingerprint",
                            "annotate it as a dataclass field (or move it out of "
                            "the config tree)",
                        )

    def _check_field(
        self,
        project: Project,
        module: ModuleInfo,
        cls: ast.ClassDef,
        stmt: ast.AnnAssign,
        queue: list[tuple[ModuleInfo, ast.ClassDef]],
    ) -> Iterable[Finding]:
        field_name = stmt.target.id  # type: ignore[union-attr]
        annotation = stmt.annotation
        head = _annotation_names(annotation)
        if isinstance(annotation, ast.Subscript):
            head = _annotation_names(annotation.value)
        if head in ("ClassVar", "InitVar"):
            yield self.finding(
                module,
                stmt.lineno,
                f"'{cls.name}.{field_name}' is {head}-"
                "annotated: excluded from dataclasses.fields() and the "
                "cache fingerprint",
                "make it a regular field or move it off the config",
            )
            return
        yield from self._check_annotation(
            project, module, cls, field_name, stmt.lineno, annotation, queue
        )

    def _check_annotation(
        self,
        project: Project,
        module: ModuleInfo,
        cls: ast.ClassDef,
        field_name: str,
        lineno: int,
        annotation: ast.expr,
        queue: list[tuple[ModuleInfo, ast.ClassDef]],
    ) -> Iterable[Finding]:
        def bad(reason: str) -> Finding:
            return self.finding(
                module,
                lineno,
                f"'{cls.name}.{field_name}' has non-fingerprintable type "
                f"{ast.unparse(annotation)!s}: {reason}",
                "use scalars, enums, containers of those, or a frozen config "
                "dataclass; config_fingerprint would reject this value",
            )

        ok, reason = self._annotation_ok(project, module, annotation, queue)
        if not ok:
            yield bad(reason)

    def _annotation_ok(
        self,
        project: Project,
        module: ModuleInfo,
        node: ast.expr,
        queue: list[tuple[ModuleInfo, ast.ClassDef]],
    ) -> tuple[bool, str]:
        """Whether an annotation subtree is statically canonicalizable."""
        # String (forward-reference) annotations: parse and recurse.
        if isinstance(node, ast.Constant):
            if node.value is None:
                return True, ""
            if isinstance(node.value, str):
                try:
                    parsed = ast.parse(node.value, mode="eval").body
                except SyntaxError:
                    return False, "unparsable string annotation"
                return self._annotation_ok(project, module, parsed, queue)
            return False, f"literal annotation {node.value!r}"

        if isinstance(node, ast.Name) or isinstance(node, ast.Attribute):
            name = _annotation_names(node)
            if name in _SCALAR_NAMES or name == "None":
                return True, ""
            if name in ("Any", "object", "ndarray", "array", "Callable", "Path"):
                return False, f"'{name}' cannot be canonicalized deterministically"
            resolved = project.resolve_class(module, name) if isinstance(
                node, ast.Name
            ) else None
            if resolved is None:
                return False, f"cannot statically resolve type '{ast.unparse(node)}'"
            res_module, res_cls = resolved
            base_names = {
                _annotation_names(base) for base in res_cls.bases
            }
            if base_names & _ENUM_BASES:
                return True, ""
            is_dc, _ = _decorator_info(res_cls)
            if is_dc:
                queue.append((res_module, res_cls))
                return True, ""
            return False, (
                f"'{name}' is neither a scalar, an Enum, nor a dataclass"
            )

        if isinstance(node, ast.Subscript):
            head = _annotation_names(node.value)
            if head == "Literal":
                return True, ""  # Literal args are scalar constants by definition
            if head in ("Optional", "Union"):
                return self._subscript_args_ok(project, module, node, queue)
            if head in _CONTAINER_NAMES:
                return self._subscript_args_ok(project, module, node, queue)
            return False, f"unsupported generic '{head}'"

        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            for side in (node.left, node.right):
                ok, reason = self._annotation_ok(project, module, side, queue)
                if not ok:
                    return ok, reason
            return True, ""

        if isinstance(node, ast.Tuple):
            for elt in node.elts:
                ok, reason = self._annotation_ok(project, module, elt, queue)
                if not ok:
                    return ok, reason
            return True, ""

        return False, f"unsupported annotation form '{ast.unparse(node)}'"

    def _subscript_args_ok(
        self,
        project: Project,
        module: ModuleInfo,
        node: ast.Subscript,
        queue: list[tuple[ModuleInfo, ast.ClassDef]],
    ) -> tuple[bool, str]:
        inner = node.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        for element in elements:
            if isinstance(element, ast.Constant) and element.value is Ellipsis:
                continue
            ok, reason = self._annotation_ok(project, module, element, queue)
            if not ok:
                return ok, reason
        return True, ""
