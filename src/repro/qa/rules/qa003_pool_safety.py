"""QA003 — process-pool safety of dispatched callables.

:class:`~repro.runtime.executor.BatchExecutor` fans work out over a
``ProcessPoolExecutor``.  Everything submitted crosses a pickle
boundary, so the callable must be importable by name in the worker:

- a **lambda** or **nested function** fails to pickle at runtime — but
  only on the first parallel run, which the test suite (serial by
  default) never exercises;
- a **bound method** drags its whole instance through pickle, silently
  shipping open handles/caches and breaking whenever any attribute is
  unpicklable;
- a nested function that *does* sneak through via a wrapper closes over
  locals (open files, RNG state) whose worker-side copies diverge from
  the parent.

The rule statically checks the first argument of ``.submit(...)`` and
of the map-family methods on pool-like receivers, unwrapping
``functools.partial``.  Module-level functions pass; everything else is
flagged at the dispatch site.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterable

from ..engine import Rule, register
from ..findings import Finding, Severity
from ..project import ModuleInfo, Project
from ._helpers import attribute_chain

__all__ = ["PoolSafetyRule"]

#: Methods whose first argument is a callable shipped to workers.
_MAP_METHODS = frozenset({"map", "imap", "imap_unordered", "starmap", "apply_async"})

#: Receiver-name fragments that mark a pool-like object for the
#: map-family check (``submit`` is distinctive enough on its own).
_POOLISH = ("pool", "executor")


def _collect_module_level_names(tree: ast.Module) -> set[str]:
    """Names bound at module level to defs, classes, or imports."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and not isinstance(
                    node.value, ast.Lambda
                ):
                    names.add(target.id)
    return names


def _collect_nested_defs(tree: ast.Module) -> dict[str, int]:
    """Function names defined *inside* other functions → def line."""
    nested: dict[str, int] = {}

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.depth = 0

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            if self.depth > 0:
                nested[node.name] = node.lineno
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    Visitor().visit(tree)
    return nested


def _collect_lambda_bindings(tree: ast.Module) -> dict[str, int]:
    """Names assigned from a lambda anywhere in the module → line."""
    bindings: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bindings[target.id] = node.lineno
    return bindings


@register
class PoolSafetyRule(Rule):
    """Callables crossing the process-pool boundary must be module-level."""

    rule_id = "QA003"
    severity = Severity.ERROR
    description = (
        "functions submitted to process pools must be module-level; lambdas, "
        "nested functions, and bound methods break pickling or ship state"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        dispatch_sites = list(self._dispatch_sites(module.tree))
        if not dispatch_sites:
            return
        module_level = _collect_module_level_names(module.tree)
        nested = _collect_nested_defs(module.tree)
        lambdas = _collect_lambda_bindings(module.tree)

        for call, method in dispatch_sites:
            if not call.args:
                continue
            yield from self._check_callable(
                module, call.args[0], method, module_level, nested, lambdas
            )

    def _dispatch_sites(
        self, tree: ast.Module
    ) -> Iterable[tuple[ast.Call, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            method = node.func.attr
            if method == "submit":
                yield node, method
            elif method in _MAP_METHODS:
                receiver = attribute_chain(node.func.value) or ""
                if any(p in receiver.lower() for p in _POOLISH):
                    yield node, method

    def _check_callable(
        self,
        module: ModuleInfo,
        fn: ast.expr,
        method: str,
        module_level: set[str],
        nested: dict[str, int],
        lambdas: dict[str, int],
    ) -> Iterable[Finding]:
        if isinstance(fn, ast.Lambda):
            yield self.finding(
                module,
                fn.lineno,
                f"lambda passed to .{method}(): lambdas cannot be pickled "
                "into pool workers",
                "hoist it to a module-level function",
            )
            return
        if isinstance(fn, ast.Call):
            # functools.partial(f, ...) pickles iff f does: unwrap.
            target = attribute_chain(fn.func) or ""
            if target.endswith("partial") and fn.args:
                yield from self._check_callable(
                    module, fn.args[0], method, module_level, nested, lambdas
                )
            return
        if isinstance(fn, ast.Attribute):
            chain = attribute_chain(fn)
            head = (chain or "").split(".")[0]
            if head in module_level:
                return  # e.g. mymodule.worker_fn — importable by name
            yield self.finding(
                module,
                fn.lineno,
                f"bound method or attribute '{chain or '?'}' passed to "
                f".{method}(): pickling ships the whole instance to workers",
                "pass a module-level function and the needed data explicitly",
            )
            return
        if isinstance(fn, ast.Name):
            if fn.id in lambdas:
                yield self.finding(
                    module,
                    fn.lineno,
                    f"'{fn.id}' (assigned from a lambda on line "
                    f"{lambdas[fn.id]}) passed to .{method}(): lambdas cannot "
                    "be pickled into pool workers",
                    "define it with def at module level",
                )
            elif fn.id in nested:
                yield self.finding(
                    module,
                    fn.lineno,
                    f"nested function '{fn.id}' (defined on line "
                    f"{nested[fn.id]}) passed to .{method}(): closures cannot "
                    "be pickled into pool workers",
                    "hoist it to module level and pass captured state as "
                    "arguments",
                )
            elif fn.id not in module_level and not hasattr(builtins, fn.id):
                yield self.finding(
                    module,
                    fn.lineno,
                    f"cannot statically verify '{fn.id}' passed to "
                    f".{method}() is a module-level callable",
                    "prefer passing module-level functions directly to pool "
                    "dispatch",
                    severity=Severity.WARNING,
                )
