"""QA004 — unit discipline: no magic sample-rate literals in DSP code.

Every stage of the pipeline derives its timing from the config's
``sample_rate``/Hz fields; the config validators then prove the whole
chain consistent (chirp band inside the band-pass, segmenter rate equal
to chirp rate, …).  A literal ``48000`` buried in a function body
bypasses that proof: it keeps working until someone runs the system at
a different rate, at which point delays, band edges, and distances are
silently wrong — no exception, just corrupted features.

The rule flags numeric literals matching well-known audio sample rates
inside function bodies of the DSP packages.  Literals are *allowed*
where rates legitimately live:

- dataclass field defaults (the config layer — includes nested
  ``default_factory`` expressions), and
- module-level ``ALL_CAPS`` constants (named, greppable, documented).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Rule, register
from ..findings import Finding, Severity
from ..project import ModuleInfo, Project
from ._helpers import module_subpackage

__all__ = ["UnitDisciplineRule", "SAMPLE_RATE_LITERALS"]

#: Common audio sample rates (Hz), plus the pipeline's 8x upsampled rate.
SAMPLE_RATE_LITERALS = frozenset(
    {
        8_000,
        11_025,
        16_000,
        22_050,
        24_000,
        32_000,
        44_100,
        48_000,
        88_200,
        96_000,
        176_400,
        192_000,
        384_000,
    }
)

#: Packages whose function bodies must take rates from the config.
_DSP_SUBPACKAGES = ("signal", "features", "acoustics", "core", "kernels", "faultlab", "quality")


@register
class UnitDisciplineRule(Rule):
    """Sample rates come from the config, not from inline literals."""

    rule_id = "QA004"
    severity = Severity.ERROR
    description = (
        "magic sample-rate literals in DSP code bypass the config's "
        "sample_rate/Hz fields and their cross-stage validation"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        if module_subpackage(module) not in _DSP_SUBPACKAGES:
            return
        allowed = self._allowed_literal_ids(module.tree)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Constant)
                and type(node.value) in (int, float)
                and float(node.value) in {float(v) for v in SAMPLE_RATE_LITERALS}
                and id(node) not in allowed
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    f"magic sample-rate literal {node.value!r} bypasses the "
                    "config's sample_rate/Hz fields",
                    "take the rate from the relevant config (ChirpDesign."
                    "sample_rate etc.) or hoist it to a named module constant",
                )

    def _allowed_literal_ids(self, tree: ast.Module) -> set[int]:
        """AST node ids of constants in sanctioned positions."""
        allowed: set[int] = set()

        def allow_subtree(node: ast.AST) -> None:
            for child in ast.walk(node):
                allowed.add(id(child))

        for node in tree.body:
            # Module-level ALL_CAPS constants are named rates: fine.
            if isinstance(node, ast.Assign) and all(
                isinstance(t, ast.Name) and t.id.isupper() for t in node.targets
            ):
                allow_subtree(node.value)
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id.isupper()
                and node.value is not None
            ):
                allow_subtree(node.value)

        for node in ast.walk(tree):
            # Class-body field defaults (incl. default_factory lambdas)
            # are the config layer where rate defaults belong.
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, (ast.AnnAssign, ast.Assign)):
                        value = stmt.value
                        if value is not None:
                            allow_subtree(value)
        return allowed
