"""QA004 — unit discipline: no magic sample-rate or unit-literal drift.

Every stage of the pipeline derives its timing from the config's
``sample_rate``/Hz fields; the config validators then prove the whole
chain consistent (chirp band inside the band-pass, segmenter rate equal
to chirp rate, …).  A literal ``48000`` buried in a function body
bypasses that proof: it keeps working until someone runs the system at
a different rate, at which point delays, band edges, and distances are
silently wrong — no exception, just corrupted features.

Two checks, both scoped to the DSP and serving packages:

1. **Sample-rate literals** — numeric literals matching well-known
   audio sample rates inside function bodies.
2. **Unit-bearing keyword literals** — a non-zero numeric literal
   passed directly to a keyword whose name carries a unit suffix
   (``timeout_s=30``, ``window_ms=250``, ``band_hz=4000``).  Durations
   and frequencies are policy, and policy lives in configs; a literal
   at the call site is a hidden default that drifts from the config it
   shadows.  Zero is exempt — it is the identity in any unit.

Literals are *allowed* where rates and durations legitimately live:

- dataclass field defaults (the config layer — includes nested
  ``default_factory`` expressions),
- module-level ``ALL_CAPS`` constants (named, greppable, documented),
- ``__main__`` entry-point modules (argparse defaults are the CLI's
  documented surface, mirroring QA007's exemption).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Rule, register
from ..findings import Finding, Severity
from ..project import ModuleInfo, Project
from ._helpers import module_subpackage

__all__ = ["UnitDisciplineRule", "SAMPLE_RATE_LITERALS", "UNIT_KWARG_SUFFIXES"]

#: Common audio sample rates (Hz), plus the pipeline's 8x upsampled rate.
SAMPLE_RATE_LITERALS = frozenset(
    {
        8_000,
        11_025,
        16_000,
        22_050,
        24_000,
        32_000,
        44_100,
        48_000,
        88_200,
        96_000,
        176_400,
        192_000,
        384_000,
    }
)

#: Keyword-name suffixes that declare a unit the argument is measured in.
UNIT_KWARG_SUFFIXES = ("_s", "_ms", "_hz", "_sec", "_seconds")

#: Packages whose function bodies must take rates/durations from the config.
_DSP_SUBPACKAGES = (
    "signal",
    "features",
    "acoustics",
    "core",
    "kernels",
    "faultlab",
    "quality",
    "serve",
)

#: Individual modules outside those subpackages held to the same bar:
#: physics-adjacent simulator code the analysis pipeline calibrates
#: against, where a magic rate corrupts *both* sides of an experiment.
_EXTRA_MODULES = ("repro.simulation.calibration",)


@register
class UnitDisciplineRule(Rule):
    """Sample rates and unit-bearing values come from configs, not literals."""

    rule_id = "QA004"
    severity = Severity.ERROR
    description = (
        "magic sample-rate literals and non-zero numeric literals passed "
        "to unit-suffixed keywords (_s/_ms/_hz) in DSP/serving code bypass "
        "the config layer and its cross-stage validation"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        if (
            module_subpackage(module) not in _DSP_SUBPACKAGES
            and module.name not in _EXTRA_MODULES
        ):
            return
        if module.name.rsplit(".", 1)[-1] == "__main__":
            return
        allowed = self._allowed_literal_ids(module.tree)
        rates = {float(v) for v in SAMPLE_RATE_LITERALS}
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Constant)
                and type(node.value) in (int, float)
                and float(node.value) in rates
                and id(node) not in allowed
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    f"magic sample-rate literal {node.value!r} bypasses the "
                    "config's sample_rate/Hz fields",
                    "take the rate from the relevant config (ChirpDesign."
                    "sample_rate etc.) or hoist it to a named module constant",
                )
            if isinstance(node, ast.Call):
                yield from self._check_unit_kwargs(module, node, allowed)

    def _check_unit_kwargs(
        self, module: ModuleInfo, node: ast.Call, allowed: set[int]
    ) -> Iterable[Finding]:
        for keyword in node.keywords:
            if keyword.arg is None or not keyword.arg.endswith(UNIT_KWARG_SUFFIXES):
                continue
            value = keyword.value
            if (
                isinstance(value, ast.Constant)
                and type(value.value) in (int, float)
                and value.value != 0
                and id(value) not in allowed
            ):
                yield self.finding(
                    module,
                    value.lineno,
                    f"unit-bearing keyword {keyword.arg}={value.value!r} "
                    "hard-codes a duration/frequency at the call site",
                    "thread the value through the relevant config field "
                    "or a named module constant so the policy is "
                    "declared once",
                )

    def _allowed_literal_ids(self, tree: ast.Module) -> set[int]:
        """AST node ids of constants in sanctioned positions."""
        allowed: set[int] = set()

        def allow_subtree(node: ast.AST) -> None:
            for child in ast.walk(node):
                allowed.add(id(child))

        for node in tree.body:
            # Module-level ALL_CAPS constants are named rates: fine.
            if isinstance(node, ast.Assign) and all(
                isinstance(t, ast.Name) and t.id.isupper() for t in node.targets
            ):
                allow_subtree(node.value)
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id.isupper()
                and node.value is not None
            ):
                allow_subtree(node.value)

        for node in ast.walk(tree):
            # Class-body field defaults (incl. default_factory lambdas)
            # are the config layer where rate defaults belong.
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, (ast.AnnAssign, ast.Assign)):
                        value = stmt.value
                        if value is not None:
                            allow_subtree(value)
        return allowed
