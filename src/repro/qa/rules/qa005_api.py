"""QA005 — public-API hygiene.

A name placed in ``__all__`` is a promise to downstream code.  The rule
holds every such export to a minimum contract, in its *defining*
module (re-exports are checked at the definition site, not at each
``__init__`` that forwards them):

- exported functions need a docstring, annotations on every named
  parameter, and a return annotation — the published surface is what
  ``mypy`` and readers reason from;
- exported classes need a docstring;
- an ``__all__`` entry that names nothing in the module is a plain
  error (it breaks ``from pkg import *`` and documentation tooling).

Hygiene gaps are WARNING severity: they fail ``--strict`` (CI) but not
a default run, so a local iteration loop is not blocked by a missing
docstring.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Rule, register
from ..findings import Finding, Severity
from ..project import ModuleInfo, Project

__all__ = ["PublicApiRule"]


def _exported_names(tree: ast.Module) -> tuple[list[str], int] | None:
    """(names, line) of the module's ``__all__`` literal, if present."""
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)):
                    names = [
                        elt.value
                        for elt in value.elts
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                    ]
                    return names, node.lineno
    return None


def _imported_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _unannotated_args(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """Named parameters lacking annotations (self/cls exempt)."""
    args = fn.args
    named = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    missing = [
        a.arg
        for a in named
        if a.annotation is None and a.arg not in ("self", "cls")
    ]
    for star in (args.vararg, args.kwarg):
        if star is not None and star.annotation is None:
            missing.append(f"*{star.arg}")
    return missing


@register
class PublicApiRule(Rule):
    """Exports in ``__all__`` need docstrings and type annotations."""

    rule_id = "QA005"
    severity = Severity.WARNING
    description = (
        "names exported via __all__ need docstrings and (for functions) "
        "complete type annotations"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        exported = _exported_names(module.tree)
        if exported is None:
            return
        names, all_line = exported
        imported = _imported_names(module.tree)
        assigned = {
            t.id
            for node in module.tree.body
            if isinstance(node, ast.Assign)
            for t in node.targets
            if isinstance(t, ast.Name)
        } | {
            node.target.id
            for node in module.tree.body
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name)
        }
        defs: dict[str, ast.AST] = {}
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                defs[node.name] = node

        for name in names:
            node = defs.get(name)
            if node is None:
                if name not in imported and name not in assigned:
                    yield self.finding(
                        module,
                        all_line,
                        f"__all__ exports '{name}' but the module neither "
                        "defines nor imports it",
                        "remove the entry or define the name",
                        severity=Severity.ERROR,
                    )
                continue  # re-exports/constants are checked where defined
            yield from self._check_definition(module, name, node)

    def _check_definition(
        self, module: ModuleInfo, name: str, node: ast.AST
    ) -> Iterable[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if ast.get_docstring(node) is None:
                yield self.finding(
                    module,
                    node.lineno,
                    f"exported function '{name}' has no docstring",
                    "describe what it computes and the units/shapes involved",
                )
            missing = _unannotated_args(node)
            if missing:
                yield self.finding(
                    module,
                    node.lineno,
                    f"exported function '{name}' has unannotated "
                    f"parameter(s): {', '.join(missing)}",
                    "annotate the public signature",
                )
            if node.returns is None:
                yield self.finding(
                    module,
                    node.lineno,
                    f"exported function '{name}' has no return annotation",
                    "annotate the public signature",
                )
        elif isinstance(node, ast.ClassDef):
            if ast.get_docstring(node) is None:
                yield self.finding(
                    module,
                    node.lineno,
                    f"exported class '{name}' has no docstring",
                    "one line on the invariant the class maintains is enough",
                )
