"""QA006 — broad exception handlers only at quarantine boundaries.

The reproduction's failure policy is *typed*: expected signal failures
are :class:`~repro.errors.SignalProcessingError` subclasses, runtime
infrastructure failures are :class:`~repro.errors.ExecutionError`
subclasses, and everything else is a programming error that must crash
loudly.  A ``except Exception`` (or a bare ``except:``) anywhere in the
science code collapses that taxonomy — a typo'd attribute gets
quarantined as if it were a bad recording, and a NaN-producing bug
ships silently as data.

Broad handlers are therefore allowed only in the designated quarantine
boundaries — the modules whose *job* is converting arbitrary worker
failure into structured quarantine records — and flagged everywhere
else.  Narrow multi-exception tuples (``except (OSError, ValueError)``)
are always fine: naming the failure modes is exactly the discipline the
rule enforces.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Rule, register
from ..findings import Finding, Severity
from ..project import ModuleInfo, Project
from ._helpers import attribute_chain

__all__ = ["ExceptionBoundaryRule"]

#: Modules allowed to catch broadly: the executor's pool-result loop
#: and the per-recording quarantine machinery.  Stored without the
#: top-level package prefix; matching tolerates scanning either the
#: package directory (``runtime.executor``) or its parent
#: (``repro.runtime.executor``).
QUARANTINE_BOUNDARY_MODULES = frozenset(
    {
        "runtime.executor",
        "runtime.faults",
        # The service dispatch path: a crashed micro-batch must fail its
        # own requests' futures (typed quarantine records), never the
        # dispatch loop or the other tenants' pending work.
        "serve.service",
    }
)


def _is_boundary(module: ModuleInfo) -> bool:
    name = module.name
    if name.startswith("repro."):
        name = name[len("repro."):]
    return name in QUARANTINE_BOUNDARY_MODULES

#: Exception names considered "broad": catching these (or nothing at
#: all) swallows programming errors.
_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _broad_name(node: ast.expr) -> str | None:
    """The broad exception name matched by ``node``, if any."""
    chain = attribute_chain(node) if isinstance(node, ast.Attribute) else None
    if isinstance(node, ast.Name):
        chain = node.id
    if chain is None:
        return None
    leaf = chain.split(".")[-1]
    return leaf if leaf in _BROAD_NAMES else None


@register
class ExceptionBoundaryRule(Rule):
    """Bare/broad ``except`` only inside quarantine-boundary modules."""

    rule_id = "QA006"
    severity = Severity.ERROR
    description = (
        "bare 'except:' and 'except Exception' are allowed only in "
        "quarantine-boundary modules; elsewhere catch the specific "
        "exception types the code can actually handle"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        if _is_boundary(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node.lineno,
                    "bare 'except:' catches everything, including "
                    "KeyboardInterrupt and programming errors",
                    "catch the specific exception types this code handles",
                )
                continue
            exprs = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for expr in exprs:
                name = _broad_name(expr)
                if name is not None:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"'except {name}' outside a quarantine boundary "
                        "swallows programming errors as if they were data "
                        "faults",
                        "catch the specific repro.errors types, or move the "
                        "handler into a designated quarantine-boundary module",
                    )
