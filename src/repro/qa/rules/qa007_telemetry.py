"""QA007 — telemetry discipline: no ad-hoc output, registered names only.

Observability is an interface, not a side effect.  Two habits erode it:

1. **Ad-hoc output.**  A ``print()`` or ``sys.stderr.write`` buried in
   a library module bypasses the structured event log — the message is
   invisible to the JSONL artifact, unfilterable by severity, and lost
   in a pool worker whose stdout nobody reads.  Library code must emit
   through :mod:`repro.obs` (or return strings for a CLI to print);
   only ``__main__`` entry-point modules own stdout/stderr.

2. **Free-form telemetry names.**  A span or event named by a string
   literal at the call site drifts: two sites spell the same stage two
   ways, and dashboards/tests silently miss one.  Every name passed to
   ``.span(...)`` / ``.emit(...)`` must be a registered constant from
   :mod:`repro.obs.names`, the single source of truth the exporters
   and the canonical-emission test are built on.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Rule, register
from ..findings import Finding, Severity
from ..project import ModuleInfo, Project
from ._helpers import ImportMap, canonical_name

__all__ = ["TelemetryDisciplineRule"]

#: Canonical dotted calls that write raw text to the process streams.
_STREAM_WRITES = frozenset(
    {
        "sys.stdout.write",
        "sys.stderr.write",
    }
)

#: Method names whose first positional argument is a telemetry name
#: that must come from :mod:`repro.obs.names`.
_NAMED_TELEMETRY_METHODS = frozenset({"span", "emit"})


def _is_entry_point(module: ModuleInfo) -> bool:
    return module.name.rsplit(".", 1)[-1] == "__main__"


@register
class TelemetryDisciplineRule(Rule):
    """No print/stream writes in library modules; telemetry names from constants."""

    rule_id = "QA007"
    severity = Severity.ERROR
    description = (
        "library modules must not print() or write to sys.stdout/stderr "
        "(emit structured events via repro.obs instead; __main__ modules "
        "are exempt), and span/event names must be registered constants "
        "from repro.obs.names, never string literals at the call site"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        imports = ImportMap(module.tree)
        entry_point = _is_entry_point(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not entry_point:
                yield from self._check_raw_output(module, node, imports)
            yield from self._check_telemetry_name(module, node)

    def _check_raw_output(
        self, module: ModuleInfo, node: ast.Call, imports: ImportMap
    ) -> Iterable[Finding]:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            yield self.finding(
                module,
                node.lineno,
                "print() in a library module bypasses the structured "
                "event log (and is lost inside pool workers)",
                "emit a repro.obs event, or return the text and let a "
                "__main__ module print it",
            )
            return
        dotted = canonical_name(node.func, imports)
        if dotted in _STREAM_WRITES:
            yield self.finding(
                module,
                node.lineno,
                f"{dotted}() in a library module bypasses the structured "
                "event log",
                "emit a repro.obs event with an appropriate severity "
                "instead of writing to the raw stream",
            )

    def _check_telemetry_name(
        self, module: ModuleInfo, node: ast.Call
    ) -> Iterable[Finding]:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _NAMED_TELEMETRY_METHODS
            and node.args
        ):
            return
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            yield self.finding(
                module,
                node.lineno,
                f".{func.attr}({first.value!r}, ...) names the "
                "span/event with a string literal, so the name can "
                "drift from the registry unnoticed",
                "use the registered constant from repro.obs.names "
                "(add one there if this is a new span/event)",
            )
