"""QA008 — async discipline: no blocking primitive reachable from serve coroutines.

The serving layer is a single asyncio event loop.  One blocking call —
``time.sleep``, file I/O, ``subprocess``, a ``threading.Lock`` /
``FileLock`` acquisition — anywhere in a coroutine's *transitive* call
tree stalls every in-flight request at once, and the per-file rules
cannot see it: the sleep typically lives two modules away from the
``async def`` that reaches it.

This rule walks the whole-program call graph from every ``async def``
defined under ``serve`` and flags each blocking primitive reachable
along statically resolvable edges, anchored at the *sink* (the blocking
call's own file and line) so a ``# qa: ignore[QA008]`` pragma at the
sink is the sanctioning mechanism.  Two boundaries are exempt:

- ``serve.clock`` — the injected-clock module is *where* sanctioned
  waiting lives (``VirtualClock`` makes it deterministic); traversal
  neither starts in it nor descends into it;
- ``__main__`` entry-point modules — process edges (stdin/stdout,
  spool files) are the CLI's job, mirroring QA007's exemption.

Unresolvable dynamic callables produce no edge, so the rule
under-approximates: absence of findings is not a proof, but every
finding is a real reachable path.
"""

from __future__ import annotations

from typing import Iterable

from ..engine import Rule, register
from ..findings import Finding, Severity
from ..graph import FunctionSummary, ProgramModel

__all__ = ["AsyncBlockingRule"]

#: Modules (dotted, ``repro.`` prefix optional) sanctioned to block/wait.
BOUNDARY_MODULES = frozenset({"serve.clock"})


def _normalized(module_name: str) -> str:
    if module_name.startswith("repro."):
        return module_name[len("repro."):]
    return module_name


def _is_boundary(module_name: str) -> bool:
    return _normalized(module_name) in BOUNDARY_MODULES


def _subpackage(module_name: str) -> str | None:
    parts = module_name.split(".")
    return parts[1] if len(parts) >= 2 else None


def _is_entry_point(module_name: str) -> bool:
    return module_name.rsplit(".", 1)[-1] == "__main__"


@register
class AsyncBlockingRule(Rule):
    """No blocking primitive transitively reachable from serve coroutines."""

    rule_id = "QA008"
    severity = Severity.ERROR
    description = (
        "no blocking primitive (time.sleep, open/file I/O, subprocess, "
        "lock acquisition) may be transitively reachable from an async "
        "def under serve; serve.clock is the sanctioned waiting boundary "
        "and __main__ entry points are exempt"
    )

    def check_program(self, program: ProgramModel) -> Iterable[Finding]:
        cg = program.callgraph
        skip = frozenset(
            name for name in program.summaries if _is_boundary(name)
        )
        roots = self._roots(program)
        # sink (module, line, symbol) → shortest/first call chain.
        best: dict[tuple[str, int, str], tuple[str, ...]] = {}
        for root in roots:
            paths = cg.reachable_from(root, skip_modules=skip)
            for qualname in sorted(paths):
                fn = cg.functions.get(qualname)
                if fn is None:
                    continue
                for use in fn.blocking:
                    key = (fn.module, use.lineno, use.symbol)
                    chain = paths[qualname]
                    current = best.get(key)
                    if current is None or (len(chain), chain) < (
                        len(current),
                        current,
                    ):
                        best[key] = chain
        for (module_name, lineno, symbol), chain in sorted(best.items()):
            summary = program.summaries[module_name]
            sink_fn = chain[-1]
            category = self._category(program, module_name, lineno, symbol)
            yield self.finding(
                summary.relpath,
                lineno,
                f"blocking {category} `{symbol}` in `{sink_fn}` is "
                f"reachable from the serve event loop "
                f"(call chain: {' -> '.join(chain)})",
                "route waiting through the injected Clock (serve.clock), "
                "move the blocking work behind the executor boundary, or "
                "sanction this sink with `# qa: ignore[QA008]`",
            )

    @staticmethod
    def _roots(program: ProgramModel) -> list[FunctionSummary]:
        roots: list[FunctionSummary] = []
        for name in sorted(program.summaries):
            if _subpackage(name) != "serve":
                continue
            if _is_boundary(name) or _is_entry_point(name):
                continue
            summary = program.summaries[name]
            roots.extend(fn for fn in summary.functions if fn.is_async)
        return roots

    @staticmethod
    def _category(
        program: ProgramModel, module_name: str, lineno: int, symbol: str
    ) -> str:
        summary = program.summaries[module_name]
        for fn in summary.functions:
            for use in fn.blocking:
                if use.lineno == lineno and use.symbol == symbol:
                    return use.category
        return "call"
