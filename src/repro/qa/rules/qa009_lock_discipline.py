"""QA009 — lock discipline: consistent acquisition order, no pool-global writes.

Two whole-program lock/state hazards the per-file rules cannot see:

1. **Order inversion.**  The repo holds ``threading.Lock`` (metrics)
   and ``flock``-based ``FileLock`` (cache shards) instances.  Deadlock
   needs two sites acquiring two locks in opposite nesting orders —
   almost always in *different* functions, often different modules.
   This rule builds a global lock-order graph: a directed edge A→B for
   every site that acquires B while (lexically or transitively, through
   resolvable calls made under A) holding A.  If both A→B and B→A are
   observed, the minority direction's sites are flagged; ties break to
   the lexicographically smaller pair so findings are deterministic.

2. **Pool-global writes.**  QA003 guarantees pool-dispatched callables
   are module-level and picklable; it cannot see what they *do*.  A
   function in a pool target's transitive call tree that rebinds a
   module global (``global x; x = ...``) mutates per-process state the
   parent never observes — counters silently undercount, caches
   diverge.  Deliberate per-process state (the kernel plan cache's hit
   counters) is sanctioned with ``# qa: ignore[QA009]`` at the rebind
   line, which doubles as documentation.

Container mutation (``_CACHE[key] = plan``) is *not* flagged: the
per-process plan cache is the sanctioned idiom, and distinguishing it
from a rebind is exactly what ``global`` statements are for.
"""

from __future__ import annotations

from typing import Iterable

from ..engine import Rule, register
from ..findings import Finding, Severity
from ..graph import FunctionSummary, ProgramModel

__all__ = ["LockDisciplineRule"]


@register
class LockDisciplineRule(Rule):
    """Global lock-order consistency + no module-global rebinds in pool code."""

    rule_id = "QA009"
    severity = Severity.ERROR
    description = (
        "lock acquisitions must nest in one globally consistent order "
        "(inversions deadlock under contention), and functions reachable "
        "from pool-dispatched callables must not rebind module globals "
        "(per-process writes diverge silently)"
    )

    def check_program(self, program: ProgramModel) -> Iterable[Finding]:
        yield from self._check_lock_order(program)
        yield from self._check_pool_globals(program)

    # -- lock ordering -----------------------------------------------------

    def _check_lock_order(self, program: ProgramModel) -> Iterable[Finding]:
        cg = program.callgraph
        # (held, acquired) → list of (relpath, lineno, qualname)
        edges: dict[tuple[str, str], list[tuple[str, int, str]]] = {}

        def record(held: str, acquired: str, fn: FunctionSummary, lineno: int) -> None:
            if held == acquired:
                return  # reentrancy is a different bug class
            relpath = program.summaries[fn.module].relpath
            edges.setdefault((held, acquired), []).append(
                (relpath, lineno, fn.qualname)
            )

        for module_name in sorted(program.summaries):
            for fn in program.summaries[module_name].functions:
                for acq in fn.locks:
                    for held in acq.held:
                        record(held, acq.lock_id, fn, acq.lineno)
                for site in fn.calls:
                    if not site.held_locks:
                        continue
                    target = cg.resolve_call(site)
                    if target is None:
                        continue
                    for inner in cg.transitive_locks(target):
                        for held in site.held_locks:
                            record(held, inner, fn, site.lineno)

        flagged: set[tuple[str, str]] = set()
        for (a, b), sites in sorted(edges.items()):
            reverse = edges.get((b, a))
            if reverse is None or (a, b) in flagged or (b, a) in flagged:
                continue
            # Minority direction loses; ties break lexicographically.
            if (len(sites), (b, a)) < (len(reverse), (a, b)):
                minority, majority_pair, majority = sites, (b, a), reverse
                pair = (a, b)
            else:
                minority, majority_pair, majority = reverse, (a, b), sites
                pair = (b, a)
            flagged.add(pair)
            flagged.add(majority_pair)
            for relpath, lineno, qualname in sorted(minority):
                yield self.finding(
                    relpath,
                    lineno,
                    f"`{pair[1]}` acquired while holding `{pair[0]}` in "
                    f"`{qualname}`, inverting the order observed at "
                    f"{len(majority)} other site(s) "
                    f"(`{majority_pair[0]}` before `{majority_pair[1]}`)",
                    "acquire locks in one global order everywhere, or "
                    "restructure so the inner lock is taken after the "
                    "outer one is released",
                )

    # -- pool-global rebinds ----------------------------------------------

    def _check_pool_globals(self, program: ProgramModel) -> Iterable[Finding]:
        cg = program.callgraph
        # pool-callable qualname → the dispatch origin, for the message.
        reachable: dict[str, tuple[str, str]] = {}
        for module_name in sorted(program.summaries):
            for fn in program.summaries[module_name].functions:
                for target_site in fn.pool_targets:
                    target = cg.resolve_call(target_site)
                    if target is None:
                        continue
                    for qual, chain in sorted(
                        cg.reachable_from(target).items()
                    ):
                        reachable.setdefault(qual, (fn.qualname, " -> ".join(chain)))
        for qual in sorted(reachable):
            fn = cg.functions.get(qual)
            if fn is None:
                continue
            origin, chain = reachable[qual]
            for rebind in fn.global_rebinds:
                relpath = program.summaries[fn.module].relpath
                yield self.finding(
                    relpath,
                    rebind.lineno,
                    f"module global `{rebind.name}` rebound in `{qual}`, "
                    f"which runs in pool workers (dispatched by "
                    f"`{origin}` via {chain}); per-process writes "
                    "diverge from the parent silently",
                    "return the value to the parent process, or mark "
                    "intentional per-process state with "
                    "`# qa: ignore[QA009]`",
                )
