"""QA010 — telemetry consistency: registries and emission sites must agree.

QA007 polices the *form* of telemetry (constants, not literals, for
span/event names).  This rule polices the *content*, both directions:

- **emitted-but-undeclared** — a counter/histogram/span/event name used
  at some call site that no ``obs.names`` registry set declares.
  Dashboards, the Prometheus exporter, and the canonical-emission tests
  all iterate the registries; an undeclared name is invisible to every
  one of them.
- **declared-but-never-emitted** — a registry entry no call site in the
  whole program references.  Dead names rot: a rename that forgets the
  registry, or a removed emission that leaves the dashboard panel
  permanently flat, both land here.

Emission sites come from the function summaries (every ``.span`` /
``.emit`` / ``.increment`` / ``.observe`` / ``.histogram`` first
argument that is a string literal, a registered constant, a registry
subscript like ``SERVE_REJECTION_COUNTERS[reason]``, or the
``tenant_counter(BASE, ...)`` pattern).  Matching is **by value**, so a
literal spelling of a registered name still counts as an emission — the
registry is the source of truth for *names*, QA007 for *style*.
Dynamic per-tenant names (``tenant_counter`` bases) are patterns, not
fixed names, and sit outside the declared universe.

The rule is inert in projects without an ``obs.names`` module, so
unrelated fixture trees never trip it.
"""

from __future__ import annotations

from typing import Iterable

from ..engine import Rule, register
from ..findings import Finding, Severity
from ..graph import ModuleSummary, ProgramModel

__all__ = ["TelemetryRegistryRule"]

#: Telemetry kind → the registry-set names whose union declares it.
KIND_REGISTRIES: dict[str, tuple[str, ...]] = {
    "span": ("SPAN_NAMES",),
    "event": ("EVENT_NAMES",),
    "counter": (
        "CANONICAL_COUNTERS",
        "SERVE_CANONICAL_COUNTERS",
        "SERVE_REJECTION_COUNTERS",
        "SHM_DEGRADED_COUNTERS",
        "ECHO_CONDITIONAL_COUNTERS",
        "HEALTH_COUNTER_SERIES",
    ),
    "histogram": (
        "CANONICAL_HISTOGRAMS",
        "SERVE_CANONICAL_HISTOGRAMS",
        "HEALTH_DISTRIBUTION_SERIES",
    ),
}


def _find_names_module(program: ProgramModel) -> ModuleSummary | None:
    for name in sorted(program.summaries):
        normalized = name[len("repro."):] if name.startswith("repro.") else name
        if normalized == "obs.names":
            return program.summaries[name]
    return None


@register
class TelemetryRegistryRule(Rule):
    """Two-way diff between obs.names registries and actual emission sites."""

    rule_id = "QA010"
    severity = Severity.ERROR
    description = (
        "every telemetry name emitted anywhere must be declared in an "
        "obs.names registry set, and every declared name must be emitted "
        "somewhere — both directions of drift fail"
    )

    def check_program(self, program: ProgramModel) -> Iterable[Finding]:
        names = _find_names_module(program)
        if names is None:
            return
        declared: dict[str, set[str]] = {
            kind: {
                value
                for registry in registries
                for value in names.registry_sets.get(registry, ())
            }
            for kind, registries in KIND_REGISTRIES.items()
        }
        constants = {
            f"{names.module}.{const}": value
            for const, (value, _line) in names.string_constants.items()
        }

        emitted: dict[str, set[str]] = {kind: set() for kind in KIND_REGISTRIES}
        for module_name in sorted(program.summaries):
            summary = program.summaries[module_name]
            for fn in summary.functions:
                for use in fn.telemetry:
                    if use.kind not in declared:
                        continue
                    if use.form == "literal":
                        value = use.ref
                    elif use.form == "constant":
                        value = constants.get(use.ref)
                        if value is None:
                            continue  # constant from elsewhere: not a name
                    elif use.form == "subscript":
                        prefix = f"{names.module}."
                        if use.ref.startswith(prefix):
                            registry = use.ref[len(prefix):]
                            emitted[use.kind].update(
                                names.registry_sets.get(registry, ())
                            )
                        continue
                    else:  # "pattern": dynamic names, outside the universe
                        continue
                    emitted[use.kind].add(value)
                    if value not in declared[use.kind]:
                        yield self.finding(
                            summary.relpath,
                            use.lineno,
                            f"{use.kind} name `{value}` is emitted here "
                            f"but declared in no obs.names registry "
                            f"({' / '.join(KIND_REGISTRIES[use.kind])})",
                            "register the name in obs.names (exporters "
                            "and canonical-emission tests iterate the "
                            "registries), or fix the spelling drift",
                        )

        value_lines = {
            value: line for value, line in names.string_constants.values()
        }
        for kind in sorted(declared):
            for value in sorted(declared[kind] - emitted[kind]):
                yield self.finding(
                    program.summaries[names.module].relpath,
                    value_lines.get(value, 1),
                    f"{kind} name `{value}` is declared in obs.names "
                    "but emitted nowhere in the project",
                    "remove the dead registry entry, or wire up the "
                    "emission it was declared for",
                )
