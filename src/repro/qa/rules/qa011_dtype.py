"""QA011 — dtype discipline: kernels must not silently upcast float32.

The kernel layer is two-lane: float64 inputs take the bit-identical
reference path, float32 inputs take the dispatched fast lane.  The lane
is carried by the *array dtype*, so one careless coercion anywhere in
``repro.kernels`` quietly promotes the whole downstream computation to
float64 — the float32 pipeline still produces numbers, the benchmarks
just stop measuring what they claim to measure.  Nothing crashes;
the speedup silently evaporates.

Three patterns are flagged, inside ``repro.kernels`` only:

1. **Coercing converters** — ``np.asarray`` / ``np.array`` /
   ``np.ascontiguousarray`` called with ``dtype=float`` or
   ``dtype=np.float64``: these rewrite a float32 input's lane.  Use
   :func:`repro.kernels.dtypes.as_float_array` (validates but
   preserves either lane) or thread a ``dtype`` parameter.
2. **Upcasting casts** — ``.astype(float)`` / ``.astype(np.float64)``:
   same silent promotion, applied post hoc.
3. **Default-dtype allocation** — ``np.zeros`` / ``np.ones`` /
   ``np.empty`` / ``np.full`` *without* a ``dtype`` keyword: NumPy
   defaults to float64, so buffers meant to hold lane-dtype data
   widen every value written into them.  Allocate with
   ``dtype=signal.dtype`` (or an explicit lane dtype).

A float64 round-trip is sometimes the *fast* recipe (NumPy's float32
2-D FFT is slower than its float64 one); such deliberate upcasts are
annotated ``# qa: ignore[QA011]`` at the call site, which doubles as
documentation that the promotion was measured, not accidental.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Rule, register
from ..findings import Finding, Severity
from ..project import ModuleInfo, Project
from ._helpers import ImportMap, attribute_chain, canonical_name, module_subpackage

__all__ = ["DtypeDisciplineRule"]

#: Converters whose ``dtype=float64`` coerces the lane (pattern 1).
_COERCING_CONVERTERS = frozenset(
    {"numpy.asarray", "numpy.array", "numpy.ascontiguousarray"}
)

#: Allocators that default to float64 when ``dtype`` is omitted (3).
_DEFAULT_F64_ALLOCATORS = frozenset(
    {"numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full"}
)


def _is_float64_spec(expr: ast.expr, imports: ImportMap) -> bool:
    """Whether ``expr`` is the literal ``float`` / ``np.float64`` spec."""
    if isinstance(expr, ast.Name) and expr.id == "float":
        return True
    dotted = attribute_chain(expr)
    if dotted is None:
        return False
    return imports.canonicalize(dotted) in ("numpy.float64", "numpy.double")


@register
class DtypeDisciplineRule(Rule):
    """Forbid silent float32→float64 promotion inside repro.kernels."""

    rule_id = "QA011"
    severity = Severity.ERROR
    description = (
        "kernels must preserve the input lane dtype: no dtype=float64 "
        "coercions, .astype(float64) casts, or default-dtype allocations"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        if module_subpackage(module) != "kernels":
            return
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_call(module, node, imports)

    def _check_call(
        self, module: ModuleInfo, node: ast.Call, imports: ImportMap
    ) -> Iterable[Finding]:
        func = canonical_name(node.func, imports)
        dtype_kwarg = next(
            (kw.value for kw in node.keywords if kw.arg == "dtype"), None
        )
        if func in _COERCING_CONVERTERS:
            if dtype_kwarg is not None and _is_float64_spec(dtype_kwarg, imports):
                short = func.split(".")[-1]
                yield self.finding(
                    module,
                    node.lineno,
                    f"{short}(..., dtype=float64) silently upcasts float32 "
                    "inputs off the fast lane",
                    "use repro.kernels.dtypes.as_float_array, or mark a "
                    "measured round-trip with '# qa: ignore[QA011]'",
                )
            return
        if func in _DEFAULT_F64_ALLOCATORS:
            if dtype_kwarg is None:
                short = func.split(".")[-1]
                yield self.finding(
                    module,
                    node.lineno,
                    f"{short}(...) without dtype allocates float64 and widens "
                    "every lane-dtype value stored into it",
                    "pass dtype=<input>.dtype (or an explicit lane dtype)",
                )
            return
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            target = dtype_kwarg if dtype_kwarg is not None else (
                node.args[0] if node.args else None
            )
            if target is not None and _is_float64_spec(target, imports):
                yield self.finding(
                    module,
                    node.lineno,
                    ".astype(float64) silently promotes a float32 array to "
                    "the slow lane",
                    "preserve the incoming dtype, or mark a measured "
                    "round-trip with '# qa: ignore[QA011]'",
                )
