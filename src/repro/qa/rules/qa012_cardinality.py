"""QA012 — label-cardinality discipline: rollup keys from the closed set.

The fleet-health tier survives production because its label space is
bounded on both axes: label *values* are budgeted at runtime (the
``__other__`` overflow fold), and label *keys* come from one closed
vocabulary, :data:`repro.obs.names.HEALTH_LABEL_KEYS`.  The runtime
enforces the key vocabulary too — but only on the code paths a test
happens to execute.  This rule enforces it at every call site
statically, so an invented dimension (``labels={"user_id": ...}`` — an
unbounded-cardinality classic) fails review even on a path no test
covers.

Concretely: every ``labels={...}`` dict literal passed to a
``.increment(...)`` / ``.observe(...)`` call must use string-literal
keys, each present in the ``HEALTH_LABEL_KEYS`` set declared by the
project's own ``obs.names`` module.  Computed keys are flagged as
well — a key built at runtime cannot be checked against the closed set
by anyone.  Like QA010, the rule is inert in projects without an
``obs.names`` module (or without the vocabulary), so unrelated fixture
trees never trip it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Rule, register
from ..findings import Finding, Severity
from ..project import ModuleInfo, Project

__all__ = ["LabelCardinalityRule"]

#: Monitor methods that accept a ``labels=`` rollup dimension mapping.
_LABELED_METHODS = frozenset({"increment", "observe"})

#: Name of the closed key vocabulary in the project's obs.names module.
_VOCABULARY = "HEALTH_LABEL_KEYS"

#: Per-project vocabulary cache (resolving walks the names module AST).
_VOCAB_CACHE: dict[int, frozenset[str] | None] = {}


def _names_module(project: Project) -> ModuleInfo | None:
    for name in sorted(project.modules):
        normalized = name[len("repro."):] if name.startswith("repro.") else name
        if normalized == "obs.names":
            return project.modules[name]
    return None


def _literal_strings(node: ast.expr) -> frozenset[str] | None:
    """String elements of a ``{...}`` / ``frozenset({...})`` display."""
    if isinstance(node, ast.Call) and node.args and not node.keywords:
        return _literal_strings(node.args[0])
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        values = []
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            values.append(element.value)
        return frozenset(values)
    return None


def _vocabulary(project: Project) -> frozenset[str] | None:
    key = id(project)
    if key not in _VOCAB_CACHE:
        _VOCAB_CACHE[key] = _resolve_vocabulary(project)
    return _VOCAB_CACHE[key]


def _resolve_vocabulary(project: Project) -> frozenset[str] | None:
    names = _names_module(project)
    if names is None:
        return None
    for node in names.tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                targets = [node.target.id]
            value = node.value
        else:
            continue
        if _VOCABULARY in targets:
            return _literal_strings(value)
    return None


@register
class LabelCardinalityRule(Rule):
    """Health rollup label keys must come from obs.names.HEALTH_LABEL_KEYS."""

    rule_id = "QA012"
    severity = Severity.ERROR
    description = (
        "labels={...} dicts passed to .increment()/.observe() must use "
        "string-literal keys from the closed obs.names.HEALTH_LABEL_KEYS "
        "vocabulary — an invented or computed key is an unbounded "
        "cardinality risk no runtime budget can cap"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        vocabulary = _vocabulary(project)
        if vocabulary is None:
            return
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _LABELED_METHODS
            ):
                continue
            labels = next(
                (kw.value for kw in node.keywords if kw.arg == "labels"), None
            )
            if not isinstance(labels, ast.Dict):
                continue
            for keynode in labels.keys:
                if keynode is None:  # **spread: keys not statically known
                    yield self.finding(
                        module,
                        node.lineno,
                        "labels dict uses a **spread, so its keys cannot "
                        "be checked against the closed label vocabulary",
                        "spell the label keys out as string literals "
                        f"from obs.names.{_VOCABULARY}",
                    )
                    continue
                if not (
                    isinstance(keynode, ast.Constant)
                    and isinstance(keynode.value, str)
                ):
                    yield self.finding(
                        module,
                        keynode.lineno,
                        "computed label key cannot be checked against the "
                        "closed label vocabulary",
                        "use a string-literal key from "
                        f"obs.names.{_VOCABULARY}",
                    )
                    continue
                if keynode.value not in vocabulary:
                    yield self.finding(
                        module,
                        keynode.lineno,
                        f"label key `{keynode.value}` is not in the closed "
                        f"vocabulary obs.names.{_VOCABULARY} "
                        f"({', '.join(sorted(vocabulary))})",
                        "add the dimension to the vocabulary deliberately "
                        "(it is a cardinality budget, not a suggestion) "
                        "or use a declared key",
                    )
