"""SARIF 2.1.0 rendering so findings surface as code-scanning annotations.

GitHub's code-scanning upload action consumes SARIF and renders each
result as an inline PR annotation at the exact file and line — the
findings stop living in a CI log nobody reads.  The mapping is small
and deliberately minimal:

- one ``run`` from the ``repro.qa`` driver, with every registered rule
  listed under the driver (id, description, default level) so the UI
  can group and link results;
- one ``result`` per active finding; severities map directly
  (``error`` → ``error``, ``warning`` → ``warning``), suggestions ride
  along in the message text;
- finding paths are relative to the scanned source root, so the caller
  passes ``uri_prefix`` (``"src"`` in this repo) to rebase them onto
  repository-relative URIs the annotation UI expects.

The ``--format json`` output is unchanged and remains the stable
machine interface; SARIF is an additional projection of the same
:class:`~repro.qa.engine.Report`.
"""

from __future__ import annotations

import json
from typing import Sequence

from .engine import Report, Rule
from .findings import Finding, Severity

__all__ = ["render_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_descriptor(rule: Rule) -> dict:
    return {
        "id": rule.rule_id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.description or rule.rule_id},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
    }


def _result(finding: Finding, uri_prefix: str) -> dict:
    uri = f"{uri_prefix}/{finding.path}" if uri_prefix else finding.path
    text = finding.message
    if finding.suggestion:
        text = f"{text} — {finding.suggestion}"
    return {
        "ruleId": finding.rule,
        "level": _LEVELS[finding.severity],
        "message": {"text": text},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {"startLine": finding.line},
                }
            }
        ],
    }


def render_sarif(
    report: Report, rules: Sequence[Rule], uri_prefix: str = ""
) -> str:
    """Serialize a report as a SARIF 2.1.0 JSON document."""
    prefix = uri_prefix.strip("/")
    payload = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.qa",
                        "rules": [_rule_descriptor(rule) for rule in rules],
                    }
                },
                "results": [_result(f, prefix) for f in report.findings],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
