"""Per-recording signal-quality assessment and gating.

Runs *before* feature extraction, on the raw waveform: a cheap,
deterministic integrity check that answers "is this capture worth the
DSP?" with a structured :class:`~repro.quality.report.QualityReport`
carrying an accept / degrade / reject verdict plus machine-readable
reason codes.

The checks mirror the dominant at-home acquisition faults modelled in
:mod:`repro.faultlab`:

- **chirp presence** — matched-filter peak-to-background score against
  the configured probe chirp (reuses the plan-cached templates of
  :mod:`repro.kernels.chirp`); a capture without the probe signature
  (wrong device, muted speaker) is unusable however clean it looks;
- **in-band SNR** — spectral power inside the chirp sweep band versus
  the out-of-band floor;
- **clipping ratio** — fraction of samples pinned at the peak rails;
- **dropout map** — zero-run bursts from delivery underruns;
- **non-finite samples** and **truncation** against the expected
  duration.

This complements :mod:`repro.core.diagnostics`, which scores a capture
*after* running the pipeline (echo yield, curve stability); the quality
gate exists so obviously-bad captures never pay for the pipeline at
all, and marginal ones are processed but tagged as degraded.
"""

from .assess import QualityConfig, assess_recording, assess_waveform
from .report import QualityReport, ReasonCode, Verdict

__all__ = [
    "QualityConfig",
    "QualityReport",
    "ReasonCode",
    "Verdict",
    "assess_recording",
    "assess_waveform",
]
