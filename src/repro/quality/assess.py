"""Waveform-level quality metrics and the gate decision logic.

All metrics are deterministic pure functions of the waveform and the
probe :class:`~repro.signal.chirp.ChirpDesign`; no RNG, no clocks, and
the only DSP is one matched filter (plan-cached template) plus one
FFT, so gating a recording costs a small fraction of the pipeline it
protects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError
from ..signal.chirp import ChirpDesign
from .report import QualityReport, ReasonCode, Verdict

if TYPE_CHECKING:  # circular-import-free annotation only
    from ..simulation.session import Recording

__all__ = ["QualityConfig", "assess_waveform", "assess_recording"]


@dataclass(frozen=True)
class QualityConfig:
    """Thresholds for the accept / degrade / reject decision.

    Each metric has a *degrade* and a *reject* bound; crossing the
    first tags the recording, crossing the second quarantines it.
    Defaults are calibrated against the simulator's clean captures
    (which must ACCEPT) and :mod:`repro.faultlab` at default severity.
    """

    #: Samples with ``|x| >= clip_band * peak`` count as railed.
    clip_band: float = 0.995
    degrade_clipping_ratio: float = 0.01
    reject_clipping_ratio: float = 0.2
    #: Zero runs at least this long (ms) count as dropouts.
    dropout_min_ms: float = 0.5
    degrade_dropout_fraction: float = 0.004
    reject_dropout_fraction: float = 0.3
    degrade_snr_db: float = 6.0
    reject_snr_db: float = -3.0
    #: Matched-filter peak-to-background ratio thresholds.
    degrade_chirp_presence: float = 8.0
    reject_chirp_presence: float = 2.5
    #: Actual/expected duration thresholds (only with a known target).
    degrade_duration_ratio: float = 0.9
    reject_duration_ratio: float = 0.2
    #: Above this NaN/Inf fraction the capture is beyond salvage.
    reject_nonfinite_fraction: float = 0.02
    #: Echo-spread thresholds (fraction of matched-filter energy
    #: outside the per-interval peak window; see ``_echo_spread``).
    #: Clean captures sit near 0.35, dense multipath at 0.55-0.7.
    #: Both only apply when the in-band SNR clears ``degrade_snr_db``,
    #: so a quiet or noisy capture is never mislabelled echo-dominant.
    degrade_echo_spread: float = 0.5
    reject_echo_spread: float = 0.65

    def __post_init__(self) -> None:
        if not 0.0 < self.clip_band <= 1.0:
            raise ConfigurationError(f"clip_band must be in (0, 1], got {self.clip_band}")
        if self.dropout_min_ms <= 0:
            raise ConfigurationError(
                f"dropout_min_ms must be positive, got {self.dropout_min_ms}"
            )
        pairs = [
            (self.degrade_clipping_ratio, self.reject_clipping_ratio),
            (self.degrade_dropout_fraction, self.reject_dropout_fraction),
            (self.reject_snr_db, self.degrade_snr_db),
            (self.reject_chirp_presence, self.degrade_chirp_presence),
            (self.reject_duration_ratio, self.degrade_duration_ratio),
            (self.degrade_echo_spread, self.reject_echo_spread),
        ]
        for lo, hi in pairs:
            if lo > hi:
                raise ConfigurationError(
                    "degrade/reject thresholds are ordered inconsistently"
                )


def _zero_runs(waveform: np.ndarray, min_length: int) -> tuple[tuple[int, int], ...]:
    """``(start, end)`` spans of exact-zero runs of at least ``min_length``."""
    zero = waveform == 0.0
    if not zero.any():
        return ()
    edges = np.diff(zero.astype(np.int8))
    starts = np.flatnonzero(edges == 1) + 1
    ends = np.flatnonzero(edges == -1) + 1
    if zero[0]:
        starts = np.concatenate([[0], starts])
    if zero[-1]:
        ends = np.concatenate([ends, [zero.size]])
    spans = [
        (int(s), int(e)) for s, e in zip(starts, ends) if e - s >= min_length
    ]
    return tuple(spans)


def _chirp_presence(waveform: np.ndarray, chirp: ChirpDesign) -> float:
    """Matched-filter peak-to-background ratio of the probe signature.

    A capture containing the chirp train produces one sharp correlation
    peak per interval; the high percentile of the envelope then towers
    over its median.  Uses the plan-cached template spectrum, so the
    per-call cost is one FFT round trip of the waveform.
    """
    from ..kernels.chirp import matched_filter_planned

    envelope = matched_filter_planned(waveform, chirp)
    background = float(np.median(envelope))
    peak = float(np.percentile(envelope, 99.5))
    if peak <= 0.0:
        return 0.0
    if background <= 0.0:
        return float(np.inf)
    return peak / background


def _echo_spread(waveform: np.ndarray, chirp: ChirpDesign) -> float:
    """Fraction of matched-filter energy outside the per-interval peak.

    The envelope is cut into chirp-interval frames; within each frame
    the chirp-length window around the correlation peak holds the
    direct arrival plus the eardrum echo (whose round trip is shorter
    than one chirp).  Energy outside that window is either the noise
    floor (small for any capture worth processing) or multipath smear
    filling the inter-chirp gap — so the mean outside-fraction rises
    from ~0.35 on clean captures toward ~0.7 under dense reverberation.
    """
    from ..kernels.chirp import matched_filter_planned

    envelope = matched_filter_planned(waveform, chirp) ** 2
    hop = chirp.samples_per_interval
    num_frames = envelope.size // hop
    if num_frames == 0:
        return 0.0
    frames = envelope[: num_frames * hop].reshape(num_frames, hop)
    cumulative = np.concatenate(
        [np.zeros((num_frames, 1)), np.cumsum(frames, axis=1)], axis=1
    )
    peaks = np.argmax(frames, axis=1)
    half = chirp.samples_per_chirp
    lo = np.clip(peaks - half, 0, hop)
    hi = np.clip(peaks + half + 1, 0, hop)
    rows = np.arange(num_frames)
    in_window = cumulative[rows, hi] - cumulative[rows, lo]
    total = cumulative[:, -1]
    usable = total > 0.0
    if not usable.any():
        return 0.0
    return float(1.0 - np.mean(in_window[usable] / total[usable]))


def _inband_snr_db(waveform: np.ndarray, sample_rate: float, chirp: ChirpDesign) -> float:
    """Spectral power in the chirp sweep band vs the out-of-band floor."""
    spectrum = np.abs(np.fft.rfft(waveform)) ** 2
    freqs = np.fft.rfftfreq(waveform.size, d=1.0 / sample_rate)
    in_band = (freqs >= chirp.start_frequency) & (freqs <= chirp.end_frequency)
    out_band = ~in_band
    out_band[0] = False  # DC carries offset, not noise floor
    if not in_band.any() or not out_band.any():
        return 0.0
    signal_power = float(np.mean(spectrum[in_band]))
    noise_power = float(np.mean(spectrum[out_band]))
    if noise_power <= 0.0:
        return float(np.inf) if signal_power > 0.0 else 0.0
    if signal_power <= 0.0:
        return -float(np.inf)
    return 10.0 * float(np.log10(signal_power / noise_power))


def assess_waveform(
    waveform: np.ndarray,
    sample_rate: float,
    chirp: ChirpDesign,
    config: QualityConfig | None = None,
    *,
    expected_duration_s: float | None = None,
) -> QualityReport:
    """Assess one raw waveform and return the gate decision.

    Non-finite samples are zeroed *for metric computation only* (the
    caller's array is untouched), so a partially corrupted capture
    still gets meaningful clipping/SNR/presence numbers alongside its
    ``non_finite`` reason code.
    """
    config = config or QualityConfig()
    waveform = np.asarray(waveform, dtype=float)
    degrade: list[ReasonCode] = []
    reject: list[ReasonCode] = []

    if waveform.size == 0:
        return QualityReport(
            verdict=Verdict.REJECT,
            reasons=(ReasonCode.NO_SIGNAL,),
            chirp_presence=0.0,
            snr_db=0.0,
            clipping_ratio=0.0,
            dropout_fraction=0.0,
            dropout_map=(),
            nonfinite_fraction=0.0,
            duration_ratio=0.0,
        )

    finite = np.isfinite(waveform)
    nonfinite_fraction = 1.0 - float(np.mean(finite))
    if nonfinite_fraction > 0.0:
        target = reject if nonfinite_fraction > config.reject_nonfinite_fraction else degrade
        target.append(ReasonCode.NON_FINITE)
        waveform = np.where(finite, waveform, 0.0)

    peak = float(np.max(np.abs(waveform)))
    min_run = max(1, int(round(config.dropout_min_ms * 1e-3 * sample_rate)))
    dropout_map = _zero_runs(waveform, min_run)
    dropout_fraction = (
        sum(end - start for start, end in dropout_map) / waveform.size
    )

    if peak <= 0.0:
        return QualityReport(
            verdict=Verdict.REJECT,
            reasons=tuple(dict.fromkeys(reject + degrade + [ReasonCode.NO_SIGNAL])),
            chirp_presence=0.0,
            snr_db=0.0,
            clipping_ratio=0.0,
            dropout_fraction=1.0,
            dropout_map=dropout_map,
            nonfinite_fraction=nonfinite_fraction,
            duration_ratio=_duration_ratio(waveform, sample_rate, expected_duration_s),
        )

    clipping_ratio = float(np.mean(np.abs(waveform) >= config.clip_band * peak))
    chirp_presence = _chirp_presence(waveform, chirp)
    snr_db = _inband_snr_db(waveform, sample_rate, chirp)
    duration_ratio = _duration_ratio(waveform, sample_rate, expected_duration_s)
    echo_spread = _echo_spread(waveform, chirp)

    def grade(value: float, degrade_at: float, reject_at: float, code: ReasonCode,
              *, low_is_bad: bool) -> None:
        if low_is_bad:
            if value < reject_at:
                reject.append(code)
            elif value < degrade_at:
                degrade.append(code)
        else:
            if value > reject_at:
                reject.append(code)
            elif value > degrade_at:
                degrade.append(code)

    grade(clipping_ratio, config.degrade_clipping_ratio,
          config.reject_clipping_ratio, ReasonCode.CLIPPING, low_is_bad=False)
    grade(dropout_fraction, config.degrade_dropout_fraction,
          config.reject_dropout_fraction, ReasonCode.DROPOUT, low_is_bad=False)
    grade(snr_db, config.degrade_snr_db, config.reject_snr_db,
          ReasonCode.LOW_SNR, low_is_bad=True)
    grade(chirp_presence, config.degrade_chirp_presence,
          config.reject_chirp_presence, ReasonCode.WEAK_CHIRP, low_is_bad=True)
    if expected_duration_s is not None:
        grade(duration_ratio, config.degrade_duration_ratio,
              config.reject_duration_ratio, ReasonCode.TRUNCATED, low_is_bad=True)

    # Multipath post-processing.  Only enter the echo-dominant regime
    # when the band demonstrably carries chirp energy AND that energy is
    # temporally smeared: a reverberant canal raises the in-band SNR (it
    # adds in-band reflections) while collapsing the matched-filter
    # presence ratio (the inter-chirp gap fills, raising the envelope
    # median).  A genuinely weak or noise-buried chirp fails the SNR
    # gate instead, so those verdicts are untouched.
    if snr_db >= config.degrade_snr_db and echo_spread >= config.degrade_echo_spread:
        if ReasonCode.WEAK_CHIRP in reject:
            reject.remove(ReasonCode.WEAK_CHIRP)
            if echo_spread >= config.reject_echo_spread:
                # Diffuse beyond recovery: no peak to anchor the rake.
                reject.append(ReasonCode.ECHO_DOMINANT)
            else:
                # Reverberant but recoverable: process, tagged.
                degrade.append(ReasonCode.WEAK_CHIRP)
        if ReasonCode.ECHO_DOMINANT not in reject:
            degrade.append(ReasonCode.ECHO_DOMINANT)

    if reject:
        verdict = Verdict.REJECT
    elif degrade:
        verdict = Verdict.DEGRADE
    else:
        verdict = Verdict.ACCEPT
    return QualityReport(
        verdict=verdict,
        reasons=tuple(dict.fromkeys(reject + degrade)),
        chirp_presence=chirp_presence,
        snr_db=snr_db,
        clipping_ratio=clipping_ratio,
        dropout_fraction=dropout_fraction,
        dropout_map=dropout_map,
        nonfinite_fraction=nonfinite_fraction,
        duration_ratio=duration_ratio,
        echo_spread=echo_spread,
    )


def _duration_ratio(
    waveform: np.ndarray, sample_rate: float, expected_duration_s: float | None
) -> float:
    if expected_duration_s is None or expected_duration_s <= 0.0:
        return 1.0
    return (waveform.size / sample_rate) / expected_duration_s


def assess_recording(
    recording: "Recording",
    chirp: ChirpDesign,
    config: QualityConfig | None = None,
) -> QualityReport:
    """Assess a :class:`~repro.simulation.session.Recording`.

    The expected duration comes from the recording's own session
    config, so interrupted captures earn a ``truncated`` reason.
    """
    expected = getattr(getattr(recording, "config", None), "duration_s", None)
    return assess_waveform(
        recording.waveform,
        recording.sample_rate,
        chirp,
        config,
        expected_duration_s=expected,
    )
