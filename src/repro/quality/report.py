"""Structured outcome of a signal-quality assessment."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Verdict", "ReasonCode", "QualityReport"]


class Verdict(Enum):
    """Gate decision for one recording.

    - ``ACCEPT`` — clean capture, process normally;
    - ``DEGRADE`` — process, but tag the result: some quality metric is
      in the marginal band, so downstream consumers should weight the
      screening outcome accordingly;
    - ``REJECT`` — do not run the DSP; quarantine with reason codes and
      prompt a re-measurement.
    """

    ACCEPT = "accept"
    DEGRADE = "degrade"
    REJECT = "reject"


class ReasonCode(Enum):
    """Machine-readable causes attached to degrade/reject verdicts."""

    #: NaN/Inf samples present (corrupted file, glitching driver).
    NON_FINITE = "non_finite"
    #: The waveform is empty or identically zero.
    NO_SIGNAL = "no_signal"
    #: Too many samples pinned at the amplitude rails (ADC saturation).
    CLIPPING = "clipping"
    #: Zero-run bursts indicating delivery dropouts.
    DROPOUT = "dropout"
    #: In-band spectral SNR below threshold (loud room, leaking seal).
    LOW_SNR = "low_snr"
    #: Matched-filter chirp signature weak or absent.
    WEAK_CHIRP = "weak_chirp"
    #: Capture shorter than the expected session duration.
    TRUNCATED = "truncated"
    #: Multipath/reverberation dominates the capture: in-band energy is
    #: present but temporally smeared across the inter-chirp gap.  As a
    #: degrade reason the smear is recoverable (the rake stage can
    #: separate it); as a reject reason the capture is diffuse beyond
    #: recovery — no chirp peak survives to anchor segmentation.
    ECHO_DOMINANT = "echo_dominant"


@dataclass(frozen=True)
class QualityReport:
    """Quality metrics plus the gate verdict for one recording.

    Attributes
    ----------
    verdict:
        Accept / degrade / reject decision.
    reasons:
        Reason codes that triggered the verdict (empty on ACCEPT).
    chirp_presence:
        Matched-filter peak-to-background ratio; > ~10 for a capture
        that actually contains the probe chirp train.
    snr_db:
        In-band (chirp sweep band) versus out-of-band spectral power
        ratio in dB.
    clipping_ratio:
        Fraction of samples within the clip detection band of the peak.
    dropout_fraction:
        Fraction of samples inside qualifying zero runs.
    dropout_map:
        ``(start, end)`` sample spans of each detected zero run.
    nonfinite_fraction:
        Fraction of NaN/Inf samples.
    duration_ratio:
        Actual over expected duration (1.0 when no expectation given).
    echo_spread:
        Fraction of matched-filter envelope energy falling *outside*
        the chirp-length window around each interval's correlation
        peak.  ~0.35 for clean captures (noise floor plus eardrum
        echo), rising toward ~0.7 as multipath smears chirp energy
        across the inter-chirp gap.
    """

    verdict: Verdict
    reasons: tuple[ReasonCode, ...]
    chirp_presence: float
    snr_db: float
    clipping_ratio: float
    dropout_fraction: float
    dropout_map: tuple[tuple[int, int], ...]
    nonfinite_fraction: float
    duration_ratio: float = 1.0
    echo_spread: float = 0.0

    @property
    def accepted(self) -> bool:
        """True when the capture passed cleanly."""
        return self.verdict is Verdict.ACCEPT

    @property
    def rejected(self) -> bool:
        """True when the capture must not be processed."""
        return self.verdict is Verdict.REJECT

    @property
    def reason_string(self) -> str:
        """Reason codes joined for messages, e.g. ``"clipping; dropout"``."""
        return "; ".join(code.value for code in self.reasons)

    def summary(self) -> dict:
        """JSON-serializable digest (artifacts, metrics exports)."""
        return {
            "verdict": self.verdict.value,
            "reasons": [code.value for code in self.reasons],
            "chirp_presence": self.chirp_presence,
            "snr_db": self.snr_db,
            "clipping_ratio": self.clipping_ratio,
            "dropout_fraction": self.dropout_fraction,
            "num_dropouts": len(self.dropout_map),
            "nonfinite_fraction": self.nonfinite_fraction,
            "duration_ratio": self.duration_ratio,
            "echo_spread": self.echo_spread,
        }
