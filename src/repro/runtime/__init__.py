"""The batch-screening runtime: execution layer of the reproduction.

Sits between the virtual clinic (``repro.simulation``) and the learning
stack (``repro.learning`` / ``repro.core``): everything that turns *many*
raw :class:`~repro.simulation.session.Recording` objects into feature
vectors — worker pools, content-addressed caching, per-recording fault
quarantine, and runtime metrics — lives here, so experiments and the
screening API stay declarative about *what* to compute and the runtime
decides *how*.

Quick use::

    from repro.runtime import BatchExecutor, FeatureCache, RuntimeMetrics

    executor = BatchExecutor(workers=4, cache=FeatureCache())
    result = executor.run(study.recordings)
    result.processed        # in input order, byte-identical to serial
    result.quarantine       # structured FailedRecording entries
    executor.metrics.report()

or ``python -m repro.runtime --participants 4 --days 8 --workers 4``
for an end-to-end demonstration with a metrics report.
"""

from .breaker import BreakerState, CircuitBreaker
from .cache import FeatureCache, recording_key
from .chaos import FaultInjector
from .executor import BatchExecutor, BatchResult
from .faults import DEFAULT_RETRY_POLICY, FailedRecording, RetryPolicy
from .metrics import Histogram, RuntimeMetrics

__all__ = [
    "BatchExecutor",
    "BatchResult",
    "BreakerState",
    "CircuitBreaker",
    "FaultInjector",
    "FeatureCache",
    "recording_key",
    "FailedRecording",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "Histogram",
    "RuntimeMetrics",
]
