"""Batch-runtime demonstration CLI.

Simulates a small longitudinal study, screens it through
:class:`~repro.runtime.executor.BatchExecutor` twice — a cold pass that
pays the DSP and a warm pass served from the feature cache — and prints
the runtime metrics report::

    python -m repro.runtime --participants 4 --days 8 --workers 4
    python -m repro.runtime --participants 2 --days 2 --json
    python -m repro.runtime --cache-dir /tmp/earsonar-cache  # persistent
    python -m repro.runtime --trace-dir runs/demo            # full telemetry

``--trace-dir`` enables the observability layer: spans for every
pipeline stage and runtime step, a structured JSONL event log, a
:class:`~repro.obs.manifest.RunManifest`, and the Chrome-trace /
Prometheus exports — inspect them with ``python -m repro.obs``.

This is the smoke-test surface for CI and the reference example for
wiring the runtime into new workloads.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import time
from pathlib import Path

import numpy as np

from ..core.config import EarSonarConfig
from ..core.pipeline import EarSonarPipeline
from ..obs import EventLog, Tracer, capture_manifest, use_event_log, use_tracer
from ..obs.export import write_run_record
from ..simulation.cohort import StudyDesign, build_cohort, simulate_study
from ..simulation.session import SessionConfig
from .cache import FeatureCache
from .executor import BatchExecutor
from .metrics import RuntimeMetrics


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description="Process a simulated study through the batch runtime.",
    )
    parser.add_argument("--participants", type=int, default=4, help="cohort size")
    parser.add_argument("--days", type=int, default=4, help="follow-up days")
    parser.add_argument(
        "--sessions-per-day", type=int, default=1, help="recordings per day"
    )
    parser.add_argument(
        "--duration", type=float, default=0.5, help="recording length in seconds"
    )
    parser.add_argument("--workers", type=int, default=1, help="worker processes")
    parser.add_argument(
        "--chunk-size", type=int, default=None, help="recordings per pool task"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="persist the feature cache on disk"
    )
    parser.add_argument("--seed", type=int, default=2023, help="simulation seed")
    parser.add_argument(
        "--no-warm-pass",
        action="store_true",
        help="skip the second (cache-warm) pass",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON on stdout"
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="enable tracing and write the run record (spans, events, "
        "manifest, Chrome trace, Prometheus text) to this directory",
    )
    args = parser.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    # Recovery trajectories need >= 8 days to cover all effusion states;
    # shorter demos simply record the first --days of a longer course.
    cohort = build_cohort(args.participants, rng, total_days=max(args.days, 8))
    design = StudyDesign(
        total_days=args.days,
        sessions_per_day=args.sessions_per_day,
        session_config=SessionConfig(duration_s=args.duration),
    )
    study = simulate_study(cohort, design, rng)

    config = EarSonarConfig()
    metrics = RuntimeMetrics()
    executor = BatchExecutor(
        EarSonarPipeline(config),
        workers=args.workers,
        chunk_size=args.chunk_size,
        cache=FeatureCache(directory=args.cache_dir),
        metrics=metrics,
    )

    tracer: Tracer | None = None
    events: EventLog | None = None
    scopes = contextlib.ExitStack()
    if args.trace_dir is not None:
        tracer = Tracer()
        events = EventLog(path=Path(args.trace_dir) / "events.jsonl")
        scopes.enter_context(use_tracer(tracer))
        scopes.enter_context(use_event_log(events))

    passes = {}
    with scopes:
        for name in ["cold"] if args.no_warm_pass else ["cold", "warm"]:
            t0 = time.perf_counter()
            result = executor.run(study.recordings)
            elapsed = time.perf_counter() - t0
            passes[name] = {
                "recordings": len(result),
                "ok": result.ok_count,
                "failed": result.failed_count,
                "seconds": round(elapsed, 3),
                "recordings_per_sec": round(len(result) / elapsed, 2) if elapsed else 0.0,
            }

    if tracer is not None and events is not None:
        manifest = capture_manifest(config=config, seed=args.seed, argv=argv)
        events.close()
        paths = write_run_record(
            args.trace_dir,
            spans=tracer.traces,
            metrics=metrics,
            manifest=manifest,
            events=events,
        )
        print(f"trace written: {paths['record']}", file=sys.stderr)

    if args.json:
        print(json.dumps({"passes": passes, "metrics": metrics.report()}, indent=2))
        return 0

    print(
        f"study: {args.participants} participants x {args.days} days "
        f"x {args.sessions_per_day}/day ({len(study)} recordings, "
        f"{args.duration:.2f}s each), workers={args.workers}"
    )
    for name, stats in passes.items():
        print(
            f"{name:>5} pass: {stats['ok']} ok, {stats['failed']} quarantined, "
            f"{stats['seconds']:.2f}s ({stats['recordings_per_sec']:.1f} rec/s)"
        )
    print()
    print(metrics.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
