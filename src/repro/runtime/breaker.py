"""Circuit breaker for the executor's parallel fan-out.

When worker infrastructure is unhealthy — processes dying, tasks
hitting their deadline, a poisoned config crashing every chunk — each
additional dispatch costs a full timeout or pool respawn and returns
nothing.  The breaker watches *consecutive* chunk failures and, past a
threshold, opens: remaining work is quarantined immediately with
:class:`~repro.errors.CircuitOpenError` instead of being dispatched.

Recovery is deliberately batch-based, not clock-based: the runtime's
determinism discipline forbids wall-clock behaviour changes, so an open
breaker goes *half-open* at the start of the next batch, lets exactly
one probe chunk through, and either closes (probe succeeded) or snaps
back open (probe failed).  The same input sequence therefore always
produces the same breaker trajectory.
"""

from __future__ import annotations

from enum import Enum

from ..errors import ConfigurationError

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(Enum):
    """Health states of the fan-out path."""

    #: Normal operation; failures are counted.
    CLOSED = "closed"
    #: Tripped: dispatching is halted and work is quarantined.
    OPEN = "open"
    #: Probation at the start of a new batch: one probe chunk runs.
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker over pool chunk outcomes.

    Parameters
    ----------
    failure_threshold:
        Consecutive chunk failures that open the breaker.  Successes
        reset the count, so sporadic per-chunk faults never trip it —
        only a systematically failing fan-out does.
    """

    def __init__(self, failure_threshold: int = 3) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0

    @property
    def is_open(self) -> bool:
        """True when dispatching must halt."""
        return self.state is BreakerState.OPEN

    def on_new_batch(self) -> None:
        """Begin a batch: an open breaker moves to half-open probation."""
        if self.state is BreakerState.OPEN:
            self.state = BreakerState.HALF_OPEN

    def record_success(self) -> None:
        """A chunk completed: close the breaker and reset the count."""
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0

    def record_failure(self) -> bool:
        """A chunk failed; returns True when this failure opens the breaker.

        In half-open state a single failure re-opens immediately — the
        probe chunk just proved the fan-out is still unhealthy.
        """
        self.consecutive_failures += 1
        should_open = (
            self.state is BreakerState.HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        )
        if should_open and self.state is not BreakerState.OPEN:
            self.state = BreakerState.OPEN
            return True
        return False
