"""Content-addressed cache of pipeline outputs.

Re-running an experiment, re-fitting a screener, or benchmarking twice
re-executes the exact same DSP on the exact same waveforms.  The cache
keys each :class:`~repro.core.results.ProcessedRecording` by the SHA-256
of the raw waveform bytes (plus sample rate) and the pipeline
configuration's :func:`~repro.core.config.config_fingerprint`, so

- identical audio under an identical config is computed once, ever;
- any config change — however deep in the tree — misses cleanly.

The key is *content*-addressed on purpose: provenance (participant id,
day, ground truth) is not hashed, and on a hit the cached result is
re-stamped with the requesting recording's provenance.  Two children
with bit-identical waveforms (it happens constantly in seeded
simulations) therefore share the DSP but keep their own labels.

Two tiers: an in-memory LRU (bounded by entry count) and an optional
on-disk ``.npz`` store that survives processes, making warm re-runs of
whole studies skip signal processing entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..core.results import ProcessedRecording
from ..simulation.effusion import MeeState
from ..simulation.session import Recording

__all__ = ["recording_key", "FeatureCache"]


def recording_key(recording: Recording, config_fingerprint: str) -> str:
    """Cache key: hash of waveform content, sample rate, and config."""
    digest = hashlib.sha256()
    waveform = np.ascontiguousarray(recording.waveform, dtype=np.float64)
    digest.update(waveform.tobytes())
    digest.update(repr(float(recording.sample_rate)).encode("utf-8"))
    digest.update(config_fingerprint.encode("utf-8"))
    return digest.hexdigest()


class FeatureCache:
    """Two-tier (memory LRU + optional disk) store of pipeline outputs.

    Parameters
    ----------
    capacity:
        Maximum in-memory entries; the least recently used entry is
        evicted beyond it.  ``None`` means unbounded.
    directory:
        Optional directory for ``.npz`` persistence.  Entries evicted
        from memory remain on disk and are transparently reloaded
        (and re-promoted to memory) on the next hit.
    """

    def __init__(
        self,
        capacity: int | None = 4096,
        directory: str | Path | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._entries: OrderedDict[str, ProcessedRecording] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries or self._disk_path_if_exists(key) is not None

    # -- lookup / store ------------------------------------------------

    def get(self, key: str) -> ProcessedRecording | None:
        """Cached result for ``key``, or ``None`` on a miss."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry
        path = self._disk_path_if_exists(key)
        if path is None:
            return None
        entry = self._load(path)
        self._store_memory(key, entry)
        return entry

    def get_for(
        self, recording: Recording, config_fingerprint: str
    ) -> ProcessedRecording | None:
        """Content-addressed lookup, re-stamped with ``recording``'s provenance."""
        entry = self.get(recording_key(recording, config_fingerprint))
        if entry is None:
            return None
        return dataclasses.replace(
            entry,
            participant_id=recording.participant_id,
            day=recording.day,
            true_state=recording.state,
        )

    def put(self, key: str, processed: ProcessedRecording) -> None:
        """Store a pipeline output under ``key`` (memory and disk)."""
        self._store_memory(key, processed)
        if self.directory is not None:
            self._save(self.directory / f"{key}.npz", processed)

    def clear_memory(self) -> None:
        """Drop the in-memory tier (disk entries remain)."""
        self._entries.clear()

    # -- internals -----------------------------------------------------

    def _store_memory(self, key: str, processed: ProcessedRecording) -> None:
        self._entries[key] = processed
        self._entries.move_to_end(key)
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def _disk_path_if_exists(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        path = self.directory / f"{key}.npz"
        return path if path.exists() else None

    @staticmethod
    def _save(path: Path, processed: ProcessedRecording) -> None:
        state = processed.true_state.value if processed.true_state else ""
        tmp = path.with_suffix(".tmp.npz")
        np.savez(
            tmp,
            features=processed.features,
            curve=processed.curve,
            mean_segment=processed.mean_segment,
            segment_rate=np.float64(processed.segment_rate),
            num_events=np.int64(processed.num_events),
            num_echoes=np.int64(processed.num_echoes),
            participant_id=np.str_(processed.participant_id),
            day=np.float64(processed.day),
            true_state=np.str_(state),
        )
        tmp.replace(path)

    @staticmethod
    def _load(path: Path) -> ProcessedRecording:
        with np.load(path) as data:
            state_str = str(data["true_state"])
            return ProcessedRecording(
                features=np.array(data["features"]),
                curve=np.array(data["curve"]),
                mean_segment=np.array(data["mean_segment"]),
                segment_rate=float(data["segment_rate"]),
                num_events=int(data["num_events"]),
                num_echoes=int(data["num_echoes"]),
                participant_id=str(data["participant_id"]),
                day=float(data["day"]),
                true_state=MeeState(state_str) if state_str else None,
            )
