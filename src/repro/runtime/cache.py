"""Content-addressed cache of pipeline outputs.

Re-running an experiment, re-fitting a screener, or benchmarking twice
re-executes the exact same DSP on the exact same waveforms.  The cache
keys each :class:`~repro.core.results.ProcessedRecording` by the SHA-256
of the raw waveform bytes (plus sample rate) and the pipeline
configuration's :func:`~repro.core.config.config_fingerprint`, so

- identical audio under an identical config is computed once, ever;
- any config change — however deep in the tree — misses cleanly.

The key is *content*-addressed on purpose: provenance (participant id,
day, ground truth) is not hashed, and on a hit the cached result is
re-stamped with the requesting recording's provenance.  Two children
with bit-identical waveforms (it happens constantly in seeded
simulations) therefore share the DSP but keep their own labels.

Two tiers: an in-memory LRU (bounded by entry count) and an optional
on-disk ``.npz`` store that survives processes, making warm re-runs of
whole studies skip signal processing entirely.

The disk tier is safe for many *writers* as well as many readers:
every write lands in a per-process temporary file (named with the
writer's PID, so two processes storing the same key never interleave
bytes) and is published with an atomic rename, optionally serialized
through a caller-supplied ``write_lock`` (the sharded service cache in
:mod:`repro.serve.shards` passes a per-shard file lock, which also
mutually excludes compaction against live writers).

The disk tier is *validated* on load: every entry carries a format
version and a SHA-256 payload checksum, and anything that fails to
open, parse, or verify — a truncated npz, a stray file, a half-written
entry from a killed process, bit rot — is evicted and reported as a
miss (counted under ``cache.corrupt``), never raised to the caller.
The science result is recomputed; a corrupted cache can cost time but
not correctness.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import zipfile
from collections import OrderedDict
from contextlib import AbstractContextManager, nullcontext
from pathlib import Path

import numpy as np

from ..core.results import ProcessedRecording
from ..errors import CacheCorruptionError
from ..obs import names as obs_names
from ..obs.events import EventLevel, current_event_log
from ..simulation.effusion import MeeState
from ..simulation.session import Recording
from .metrics import RuntimeMetrics

__all__ = ["recording_key", "FeatureCache"]

#: Bumped whenever the on-disk entry schema changes; entries written by
#: other versions are treated as corrupt (evicted, recomputed).
CACHE_FORMAT_VERSION = 2

#: Exceptions that mean "this disk entry is unreadable", not "the
#: program is broken": bad zip containers, missing/odd fields, short
#: reads, filesystem errors.  Kept explicit so genuine programming
#: errors still propagate out of the cache.
_CORRUPTION_ERRORS = (
    zipfile.BadZipFile,
    KeyError,
    ValueError,
    EOFError,
    OSError,
)


def recording_key(recording: Recording, config_fingerprint: str) -> str:
    """Cache key: hash of waveform content, sample rate, and config."""
    digest = hashlib.sha256()
    waveform = np.ascontiguousarray(recording.waveform, dtype=np.float64)
    digest.update(waveform.tobytes())
    digest.update(repr(float(recording.sample_rate)).encode("utf-8"))
    digest.update(config_fingerprint.encode("utf-8"))
    return digest.hexdigest()


class FeatureCache:
    """Two-tier (memory LRU + optional disk) store of pipeline outputs.

    Parameters
    ----------
    capacity:
        Maximum in-memory entries; the least recently used entry is
        evicted beyond it.  ``None`` means unbounded.
    directory:
        Optional directory for ``.npz`` persistence.  Entries evicted
        from memory remain on disk and are transparently reloaded
        (and re-promoted to memory) on the next hit.
    metrics:
        Optional :class:`RuntimeMetrics` registry; when present the
        cache counts corrupt-entry evictions under ``cache.corrupt``.
        :class:`~repro.runtime.executor.BatchExecutor` wires its own
        registry in when the cache has none.
    write_lock:
        Optional reusable context manager entered around each disk
        write (the per-process tmp write plus the atomic publish
        rename).  Writes are already interleaving-safe without it; a
        lock additionally serializes writers against maintenance that
        deletes files (e.g. shard compaction).
    """

    def __init__(
        self,
        capacity: int | None = 4096,
        directory: str | Path | None = None,
        metrics: RuntimeMetrics | None = None,
        write_lock: AbstractContextManager | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics
        self.write_lock = write_lock
        #: Corrupt disk entries evicted so far (also mirrored to
        #: ``metrics`` when a registry is attached).
        self.corrupt_evictions = 0
        self._entries: OrderedDict[str, ProcessedRecording] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries or self._disk_path_if_exists(key) is not None

    # -- lookup / store ------------------------------------------------

    def get(self, key: str) -> ProcessedRecording | None:
        """Cached result for ``key``, or ``None`` on a miss."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry
        path = self._disk_path_if_exists(key)
        if path is None:
            return None
        try:
            entry = self._load(path)
        except CacheCorruptionError:
            self._evict_corrupt(path)
            return None
        self._store_memory(key, entry)
        return entry

    def get_for(
        self, recording: Recording, config_fingerprint: str
    ) -> ProcessedRecording | None:
        """Content-addressed lookup, re-stamped with ``recording``'s provenance."""
        entry = self.get(recording_key(recording, config_fingerprint))
        if entry is None:
            return None
        return dataclasses.replace(
            entry,
            participant_id=recording.participant_id,
            day=recording.day,
            true_state=recording.state,
        )

    def put(self, key: str, processed: ProcessedRecording) -> None:
        """Store a pipeline output under ``key`` (memory and disk)."""
        self._store_memory(key, processed)
        if self.directory is not None:
            self._save(self.directory / f"{key}.npz", processed)

    def clear_memory(self) -> None:
        """Drop the in-memory tier (disk entries remain)."""
        self._entries.clear()

    # -- internals -----------------------------------------------------

    def _store_memory(self, key: str, processed: ProcessedRecording) -> None:
        self._entries[key] = processed
        self._entries.move_to_end(key)
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def _disk_path_if_exists(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        path = self.directory / f"{key}.npz"
        return path if path.exists() else None

    def _evict_corrupt(self, path: Path) -> None:
        """Remove an unreadable disk entry and account for it as a miss."""
        path.unlink(missing_ok=True)
        self.corrupt_evictions += 1
        if self.metrics is not None:
            self.metrics.increment(obs_names.METRIC_CACHE_CORRUPT)
        current_event_log().emit(
            obs_names.EVENT_CACHE_CORRUPT_EVICTED,
            level=EventLevel.WARNING,
            entry=path.name,
        )

    @staticmethod
    def _payload_checksum(
        features: np.ndarray, curve: np.ndarray, mean_segment: np.ndarray
    ) -> str:
        digest = hashlib.sha256()
        for array in (features, curve, mean_segment):
            digest.update(np.ascontiguousarray(array, dtype=np.float64).tobytes())
        return digest.hexdigest()

    @staticmethod
    def tmp_path_for(path: Path) -> Path:
        """Per-process staging path for one entry's write.

        The writer's PID is part of the name, so two processes storing
        the same key stage into *different* files and the last atomic
        rename wins — concurrent writers can waste a write but can
        never interleave bytes into a shared tmp.  The name ends in a
        non-``.npz`` suffix so directory scans (warm lookups,
        compaction) never mistake a half-written staging file for an
        entry; compaction removes any orphaned by a killed writer.
        """
        return path.with_name(f"{path.name}.tmp-{os.getpid()}")

    def _save(self, path: Path, processed: ProcessedRecording) -> None:
        state = processed.true_state.value if processed.true_state else ""
        checksum = self._payload_checksum(
            processed.features, processed.curve, processed.mean_segment
        )
        tmp = self.tmp_path_for(path)
        lock: AbstractContextManager = (
            self.write_lock if self.write_lock is not None else nullcontext()
        )
        with lock:
            # An open handle (not a path) keeps numpy from appending a
            # second ``.npz`` to the staging suffix.
            with open(tmp, "wb") as stream:
                np.savez(
                    stream,
                    cache_version=np.int64(CACHE_FORMAT_VERSION),
                    checksum=np.str_(checksum),
                    features=processed.features,
                    curve=processed.curve,
                    mean_segment=processed.mean_segment,
                    segment_rate=np.float64(processed.segment_rate),
                    num_events=np.int64(processed.num_events),
                    num_echoes=np.int64(processed.num_echoes),
                    participant_id=np.str_(processed.participant_id),
                    day=np.float64(processed.day),
                    true_state=np.str_(state),
                    confidence=np.float64(processed.confidence),
                    num_chirps_dropped=np.int64(processed.num_chirps_dropped),
                    quality_reasons=np.array(
                        list(processed.quality_reasons), dtype=np.str_
                    ),
                )
            tmp.replace(path)

    @classmethod
    def _load(cls, path: Path) -> ProcessedRecording:
        """Read and *validate* one disk entry.

        Raises :class:`CacheCorruptionError` for anything unreadable or
        failing verification; the caller evicts and treats it as a miss.
        """
        try:
            with np.load(path) as data:
                if int(data["cache_version"]) != CACHE_FORMAT_VERSION:
                    raise CacheCorruptionError(
                        f"cache entry {path.name} has version "
                        f"{int(data['cache_version'])}, "
                        f"expected {CACHE_FORMAT_VERSION}"
                    )
                features = np.array(data["features"])
                curve = np.array(data["curve"])
                mean_segment = np.array(data["mean_segment"])
                checksum = cls._payload_checksum(features, curve, mean_segment)
                if checksum != str(data["checksum"]):
                    raise CacheCorruptionError(
                        f"cache entry {path.name} failed checksum verification"
                    )
                state_str = str(data["true_state"])
                return ProcessedRecording(
                    features=features,
                    curve=curve,
                    mean_segment=mean_segment,
                    segment_rate=float(data["segment_rate"]),
                    num_events=int(data["num_events"]),
                    num_echoes=int(data["num_echoes"]),
                    participant_id=str(data["participant_id"]),
                    day=float(data["day"]),
                    true_state=MeeState(state_str) if state_str else None,
                    confidence=float(data["confidence"]),
                    num_chirps_dropped=int(data["num_chirps_dropped"]),
                    quality_reasons=tuple(
                        str(r) for r in np.atleast_1d(data["quality_reasons"])
                    ),
                )
        except CacheCorruptionError:
            raise
        except _CORRUPTION_ERRORS as exc:
            raise CacheCorruptionError(
                f"cache entry {path.name} is unreadable: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
