"""Deterministic fault injection for chaos-testing the executor.

A :class:`FaultInjector` names exact recording indices and one failure
mode; workers consult it before processing each recording and fail *on
purpose* — crash the process, overshoot the task deadline, or raise
:class:`~repro.errors.InjectedFaultError`.  Because the trip points are
explicit indices (not probabilities), a chaos test is exactly as
reproducible as the pipeline it attacks: same batch, same injector,
same failure trajectory.

Injection is honored only on the executor's pool path.  A crash or a
hang in the serial path would take down (or freeze) the caller's own
process, which is the opposite of what a chaos harness wants; the pool
path is also where the recovery machinery under test — deadlines,
circuit breaker, chunk quarantine — actually lives.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from ..errors import ConfigurationError, InjectedFaultError

__all__ = ["FaultInjector"]

#: Worker exit code used by crash injection, distinguishable from a
#: genuine interpreter abort in test assertions and logs.
CRASH_EXIT_CODE = 87


@dataclass(frozen=True)
class FaultInjector:
    """Trip plan for deliberate worker failures.

    Attributes
    ----------
    mode:
        ``"error"`` raises :class:`InjectedFaultError`; ``"crash"``
        kills the worker process with ``os._exit``; ``"hang"`` sleeps
        ``hang_s`` seconds so the task overshoots its deadline.
    indices:
        Batch positions (the executor's recording indices) that trip.
    hang_s:
        Sleep duration for ``"hang"`` mode.
    """

    mode: str
    indices: tuple[int, ...] = ()
    hang_s: float = 5.0

    def __post_init__(self) -> None:
        if self.mode not in ("error", "crash", "hang"):
            raise ConfigurationError(
                f"mode must be 'error', 'crash', or 'hang', got {self.mode!r}"
            )
        if self.hang_s <= 0:
            raise ConfigurationError(f"hang_s must be positive, got {self.hang_s}")

    def should_trip(self, index: int) -> bool:
        """Whether the recording at batch position ``index`` trips."""
        return index in self.indices

    def trip(self, index: int) -> None:
        """Execute the configured failure (worker side)."""
        if self.mode == "crash":
            # os._exit skips interpreter cleanup, faithfully simulating
            # an OOM kill / segfault as seen by the parent pool.
            os._exit(CRASH_EXIT_CODE)
        if self.mode == "hang":
            time.sleep(self.hang_s)
            return
        raise InjectedFaultError(f"injected fault at batch index {index}")
