"""Order-preserving, fault-isolated batch execution of the pipeline.

``BatchExecutor`` is the execution layer between raw recordings and the
learning stack.  One call fans ``EarSonarPipeline.process`` out across
a process pool (the DSP is CPU-bound, so threads would serialize on the
GIL), consults the feature cache before dispatching anything, and
quarantines per-recording failures instead of crashing the batch.

Three properties are load-bearing and tested:

- **Determinism** — results come back in input order and are
  byte-identical to a serial run: parallelism changes wall-clock, not
  science.
- **Cache-before-dispatch** — lookups happen in the parent, so a fully
  warm cache performs *zero* pipeline calls and never pays pool
  startup.
- **Fault isolation** — expected signal failures become structured
  :class:`~repro.runtime.faults.FailedRecording` entries; programming
  errors still propagate.

Work is chunked before pickling so each pool task amortizes the cost of
shipping waveforms to a worker; workers rebuild the pipeline once per
(process, config) pair and reuse it across chunks.
"""

from __future__ import annotations

import dataclasses
import functools
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Sequence, Union

from ..core.config import EarSonarConfig
from ..core.pipeline import EarSonarPipeline
from ..core.results import ProcessedRecording
from ..errors import (
    CircuitOpenError,
    ConfigurationError,
    ExecutionError,
    QualityRejectedError,
    TaskTimeoutError,
    WorkerCrashError,
)
from ..kernels import backends
from ..obs import names as obs_names
from ..obs.events import EventLevel, current_event_log
from ..obs.health import HealthContext, activate_health_from_context, current_health
from ..obs.tracer import Span, TraceContext, activate_from_context, current_tracer
from ..quality import QualityConfig, assess_recording
from ..simulation.session import Recording
from .breaker import CircuitBreaker
from .cache import FeatureCache, recording_key
from .chaos import FaultInjector
from .faults import DEFAULT_RETRY_POLICY, FailedRecording, RetryPolicy, run_with_policy
from .metrics import RuntimeMetrics
from .shm import (
    SharedRecording,
    WaveformArena,
    materialize_chunk,
    release_attachments,
    shared_memory_available,
)

__all__ = ["BatchExecutor", "BatchResult"]

Outcome = Union[ProcessedRecording, FailedRecording]


@dataclass
class BatchResult:
    """Per-recording outcomes of one batch run, in input order."""

    outcomes: list[Outcome] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def processed(self) -> list[ProcessedRecording]:
        """Successful pipeline outputs, in input order."""
        return [o for o in self.outcomes if isinstance(o, ProcessedRecording)]

    @property
    def quarantine(self) -> list[FailedRecording]:
        """Quarantined failures, in input order."""
        return [o for o in self.outcomes if isinstance(o, FailedRecording)]

    @property
    def ok_count(self) -> int:
        """Number of successfully processed recordings."""
        return sum(1 for o in self.outcomes if isinstance(o, ProcessedRecording))

    @property
    def failed_count(self) -> int:
        """Number of quarantined recordings."""
        return len(self.outcomes) - self.ok_count


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Per-worker-process pipeline cache, keyed by config fingerprint, so a
#: worker serving many chunks designs its filters/templates only once.
_WORKER_PIPELINES: dict[str, EarSonarPipeline] = {}


def _worker_pipeline(config: EarSonarConfig) -> EarSonarPipeline:
    key = config.fingerprint()
    pipeline = _WORKER_PIPELINES.get(key)
    if pipeline is None:
        pipeline = _WORKER_PIPELINES[key] = EarSonarPipeline(config)
    return pipeline


def _gated_timed_process(
    pipeline: EarSonarPipeline,
    recording: Recording,
    quality: QualityConfig | None = None,
):
    """``timed_process`` behind the optional quality gate.

    REJECT verdicts raise :class:`QualityRejectedError` — a
    :class:`~repro.errors.SignalProcessingError`, so the standard
    quarantine path catches it and the recording never pays for the
    DSP.  DEGRADE verdicts process normally but merge the gate's
    reason codes into the result's ``quality_reasons``.
    """
    if quality is None:
        return pipeline.timed_process(recording)
    # The gate span closes before a REJECT raises so the span tree of a
    # rejected recording is the same whether or not retries follow.
    with current_tracer().span(obs_names.SPAN_QUALITY_GATE) as span:
        report = assess_recording(recording, pipeline.config.chirp, quality)
        span.set("verdict", report.verdict.value)
        if report.reasons:
            span.set("reasons", report.reason_string)
    if report.rejected:
        raise QualityRejectedError(
            f"quality gate rejected capture: {report.reason_string}"
        )
    processed, latencies = pipeline.timed_process(recording)
    if not report.accepted:
        merged = tuple(
            dict.fromkeys(
                processed.quality_reasons
                + tuple(code.value for code in report.reasons)
            )
        )
        processed = dataclasses.replace(processed, quality_reasons=merged)
    return processed, latencies


def _traced_run_one(process, index: int, recording: Recording, policy: RetryPolicy):
    """Run one recording under the ambient tracer's ``recording`` root.

    The single per-recording instrumentation point shared by the serial
    path and the pool workers — both build the root span here, so a
    parallel run's adopted trees are structurally identical to a serial
    run's.  Root attributes are pure functions of the input and the
    outcome (never of timing or scheduling).
    """
    tracer = current_tracer()
    with tracer.span(
        obs_names.SPAN_RECORDING,
        index=index,
        participant=recording.participant_id,
        day=recording.day,
    ) as span:
        result, attempts = run_with_policy(process, recording, policy)
        span.set("attempts", attempts)
        if isinstance(result, FailedRecording):
            span.set("outcome", "failed")
            span.set("error_type", result.error_type)
        else:
            span.set("outcome", "ok")
    return result, attempts


def _process_chunk(
    config: EarSonarConfig,
    policy: RetryPolicy,
    chunk: list[tuple[int, Recording]] | list[tuple[int, SharedRecording]],
    quality: QualityConfig | None = None,
    injector: FaultInjector | None = None,
    trace_ctx: TraceContext | None = None,
    health_ctx: HealthContext | None = None,
) -> tuple[list[tuple[int, Outcome, object, int, dict | None]], dict | None]:
    """Process one chunk in a worker; never raises for expected faults.

    Returns ``(rows, health_state_or_None)`` where each row is
    ``(index, outcome, stage_latencies_or_None, attempts,
    span_tree_or_None)``; quarantining happens here so the parent's
    merge step is the same for serial and parallel runs.  When
    ``trace_ctx`` asks for tracing, each recording's span tree is
    serialized into its row for the parent to adopt; when
    ``health_ctx`` asks for fleet-health aggregation, the pipeline's
    in-worker health hooks record into a chunk-local monitor whose
    exported state travels home for the parent to merge — the same
    adoption pattern, applied to aggregates.  An armed
    :class:`FaultInjector` fires *before* its recording is processed —
    crashing the worker, sleeping past the deadline, or raising — so
    the parent's recovery machinery sees the failure exactly where a
    real one would occur.

    Chunks may arrive with :class:`~repro.runtime.shm.SharedRecording`
    stand-ins (the zero-copy path); they are rebuilt here as read-only
    views into the parent's shared-memory segment, and every view is
    dropped before the segment is unmapped on the way out.
    """
    pipeline = _worker_pipeline(config)
    process = functools.partial(_gated_timed_process, pipeline, quality=quality)
    indexed = list(
        zip((index for index, _ in chunk), materialize_chunk([item for _, item in chunk]))
    )
    out = []
    try:
        with activate_from_context(trace_ctx) as tracer, activate_health_from_context(
            health_ctx
        ) as health:
            for index, recording in indexed:
                if injector is not None and injector.should_trip(index):
                    injector.trip(index)
                result, attempts = _traced_run_one(process, index, recording, policy)
                span_dict = (
                    tracer.traces[-1].to_dict()
                    if tracer is not None and tracer.traces
                    else None
                )
                if isinstance(result, FailedRecording):
                    out.append((index, result, None, attempts, span_dict))
                else:
                    processed, latencies = result
                    out.append((index, processed, latencies, attempts, span_dict))
            recording = None  # drop the last zero-copy view before unmapping
            health_state = health.export_state() if health is not None else None
    finally:
        indexed.clear()
        release_attachments()
    return out, health_state


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class BatchExecutor:
    """Run the EarSonar pipeline over many recordings, fast and safely.

    Parameters
    ----------
    pipeline:
        The pipeline to execute (a default one is built when omitted).
        The serial path uses this instance directly; parallel workers
        rebuild an identical pipeline from its config.
    workers:
        Process count.  1 (the default) runs serially in-process, which
        keeps single-study experiments deterministic-by-construction
        and avoids pool startup for small batches.
    chunk_size:
        Recordings per pool task.  ``None`` auto-sizes to about four
        chunks per worker, balancing pickling overhead against
        stragglers.
    cache:
        Optional :class:`FeatureCache` consulted before any dispatch.
    metrics:
        Optional :class:`RuntimeMetrics` registry; one is created per
        executor when omitted.
    retry_policy:
        Bounded retry for transient failures (default: no retries).
    quality_gate:
        Optional :class:`~repro.quality.QualityConfig`.  When set,
        every recording is assessed before the DSP: REJECT verdicts
        are quarantined without processing, DEGRADE verdicts process
        but carry the gate's reason codes.  Applies to the serial and
        pool paths alike (the gate is deterministic).
    task_timeout_s:
        Per-pool-task deadline in seconds.  A chunk whose result does
        not arrive in time is quarantined as
        :class:`~repro.errors.TaskTimeoutError` instead of blocking
        the batch forever behind a hung worker.  ``None`` (default)
        waits indefinitely.  Pool path only.
    breaker:
        Optional :class:`CircuitBreaker`.  After its threshold of
        *consecutive* chunk failures (crashes, deadline misses,
        injected faults) the remaining chunks are quarantined as
        :class:`~repro.errors.CircuitOpenError` without being waited
        on.  Pool path only.
    fault_injector:
        Optional :class:`~repro.runtime.chaos.FaultInjector` armed in
        the workers for chaos tests.  Pool path only — a deliberate
        crash or hang in the serial path would take down the caller.
    zero_copy:
        Waveform handoff mode for the pool path.  ``None`` (default)
        enables the shared-memory arena whenever the host supports it;
        ``False`` forces the legacy pickled handoff; ``True`` insists
        on the arena (individual chunks still degrade to pickling,
        with a ``shm.fallback`` warning, if a segment cannot be
        created).  Results are byte-identical either way — only
        dispatch overhead changes.
    """

    def __init__(
        self,
        pipeline: EarSonarPipeline | None = None,
        *,
        workers: int = 1,
        chunk_size: int | None = None,
        cache: FeatureCache | None = None,
        metrics: RuntimeMetrics | None = None,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        quality_gate: QualityConfig | None = None,
        task_timeout_s: float | None = None,
        breaker: CircuitBreaker | None = None,
        fault_injector: FaultInjector | None = None,
        zero_copy: bool | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1 or None, got {chunk_size}"
            )
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ConfigurationError(
                f"task_timeout_s must be positive or None, got {task_timeout_s}"
            )
        self.pipeline = pipeline or EarSonarPipeline(EarSonarConfig())
        self.workers = workers
        self.chunk_size = chunk_size
        self.cache = cache
        self.metrics = metrics or RuntimeMetrics()
        self.retry_policy = retry_policy
        self.quality_gate = quality_gate
        self.task_timeout_s = task_timeout_s
        self.breaker = breaker
        self.fault_injector = fault_injector
        self.zero_copy = zero_copy
        if cache is not None and cache.metrics is None:
            # Corruption evictions surface in this executor's report.
            cache.metrics = self.metrics
        self._fingerprint = self.pipeline.config.fingerprint()
        # Pay any JIT compilation up front, in the parent, where it is
        # observable — never inside a latency-sensitive worker loop.
        self.metrics.observe(obs_names.HIST_JIT_COMPILE_MS, backends.ensure_ready())

    # -- public API ----------------------------------------------------

    def run(self, recordings: Sequence[Recording]) -> BatchResult:
        """Process every recording, preserving input order.

        Cache hits are resolved first in the parent; only misses are
        executed (serially or on the pool).  The outcome list aligns
        one-to-one with the input sequence.
        """
        recordings = list(recordings)
        t0 = time.perf_counter()
        events = current_event_log()
        events.emit(
            obs_names.EVENT_BATCH_STARTED,
            recordings=len(recordings),
            workers=self.workers,
        )
        self.metrics.increment(obs_names.METRIC_RECORDINGS_SUBMITTED, len(recordings))
        outcomes: list[Outcome | None] = [None] * len(recordings)

        misses: list[tuple[int, Recording]] = []
        for index, recording in enumerate(recordings):
            hit = self._cache_lookup(index, recording)
            if hit is not None:
                outcomes[index] = hit
            else:
                misses.append((index, recording))

        if misses:
            if self._effective_workers(len(misses)) > 1:
                self._run_pool(misses, outcomes)
            else:
                self._run_serial(misses, outcomes)

        ok = sum(1 for o in outcomes if isinstance(o, ProcessedRecording))
        failed = sum(1 for o in outcomes if isinstance(o, FailedRecording))
        self.metrics.increment(obs_names.METRIC_RECORDINGS_OK, ok)
        self.metrics.increment(obs_names.METRIC_RECORDINGS_FAILED, failed)
        self.metrics.observe(obs_names.HIST_BATCH_MS, (time.perf_counter() - t0) * 1e3)
        events.emit(obs_names.EVENT_BATCH_FINISHED, ok=ok, failed=failed)
        assert all(o is not None for o in outcomes)
        return BatchResult(outcomes=list(outcomes))

    # -- internals -----------------------------------------------------

    def _cache_lookup(self, index: int, recording: Recording) -> ProcessedRecording | None:
        if self.cache is None:
            return None
        # Lookups always happen in the parent (cache-before-dispatch),
        # so these spans are identical for serial and pool runs.
        with current_tracer().span(obs_names.SPAN_CACHE_LOOKUP, index=index) as span:
            hit = self.cache.get_for(recording, self._fingerprint)
            span.set("hit", hit is not None)
        self.metrics.increment(
            obs_names.METRIC_CACHE_HITS
            if hit is not None
            else obs_names.METRIC_CACHE_MISSES
        )
        return hit

    def _cache_store(self, recording: Recording, processed: ProcessedRecording) -> None:
        if self.cache is not None:
            self.cache.put(recording_key(recording, self._fingerprint), processed)

    def _effective_workers(self, num_misses: int) -> int:
        if self.workers == 1:
            return 1
        if multiprocessing.current_process().daemon:
            # Daemonized processes (e.g. inside another pool) cannot
            # fork children; degrade gracefully instead of crashing.
            self.metrics.increment(obs_names.METRIC_SERIAL_FALLBACK)
            current_event_log().emit(
                obs_names.EVENT_SERIAL_FALLBACK,
                level=EventLevel.WARNING,
                reason="daemonized process cannot fork workers",
            )
            return 1
        return min(self.workers, num_misses)

    def _record_outcome(
        self,
        index: int,
        recording: Recording,
        outcome: Outcome,
        latencies,
        attempts: int,
        outcomes: list[Outcome | None],
    ) -> None:
        outcomes[index] = outcome
        self.metrics.increment(obs_names.METRIC_PIPELINE_CALLS, attempts)
        if attempts > 1:
            self.metrics.increment(obs_names.METRIC_RECORDINGS_RETRIED, attempts - 1)
        # Parent-side fleet-health rollups: one screening outcome per
        # recording (verdict/reason dimensions) plus the quality SLO
        # feed.  Always in the parent so serial and pool runs count
        # identically regardless of which process ran the DSP.
        health = current_health()
        if isinstance(outcome, FailedRecording):
            if outcome.error_type == "QualityRejectedError":
                self.metrics.increment(obs_names.METRIC_QUALITY_REJECTED)
                if "echo_dominant" in outcome.message:
                    self.metrics.increment(obs_names.METRIC_QUALITY_ECHO_DOMINANT)
            if health.enabled:
                verdict = (
                    "rejected"
                    if outcome.error_type == "QualityRejectedError"
                    else "failed"
                )
                health.increment(
                    obs_names.HEALTH_SCREENINGS,
                    labels={"verdict": verdict, "reason": outcome.error_type},
                )
                health.slo_sample(obs_names.SLO_QUALITY, good=False)
            current_event_log().emit(
                obs_names.EVENT_RECORDING_QUARANTINED,
                level=EventLevel.WARNING,
                index=index,
                participant=outcome.participant_id,
                error_type=outcome.error_type,
            )
            return
        if isinstance(outcome, ProcessedRecording):
            if health.enabled:
                degraded = bool(outcome.quality_reasons)
                health.increment(
                    obs_names.HEALTH_SCREENINGS,
                    labels={
                        "verdict": "degraded" if degraded else "accepted",
                        "reason": outcome.quality_reasons[0] if degraded else "",
                    },
                )
                health.slo_sample(obs_names.SLO_QUALITY, good=True)
                if latencies is not None:
                    health.observe(
                        obs_names.HEALTH_RECORDING_MS,
                        latencies.bandpass_ms + latencies.feature_extract_ms,
                        labels={"lane": self.pipeline.config.precision},
                    )
            if outcome.quality_reasons:
                self.metrics.increment(obs_names.METRIC_QUALITY_DEGRADED)
                if "echo_dominant" in outcome.quality_reasons:
                    self.metrics.increment(obs_names.METRIC_QUALITY_ECHO_DOMINANT)
            self.metrics.observe(
                obs_names.HIST_CALIB_OFFSET_DB, outcome.calibration_offset_db
            )
            if outcome.num_reflections_removed > 0:
                self.metrics.increment(
                    obs_names.METRIC_REVERB_TAPS_REMOVED,
                    outcome.num_reflections_removed,
                )
            self._cache_store(recording, outcome)
            if latencies is not None:
                self.metrics.observe(obs_names.HIST_STAGE_BANDPASS_MS, latencies.bandpass_ms)
                self.metrics.observe(obs_names.HIST_STAGE_FEATURES_MS, latencies.feature_extract_ms)
                self.metrics.observe(
                    obs_names.HIST_RECORDING_MS,
                    latencies.bandpass_ms + latencies.feature_extract_ms,
                )

    def _run_serial(
        self, misses: list[tuple[int, Recording]], outcomes: list[Outcome | None]
    ) -> None:
        process = functools.partial(
            _gated_timed_process, self.pipeline, quality=self.quality_gate
        )
        for index, recording in misses:
            result, attempts = _traced_run_one(
                process, index, recording, self.retry_policy
            )
            if isinstance(result, FailedRecording):
                self._record_outcome(index, recording, result, None, attempts, outcomes)
            else:
                processed, latencies = result
                self._record_outcome(
                    index, recording, processed, latencies, attempts, outcomes
                )

    def _quarantine_chunk(
        self,
        chunk: list[tuple[int, Recording]],
        outcomes: list[Outcome | None],
        exc: BaseException,
    ) -> None:
        """Turn a whole failed pool task into per-recording quarantine."""
        tracer = current_tracer()
        events = current_event_log()
        for index, recording in chunk:
            outcomes[index] = FailedRecording(
                participant_id=recording.participant_id,
                day=recording.day,
                error_type=type(exc).__name__,
                message=str(exc),
                attempts=1,
                true_state=getattr(recording, "state", None),
            )
            # The worker died (or never ran), so no span tree came
            # back; synthesize the root parent-side so the trace still
            # accounts for every submitted recording.
            with tracer.span(
                obs_names.SPAN_RECORDING,
                index=index,
                participant=recording.participant_id,
                day=recording.day,
            ) as span:
                span.set("outcome", "quarantined")
                span.set("error_type", type(exc).__name__)
            events.emit(
                obs_names.EVENT_RECORDING_QUARANTINED,
                level=EventLevel.WARNING,
                index=index,
                participant=recording.participant_id,
                error_type=type(exc).__name__,
            )

    def _chunk_failed(
        self,
        chunk: list[tuple[int, Recording]],
        outcomes: list[Outcome | None],
        exc: BaseException,
    ) -> None:
        self._quarantine_chunk(chunk, outcomes, exc)
        if self.breaker is not None and self.breaker.record_failure():
            self.metrics.increment(obs_names.METRIC_BREAKER_OPENED)
            current_event_log().emit(
                obs_names.EVENT_BREAKER_OPENED,
                level=EventLevel.ERROR,
                consecutive_failures=self.breaker.consecutive_failures,
            )

    def _run_pool(
        self, misses: list[tuple[int, Recording]], outcomes: list[Outcome | None]
    ) -> None:
        workers = self._effective_workers(len(misses))
        chunks = self._chunk(misses, workers)
        self.metrics.increment(obs_names.METRIC_CHUNKS_DISPATCHED, len(chunks))
        by_index = {index: recording for index, recording in misses}
        config = self.pipeline.config
        tracer = current_tracer()
        trace_ctx = TraceContext.capture()
        health = current_health()
        health_ctx = HealthContext.capture()
        breaker = self.breaker
        if breaker is not None:
            breaker.on_new_batch()
        arena = WaveformArena(self.metrics)
        use_shm = (
            self.zero_copy
            if self.zero_copy is not None
            else shared_memory_available()
        )
        payloads: list[list] = []
        segments: list[str | None] = []
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            for chunk in chunks:
                if use_shm:
                    shared, segment = arena.share_chunk(
                        [recording for _, recording in chunk]
                    )
                    payloads.append(
                        [(index, item) for (index, _), item in zip(chunk, shared)]
                    )
                    segments.append(segment)
                else:
                    payloads.append(chunk)
                    segments.append(None)
            futures = [
                pool.submit(
                    _process_chunk,
                    config,
                    self.retry_policy,
                    payload,
                    self.quality_gate,
                    self.fault_injector,
                    trace_ctx,
                    health_ctx,
                )
                for payload in payloads
            ]
            for chunk_no, (chunk, future) in enumerate(zip(chunks, futures)):
                try:
                    if breaker is not None and breaker.is_open:
                        future.cancel()
                        self.metrics.increment(obs_names.METRIC_CHUNKS_SKIPPED)
                        self._quarantine_chunk(
                            chunk,
                            outcomes,
                            CircuitOpenError(
                                "circuit breaker open after "
                                f"{breaker.consecutive_failures} consecutive "
                                "chunk failures"
                            ),
                        )
                        continue
                    try:
                        with tracer.span(
                            obs_names.SPAN_CHUNK, chunk=chunk_no, size=len(chunk)
                        ):
                            rows, health_state = future.result(
                                timeout=self.task_timeout_s
                            )
                    except FuturesTimeoutError:
                        self.metrics.increment(obs_names.METRIC_TIMEOUTS)
                        self._chunk_failed(
                            chunk,
                            outcomes,
                            TaskTimeoutError(
                                "pool task missed its "
                                f"{self.task_timeout_s:g}s deadline"
                            ),
                        )
                    except BrokenProcessPool as exc:
                        self.metrics.increment(obs_names.METRIC_WORKER_FAILURES)
                        self._chunk_failed(
                            chunk,
                            outcomes,
                            WorkerCrashError(f"worker process died mid-chunk: {exc}"),
                        )
                    except ExecutionError as exc:
                        # Injected faults and classified infrastructure
                        # errors raised inside the worker; anything else
                        # (a genuine programming error) still propagates.
                        self.metrics.increment(obs_names.METRIC_WORKER_FAILURES)
                        self._chunk_failed(chunk, outcomes, exc)
                    else:
                        if breaker is not None:
                            breaker.record_success()
                        if health_state is not None:
                            health.merge_state(health_state)
                        for index, outcome, latencies, attempts, span_dict in rows:
                            if span_dict is not None:
                                tracer.adopt(Span.from_dict(span_dict))
                            self._record_outcome(
                                index,
                                by_index[index],
                                outcome,
                                latencies,
                                attempts,
                                outcomes,
                            )
                finally:
                    # The worker is done with (or never got) this
                    # chunk's segment; unlink it now rather than at
                    # batch end so arena footprint stays one in-flight
                    # window, not the whole batch.
                    arena.release(segments[chunk_no])
        finally:
            # wait=False: after a timeout or crash there may be a hung
            # or dead worker; blocking on it here would forfeit the
            # deadline we just enforced.  The arena force-release keeps
            # /dev/shm clean on every exit path, including crashes.
            arena.close()
            pool.shutdown(wait=False, cancel_futures=True)

    def _chunk(
        self, misses: list[tuple[int, Recording]], workers: int
    ) -> list[list[tuple[int, Recording]]]:
        size = self.chunk_size
        if size is None:
            # ~4 chunks per worker: small enough to balance stragglers,
            # large enough to amortize pickling waveforms per task.
            size = max(1, -(-len(misses) // (workers * 4)))
        return [misses[i : i + size] for i in range(0, len(misses), size)]
