"""Per-recording fault isolation for batch runs.

In a home-screening deployment some fraction of captures always fails —
bad earbud seal, a child yanking the cable, a truck outside.  The paper
treats those as re-measurement prompts, not crashes; the batch runtime
therefore quarantines them as structured :class:`FailedRecording`
entries instead of aborting the study or silently dropping rows.

Only the library's expected signal-processing failures
(:class:`~repro.errors.SignalProcessingError`, which includes
:class:`~repro.errors.NoEchoFoundError`) are quarantined; programming
errors still propagate and fail the batch loudly.

:class:`RetryPolicy` is the bounded-retry hook: the simulated DSP is
deterministic so nothing retries by default, but a real deployment
reading waveforms off flaky storage or a network can declare which
exception types are transient and how many extra attempts they get.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SignalProcessingError
from ..obs import names as obs_names
from ..obs.tracer import current_tracer
from ..simulation.effusion import MeeState

__all__ = ["FailedRecording", "RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class FailedRecording:
    """Quarantine record for one recording the pipeline could not process.

    Attributes
    ----------
    participant_id / day:
        Provenance of the failed capture, enough to schedule a
        re-measurement.
    error_type:
        Exception class name (e.g. ``"NoEchoFoundError"``).
    message:
        The exception's message.
    attempts:
        Total processing attempts made (1 when no retry happened).
    true_state:
        Ground-truth state if the recording carried one (simulation);
        ``None`` for field recordings.
    """

    participant_id: str
    day: float
    error_type: str
    message: str
    attempts: int = 1
    true_state: MeeState | None = None

    @property
    def reason(self) -> str:
        """Single-string diagnosis, e.g. ``"NoEchoFoundError: only 1 ..."``.

        The stable round-trip target for the error taxonomy: every
        quarantined exception lands here as ``type-name: message``, so
        logs and artifacts stay greppable by exception class.
        """
        return f"{self.error_type}: {self.message}"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry for transient per-recording failures.

    Attributes
    ----------
    max_retries:
        Extra attempts after the first (0 disables retry entirely).
    transient:
        Exception types considered worth retrying.  Anything else —
        including the deterministic :class:`NoEchoFoundError` — is
        quarantined on first failure.
    """

    max_retries: int = 0
    transient: tuple[type[BaseException], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) may be retried."""
        if attempt > self.max_retries:
            return False
        return isinstance(exc, self.transient)


#: No retries: correct for the deterministic simulation pipeline.
DEFAULT_RETRY_POLICY = RetryPolicy()


def run_with_policy(func, recording, policy: RetryPolicy):
    """Call ``func(recording)`` under ``policy``.

    Returns ``(result, attempts)`` on success.  On a quarantinable
    failure returns ``(FailedRecording, attempts)``; other exceptions
    propagate unchanged.
    """
    tracer = current_tracer()
    attempt = 0
    while True:
        attempt += 1
        # The try sits *inside* the attempt span so a quarantined
        # failure closes the span cleanly (no ``error`` attr stamped by
        # __exit__) and the tree stays identical across serial/pool.
        with tracer.span(obs_names.SPAN_RETRY_ATTEMPT, attempt=attempt) as span:
            try:
                return func(recording), attempt
            except SignalProcessingError as exc:
                span.set("quarantined_error", type(exc).__name__)
                if policy.should_retry(exc, attempt):
                    continue
                failed = FailedRecording(
                    participant_id=recording.participant_id,
                    day=recording.day,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    attempts=attempt,
                    true_state=getattr(recording, "state", None),
                )
                return failed, attempt
