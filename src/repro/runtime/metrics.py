"""Lightweight runtime observability: counters and latency histograms.

A production batch runtime needs to answer three questions cheaply —
how much work ran, how long it took (with tail percentiles, since a
screening service cares about the p99 a caregiver experiences), and how
often the cache saved a pipeline invocation.  :class:`RuntimeMetrics`
is a small in-process registry answering exactly those; it has no
external dependencies and serializes to a plain dict so benchmarks and
the CLI can dump it as JSON.  The Prometheus text exposition of a
registry comes from :func:`repro.obs.export.prometheus_text`.

Thread safety: the registry lock guards the counter map and the
histogram directory, and every :class:`Histogram` carries its *own*
lock around its sample state — so both ``metrics.observe(name, v)``
and the direct ``metrics.histogram(name).observe(v)`` path mutate
under a lock (the latter used to bypass locking entirely).

Memory: histograms keep exact samples up to a configurable cap
(default :data:`DEFAULT_MAX_SAMPLES`) and switch to uniform reservoir
sampling beyond it, so percentiles stay exact for ordinary runs while
a million-recording batch cannot grow the registry without bound.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = ["DEFAULT_MAX_SAMPLES", "Histogram", "RuntimeMetrics"]

#: Sample cap above which a histogram degrades to reservoir sampling.
#: 8192 doubles comfortably past any single study in the test suite
#: while bounding a histogram at 64 KiB of floats.
DEFAULT_MAX_SAMPLES = 8192

#: 64-bit LCG constants (Knuth MMIX) for the reservoir's deterministic
#: index stream — telemetry must not perturb (or depend on) any science
#: RNG, so the histogram brings its own fixed-seed generator.
_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1
_LCG_SEED = 0x9E3779B97F4A7C15


class Histogram:
    """Latency histogram with exact-then-reservoir percentile summaries.

    Up to ``max_samples`` observations are kept verbatim, so small-run
    percentiles are exact.  Beyond the cap, new observations replace
    stored ones via uniform reservoir sampling (Algorithm R with a
    deterministic in-object LCG), keeping an unbiased fixed-size sample
    of the full stream; ``count`` / ``total`` / ``max`` remain exact
    regardless.  All mutation and reads take the histogram's own lock,
    so direct ``histogram(name).observe(...)`` calls are as safe as
    going through the registry.
    """

    __slots__ = ("_lock", "_samples", "_count", "_total", "_max", "_max_samples", "_lcg")

    def __init__(self, max_samples: int | None = DEFAULT_MAX_SAMPLES) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError(f"max_samples must be >= 1 or None, got {max_samples}")
        self._lock = threading.Lock()
        self._samples: list[float] = []
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._max_samples = max_samples
        self._lcg = _LCG_SEED

    def observe(self, value: float) -> None:
        """Record one observation (e.g. a latency in milliseconds)."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            if value > self._max or self._count == 1:
                self._max = value
            cap = self._max_samples
            if cap is None or len(self._samples) < cap:
                self._samples.append(value)
                return
            # Algorithm R: keep each of the N seen values in the
            # reservoir with probability cap / N.
            self._lcg = (self._lcg * _LCG_MULT + _LCG_INC) & _LCG_MASK
            slot = (self._lcg >> 16) % self._count
            if slot < cap:
                self._samples[slot] = value

    @property
    def count(self) -> int:
        """Exact number of observations (not bounded by the reservoir)."""
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        """Exact sum of all observations."""
        with self._lock:
            return self._total

    @property
    def max_samples(self) -> int | None:
        """The reservoir cap this histogram was built with."""
        return self._max_samples

    @property
    def saturated(self) -> bool:
        """True once the reservoir has started replacing samples."""
        with self._lock:
            return self._max_samples is not None and self._count > self._max_samples

    def percentile(self, q: float) -> float:
        """``q``-th percentile (0-100): exact below the cap, else sampled."""
        with self._lock:
            if not self._samples:
                return 0.0
            return float(np.percentile(np.asarray(self._samples), q))

    def summary(self) -> dict[str, float]:
        """Count / mean / p50 / p95 / p99 / max digest.

        ``count``, ``mean``, and ``max`` are always exact; the
        percentiles come from the (possibly reservoir-sampled) stored
        samples.
        """
        with self._lock:
            if self._count == 0:
                return {
                    "count": 0,
                    "mean": 0.0,
                    "p50": 0.0,
                    "p95": 0.0,
                    "p99": 0.0,
                    "max": 0.0,
                }
            data = np.asarray(self._samples)
            p50, p95, p99 = np.percentile(data, [50.0, 95.0, 99.0])
            return {
                "count": int(self._count),
                "mean": float(self._total / self._count),
                "p50": float(p50),
                "p95": float(p95),
                "p99": float(p99),
                "max": float(self._max),
            }


class RuntimeMetrics:
    """Registry of named counters and histograms for one batch run.

    The canonical counter and histogram names the runtime emits are
    defined once in :mod:`repro.obs.names`
    (``CANONICAL_COUNTERS`` / ``CANONICAL_HISTOGRAMS``) and asserted by
    an end-to-end emission test; the highlights:

    - ``recordings.submitted`` / ``recordings.ok`` / ``recordings.failed``
    - ``recordings.retried`` — extra attempts granted by the retry policy
    - ``pipeline.calls`` — actual DSP invocations (cache misses only)
    - ``cache.hits`` / ``cache.misses``
    - ``cache.corrupt`` — unreadable disk entries evicted (each also a miss)
    - ``chunks.dispatched`` — pool tasks submitted by the parallel path
    - ``executor.serial_fallback`` — parallel run degraded to serial
    - ``executor.timeouts`` — pool tasks that missed their deadline
    - ``executor.worker_failures`` — chunks lost to crashes/injected faults
    - ``executor.chunks_skipped`` — chunks quarantined by an open breaker
    - ``breaker.opened`` — circuit-breaker open transitions
    - ``quality.degraded`` / ``quality.rejected`` — quality-gate verdicts
    - ``shm.segments_created`` / ``shm.segments_released`` — zero-copy
      arena segment lifecycle (always balanced by batch end)
    - ``shm.bytes_saved`` — waveform bytes handed off by reference
      instead of being pickled into pool tasks
    - histograms ``recording_ms``, ``stage.bandpass_ms``,
      ``stage.features_ms``, ``batch_ms``, ``shm.handoff_ms`` (arena
      packing latency per chunk), ``kernels.jit_compile_ms`` (up-front
      backend warm-up; 0 on the pure-NumPy backend),
      ``calib.offset_db`` (per-recording calibration offset estimate;
      0.0 whenever the calibration stage is disabled)

    Degraded-path counters (``SHM_DEGRADED_COUNTERS``) appear only when
    shared memory misbehaves: ``shm.fallbacks`` — chunks that reverted
    to pickled handoff; ``shm.orphans_cleaned`` — dead-owner segments
    reclaimed from ``/dev/shm``.

    Echo-conditional counters (``ECHO_CONDITIONAL_COUNTERS``) appear
    only on reverberant or miscalibrated inputs: ``reverb.taps_removed``
    — early reflections subtracted by the rake stage;
    ``quality.echo_dominant`` — gate outcomes carrying the
    ``echo_dominant`` reason.
    """

    def __init__(self, histogram_max_samples: int | None = DEFAULT_MAX_SAMPLES) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, Histogram] = {}
        self._histogram_max_samples = histogram_max_samples

    # -- counters ------------------------------------------------------

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(amount)

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    # -- histograms ----------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Record one observation in the named histogram."""
        self.histogram(name).observe(value)

    def histogram(self, name: str) -> Histogram:
        """The named histogram (created empty on first access).

        The returned object locks internally, so calling
        ``.observe(...)`` on it directly is safe.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(self._histogram_max_samples)
            return hist

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager recording the block's wall time in ms."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, (time.perf_counter() - start) * 1e3)

    # -- derived views -------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 with no lookups)."""
        hits = self.counter("cache.hits")
        misses = self.counter("cache.misses")
        total = hits + misses
        return hits / total if total else 0.0

    def report(self) -> dict:
        """Serializable snapshot: counters, histogram digests, rates."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        digests = {name: hist.summary() for name, hist in histograms.items()}
        hits = counters.get("cache.hits", 0)
        misses = counters.get("cache.misses", 0)
        lookups = hits + misses
        return {
            "counters": counters,
            "histograms": digests,
            "cache_hit_rate": hits / lookups if lookups else 0.0,
        }

    def render(self) -> str:
        """Human-readable multi-line report (CLI output)."""
        report = self.report()
        lines = ["counters:"]
        for name in sorted(report["counters"]):
            lines.append(f"  {name:<28} {report['counters'][name]}")
        if report["histograms"]:
            lines.append("histograms (ms):")
            for name in sorted(report["histograms"]):
                s = report["histograms"][name]
                lines.append(
                    f"  {name:<28} n={s['count']:<5} mean={s['mean']:.2f} "
                    f"p50={s['p50']:.2f} p95={s['p95']:.2f} p99={s['p99']:.2f}"
                )
        lines.append(f"cache hit rate: {100.0 * report['cache_hit_rate']:.1f}%")
        return "\n".join(lines)
