"""Lightweight runtime observability: counters and latency histograms.

A production batch runtime needs to answer three questions cheaply —
how much work ran, how long it took (with tail percentiles, since a
screening service cares about the p99 a caregiver experiences), and how
often the cache saved a pipeline invocation.  :class:`RuntimeMetrics`
is a small in-process registry answering exactly those; it has no
external dependencies and serializes to a plain dict so benchmarks and
the CLI can dump it as JSON.

All mutation goes through a single lock: the executor's parallel path
records results from the parent process only, but user code may share
one registry across threads.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = ["Histogram", "RuntimeMetrics"]


class Histogram:
    """Sample-keeping latency histogram with percentile summaries.

    Keeps raw observations (batch-screening cardinalities are modest —
    one value per recording or chunk), so percentiles are exact rather
    than bucket-approximated.
    """

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation (e.g. a latency in milliseconds)."""
        self._samples.append(float(value))

    @property
    def count(self) -> int:
        """Number of recorded observations."""
        return len(self._samples)

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return float(sum(self._samples))

    def percentile(self, q: float) -> float:
        """Exact ``q``-th percentile (0-100) of the samples."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.asarray(self._samples), q))

    def summary(self) -> dict[str, float]:
        """Count / mean / p50 / p95 / p99 / max digest of the samples."""
        if not self._samples:
            return {
                "count": 0,
                "mean": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
                "max": 0.0,
            }
        data = np.asarray(self._samples)
        p50, p95, p99 = np.percentile(data, [50.0, 95.0, 99.0])
        return {
            "count": int(data.size),
            "mean": float(data.mean()),
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
            "max": float(data.max()),
        }


class RuntimeMetrics:
    """Registry of named counters and histograms for one batch run.

    Canonical names used by the executor and cache:

    - ``recordings.submitted`` / ``recordings.ok`` / ``recordings.failed``
    - ``recordings.retried`` — extra attempts granted by the retry policy
    - ``pipeline.calls`` — actual DSP invocations (cache misses only)
    - ``cache.hits`` / ``cache.misses``
    - ``cache.corrupt`` — unreadable disk entries evicted (each also a miss)
    - ``executor.serial_fallback`` — parallel run degraded to serial
    - ``executor.timeouts`` — pool tasks that missed their deadline
    - ``executor.worker_failures`` — chunks lost to crashes/injected faults
    - ``executor.chunks_skipped`` — chunks quarantined by an open breaker
    - ``breaker.opened`` — circuit-breaker open transitions
    - ``quality.degraded`` / ``quality.rejected`` — quality-gate verdicts
    - histograms ``recording_ms``, ``stage.bandpass_ms``,
      ``stage.features_ms``, ``batch_ms``
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- counters ------------------------------------------------------

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(amount)

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    # -- histograms ----------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Record one observation in the named histogram."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    def histogram(self, name: str) -> Histogram:
        """The named histogram (created empty on first access)."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            return hist

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager recording the block's wall time in ms."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, (time.perf_counter() - start) * 1e3)

    # -- derived views -------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 with no lookups)."""
        hits = self.counter("cache.hits")
        misses = self.counter("cache.misses")
        total = hits + misses
        return hits / total if total else 0.0

    def report(self) -> dict:
        """Serializable snapshot: counters, histogram digests, rates."""
        with self._lock:
            counters = dict(self._counters)
            histograms = {
                name: hist.summary() for name, hist in self._histograms.items()
            }
        hits = counters.get("cache.hits", 0)
        misses = counters.get("cache.misses", 0)
        lookups = hits + misses
        return {
            "counters": counters,
            "histograms": histograms,
            "cache_hit_rate": hits / lookups if lookups else 0.0,
        }

    def render(self) -> str:
        """Human-readable multi-line report (CLI output)."""
        report = self.report()
        lines = ["counters:"]
        for name in sorted(report["counters"]):
            lines.append(f"  {name:<28} {report['counters'][name]}")
        if report["histograms"]:
            lines.append("histograms (ms):")
            for name in sorted(report["histograms"]):
                s = report["histograms"][name]
                lines.append(
                    f"  {name:<28} n={s['count']:<5} mean={s['mean']:.2f} "
                    f"p50={s['p50']:.2f} p95={s['p95']:.2f} p99={s['p99']:.2f}"
                )
        lines.append(f"cache hit rate: {100.0 * report['cache_hit_rate']:.1f}%")
        return "\n".join(lines)
