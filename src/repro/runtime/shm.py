"""Zero-copy waveform handoff to pool workers via shared memory.

The parallel executor used to pickle every :class:`Recording` into the
pool task — for a 0.5 s capture at 384 kHz that is ~3 MB of waveform
bytes serialized per task, deserialized per worker, and garbage two
stages later.  This module replaces the waveform bytes with a
*descriptor*: the parent copies each chunk's waveforms into one
``multiprocessing.shared_memory`` segment (one block copy), the task
pickles only segment name + offsets + metadata, and the worker maps
the segment and reconstructs the recordings as zero-copy NumPy views.

Protocol (one segment per chunk, refcounted):

1. Parent: :meth:`WaveformArena.share_chunk` creates a segment named
   ``earsonar_shm_<pid>_<n>``, packs the chunk's waveforms, and
   returns pickle-light :class:`SharedRecording` stand-ins.
2. Worker: :func:`materialize_chunk` attaches the segment (once per
   chunk; only the parent owns its lifetime), rebuilds the
   :class:`Recording` objects around buffer views, and — after the
   chunk is processed — :func:`release_attachments` drops the mapping.
3. Parent: :meth:`WaveformArena.release` on chunk completion
   decrements the segment's refcount; at zero the segment is *recycled*
   into a free pool rather than unlinked — its pages are already
   faulted in, so the next chunk's pack runs at memcpy speed instead of
   paying the fresh-``mmap`` page-fault tax again.
   :meth:`WaveformArena.close` unlinks everything (in-use and pooled)
   at batch end so no segment outlives its batch even on error paths.

Degradation: if shared memory is unavailable (no writable ``/dev/shm``)
or segment creation fails mid-batch, the chunk falls back to the
pickled path — one ``shm.fallback`` WARNING event plus a
``shm.fallbacks`` counter, never an error.  After worker crashes the
parent still owns every segment and unlinks it; :func:`cleanup_orphans`
additionally sweeps segments whose owning process is dead (a crashed
*parent*), so ``/dev/shm`` cannot accumulate litter across runs.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from ..obs import names as obs_names
from ..obs.events import EventLevel, current_event_log
from ..simulation.session import Recording
from .metrics import RuntimeMetrics

__all__ = [
    "SEGMENT_PREFIX",
    "SharedWaveform",
    "SharedRecording",
    "WaveformArena",
    "shared_memory_available",
    "materialize_chunk",
    "release_attachments",
    "cleanup_orphans",
]

#: Name prefix of every arena segment: ``earsonar_shm_<pid>_<seq>``.
SEGMENT_PREFIX = "earsonar_shm_"

#: Cached result of the one-time availability probe.
_AVAILABLE: bool | None = None

#: Worker-side attachment cache: segment name -> mapped SharedMemory.
_ATTACHMENTS: dict[str, shared_memory.SharedMemory] = {}


def shared_memory_available() -> bool:
    """Whether a shared-memory segment can be created on this host.

    Probes once per process (create, write, read back, unlink a tiny
    segment) and caches the verdict.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            probe = shared_memory.SharedMemory(create=True, size=8)
            probe.buf[:2] = b"ok"
            ok = bytes(probe.buf[:2]) == b"ok"
            probe.close()
            probe.unlink()
            _AVAILABLE = ok  # qa: ignore[QA009]  one-shot probe cache
        except (OSError, ValueError):
            _AVAILABLE = False  # qa: ignore[QA009]  one-shot probe cache
    return _AVAILABLE


@dataclass(frozen=True)
class SharedWaveform:
    """Location of one waveform inside an arena segment."""

    segment: str
    offset_bytes: int
    num_samples: int
    dtype: str


@dataclass(frozen=True)
class SharedRecording:
    """A :class:`Recording` whose waveform travels by reference.

    ``template`` is the original recording with its waveform replaced
    by an empty array, so every metadata field (participant, day,
    state, session config, fill fraction) pickles exactly once and
    exactly as before; only the bulk samples moved out of band.
    """

    template: Recording
    waveform: SharedWaveform

    def materialize(self, segment: shared_memory.SharedMemory) -> Recording:
        """Rebuild the recording as a zero-copy view into ``segment``."""
        location = self.waveform
        view: np.ndarray = np.ndarray(
            (location.num_samples,),
            dtype=np.dtype(location.dtype),
            buffer=segment.buf,
            offset=location.offset_bytes,
        )
        view.flags.writeable = False
        return replace(self.template, waveform=view)


class WaveformArena:
    """Parent-side owner of a batch's shared-memory segments.

    One arena per :meth:`BatchExecutor.run` call; segments are created
    per chunk, refcounted, recycled through a warm-page free pool, and
    unconditionally unlinked by :meth:`close` so the arena can never
    leak past its batch.
    """

    def __init__(self, metrics: RuntimeMetrics) -> None:
        self._metrics = metrics
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._refs: dict[str, int] = {}
        self._free: list[shared_memory.SharedMemory] = []
        self._sequence = 0

    def share_chunk(
        self, chunk: list[Recording]
    ) -> tuple[list[Recording] | list[SharedRecording], str | None]:
        """Pack one chunk's waveforms into a (possibly recycled) segment.

        Returns ``(payload, segment_name)``; on any shared-memory
        failure the payload is the original chunk and the name is
        ``None`` — the caller dispatches the pickled path and releases
        nothing.
        """
        start = time.perf_counter()
        total_bytes = sum(int(rec.waveform.nbytes) for rec in chunk)
        if total_bytes == 0:
            return chunk, None
        segment = self._take_free(total_bytes)
        if segment is None:
            name = f"{SEGMENT_PREFIX}{os.getpid()}_{self._sequence}"
            try:
                segment = shared_memory.SharedMemory(
                    create=True, size=total_bytes, name=name
                )
            except (OSError, ValueError) as error:
                self._metrics.increment(obs_names.METRIC_SHM_FALLBACKS)
                current_event_log().emit(
                    obs_names.EVENT_SHM_FALLBACK,
                    level=EventLevel.WARNING,
                    reason=f"{type(error).__name__}: {error}",
                )
                return chunk, None
            self._sequence += 1
            self._metrics.increment(obs_names.METRIC_SHM_SEGMENTS_CREATED)
        name = segment.name
        offset = 0
        shared: list[SharedRecording] = []
        empty = np.empty(0)
        for rec in chunk:
            waveform = np.ascontiguousarray(rec.waveform)
            nbytes = int(waveform.nbytes)
            target: np.ndarray = np.ndarray(
                waveform.shape, dtype=waveform.dtype, buffer=segment.buf, offset=offset
            )
            target[:] = waveform
            shared.append(
                SharedRecording(
                    template=replace(rec, waveform=empty),
                    waveform=SharedWaveform(
                        segment=name,
                        offset_bytes=offset,
                        num_samples=int(waveform.size),
                        dtype=waveform.dtype.str,
                    ),
                )
            )
            offset += nbytes
        del target
        self._segments[name] = segment
        self._refs[name] = 1
        self._metrics.increment(obs_names.METRIC_SHM_BYTES_SAVED, total_bytes)
        self._metrics.observe(
            obs_names.HIST_SHM_HANDOFF_MS, (time.perf_counter() - start) * 1e3
        )
        return shared, name

    def _take_free(self, total_bytes: int) -> shared_memory.SharedMemory | None:
        """Pop a recycled segment large enough for ``total_bytes``."""
        for i, segment in enumerate(self._free):
            if segment.size >= total_bytes:
                return self._free.pop(i)
        return None

    def release(self, name: str | None) -> None:
        """Drop one reference to ``name``; recycle when none remain.

        At refcount zero the segment moves to the arena's free pool for
        the next :meth:`share_chunk` instead of being unlinked — it is
        only truly destroyed (and counted in ``shm.segments_released``)
        by :meth:`close`.
        """
        if name is None or name not in self._refs:
            return
        self._refs[name] -= 1
        if self._refs[name] > 0:
            return
        del self._refs[name]
        self._free.append(self._segments.pop(name))

    def close(self) -> None:
        """Unlink every segment — in use or pooled (batch teardown)."""
        for name in list(self._segments):
            self._free.append(self._segments.pop(name))
            self._refs.pop(name, None)
        for segment in self._free:
            try:
                segment.close()
                segment.unlink()
            except (OSError, BufferError):
                pass
            self._metrics.increment(obs_names.METRIC_SHM_SEGMENTS_RELEASED)
        self._free.clear()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Worker-side segment attach, cached per worker process.

    Pool workers share the parent's resource-tracker process, whose
    cache is a *set* of names: the attach here re-adds the name the
    parent's create already registered (idempotent), and the parent's
    ``unlink`` removes it exactly once.  Explicitly unregistering here
    would clobber the parent's registration and make that unlink warn —
    so the worker deliberately leaves the tracker alone.
    """
    segment = _ATTACHMENTS.get(name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=name)
        _ATTACHMENTS[name] = segment
    return segment


def materialize_chunk(
    chunk: list[Recording] | list[SharedRecording],
) -> list[Recording]:
    """Worker-side reconstruction of a chunk's recordings.

    Plain recordings (the pickled fallback path) pass through
    untouched; shared ones become zero-copy views into the mapped
    segment.  Callers must drop every returned recording before
    :func:`release_attachments`.
    """
    out: list[Recording] = []
    for item in chunk:
        if isinstance(item, SharedRecording):
            out.append(item.materialize(_attach(item.waveform.segment)))
        else:
            out.append(item)
    return out


def release_attachments() -> None:
    """Unmap every segment this worker attached for the last chunk.

    A mapping with live buffer exports cannot be closed (``BufferError``)
    — that means a recording view outlived its chunk; the mapping is
    kept (and retried after the next chunk) rather than crashing the
    worker.
    """
    for name in list(_ATTACHMENTS):
        segment = _ATTACHMENTS[name]
        try:
            segment.close()
        except BufferError:
            continue  # a view still references the buffer; retry later
        except OSError:
            pass  # already unmapped
        del _ATTACHMENTS[name]


def cleanup_orphans(metrics: RuntimeMetrics | None = None) -> int:
    """Unlink arena segments whose owning process is dead.

    Scans ``/dev/shm`` for :data:`SEGMENT_PREFIX` names, parses the
    owner pid out of each, and unlinks segments belonging to dead
    processes.  Returns the number reclaimed (0 where ``/dev/shm``
    does not exist — other platforms keep segments elsewhere and the
    arena's own lifecycle already prevents leaks there).
    """
    root = Path("/dev/shm")
    if not root.is_dir():
        return 0
    reclaimed = 0
    for path in sorted(root.glob(f"{SEGMENT_PREFIX}*")):
        parts = path.name[len(SEGMENT_PREFIX):].split("_")
        try:
            owner = int(parts[0])
        except (ValueError, IndexError):
            continue
        if owner == os.getpid() or _pid_alive(owner):
            continue
        try:
            stale = shared_memory.SharedMemory(name=path.name)
            stale.close()
            stale.unlink()
        except (OSError, ValueError):
            continue
        reclaimed += 1
    if reclaimed and metrics is not None:
        metrics.increment(obs_names.METRIC_SHM_ORPHANS_CLEANED, reclaimed)
    return reclaimed


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` is a live process (EPERM counts as alive)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
