"""``repro.serve`` — the online screening service over the batch runtime.

The offline stack processes whole studies; this package turns the same
:class:`~repro.runtime.executor.BatchExecutor` into a long-lived,
multi-tenant ingestion service:

- :mod:`~repro.serve.clock` — the injectable time source
  (:class:`MonotonicClock` in production, :class:`VirtualClock` in
  tests) behind every deadline and latency measurement;
- :mod:`~repro.serve.queue` — bounded admission with typed
  backpressure (:class:`~repro.errors.AdmissionRejected`);
- :mod:`~repro.serve.limiter` — per-tenant token buckets and weighted
  round-robin dequeue;
- :mod:`~repro.serve.batcher` — deadline/size micro-batching;
- :mod:`~repro.serve.controller` — SLO-driven worker-pool sizing from
  observed batch latencies;
- :mod:`~repro.serve.shards` — the sharded, compacting, multi-process
  safe feature-cache tier;
- :mod:`~repro.serve.service` — :class:`ScreeningService`, tying the
  above together;
- ``python -m repro.serve`` — a JSONL serving front end and a seeded
  load generator (see :mod:`repro.serve.__main__`).

Quick use::

    service = ScreeningService(executor, fast_reject=QualityConfig())
    await service.start()
    response = await service.submit(
        ScreeningRequest("req-1", "clinic-a", recording)
    )
    await service.stop()
"""

from .batcher import BatchPolicy, MicroBatcher
from .clock import Clock, MonotonicClock, VirtualClock, wait_for_event
from .controller import ControllerPolicy, LatencyController
from .limiter import TenancyConfig, TenantPolicy, TenantScheduler, TokenBucket
from .queue import AdmissionController, AdmissionPolicy, PendingRequest, ScreeningRequest
from .service import ScreeningResponse, ScreeningService
from .shards import CompactionReport, FileLock, ShardedFeatureCache, shard_index

__all__ = [
    "Clock",
    "MonotonicClock",
    "VirtualClock",
    "wait_for_event",
    "AdmissionPolicy",
    "AdmissionController",
    "ScreeningRequest",
    "PendingRequest",
    "TenantPolicy",
    "TenancyConfig",
    "TokenBucket",
    "TenantScheduler",
    "BatchPolicy",
    "MicroBatcher",
    "ControllerPolicy",
    "LatencyController",
    "FileLock",
    "shard_index",
    "CompactionReport",
    "ShardedFeatureCache",
    "ScreeningResponse",
    "ScreeningService",
]
