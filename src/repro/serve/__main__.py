"""Serving front end and load generator for ``repro.serve``.

Two subcommands::

    # Screen request specs from stdin (JSONL), one response line each:
    echo '{"tenant": "clinic-a", "seed": 7, "day": 0.5}' \\
        | python -m repro.serve serve

    # Watch a spool directory instead of stdin:
    python -m repro.serve serve --watch /tmp/earsonar-spool --max-files 10

    # Seeded synthetic load (open-loop arrivals, tenant mix) with a
    # latency/throughput report:
    python -m repro.serve loadgen --requests 48 --tenants 3 --rate 200 \\
        --report report.json
    python -m repro.serve loadgen --chaos --workers 2   # injected faults

The load generator runs on a :class:`~repro.serve.clock.VirtualClock`
by default — the full arrival schedule, batching, backpressure, and
fairness play out deterministically in simulated time, so CI soak runs
are reproducible and fast; ``--real-clock`` switches to wall time for
measuring actual service latencies.  Recordings are synthesized from
the seeded simulation layer; every stochastic choice flows from
``--seed``.

The report counts every request exactly once: ``responded`` (answered
with a screening outcome, processed or quarantined), ``rejected``
(typed admission backpressure, by reason), and ``lost`` (neither — the
invariant the soak job asserts is ``lost == 0``).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import dataclasses
import json
import sys
from pathlib import Path
from typing import Callable

import numpy as np

from ..core.pipeline import EarSonarPipeline
from ..errors import AdmissionRejected, EarSonarError, ServiceError
from ..obs import names as obs_names
from ..obs.health import (
    DEFAULT_SERIES,
    DEFAULT_SLOS,
    HealthConfig,
    HealthMonitor,
    use_health,
)
from ..quality import QualityConfig
from ..runtime.cache import FeatureCache
from ..runtime.chaos import FaultInjector
from ..runtime.executor import BatchExecutor
from ..runtime.metrics import RuntimeMetrics
from ..simulation.participant import sample_participant
from ..simulation.session import Recording, SessionConfig, record_session
from .batcher import BatchPolicy
from .clock import Clock, MonotonicClock, VirtualClock
from .controller import ControllerPolicy
from .limiter import TenancyConfig, TenantPolicy
from .queue import AdmissionPolicy, ScreeningRequest
from .service import ScreeningResponse, ScreeningService
from .shards import ShardedFeatureCache


def _synthesize(
    seed: int, day: float, duration_s: float, participant_id: str | None = None
) -> Recording:
    """One seeded recording: participant anatomy and capture from ``seed``."""
    rng = np.random.default_rng(seed)
    participant = sample_participant(rng, participant_id or f"P{seed % 1000:03d}")
    return record_session(
        participant, day, SessionConfig(duration_s=duration_s), rng
    )


def _build_health(
    args: argparse.Namespace, clock: Clock
) -> tuple[HealthMonitor | None, Callable[[dict], None] | None]:
    """Fleet-health monitor + snapshot sink from the CLI flags.

    Returns ``(None, None)`` unless ``--health-interval-s`` opted in,
    keeping the default serve/loadgen paths on the null monitor and
    bit-identical to a health-free build.
    """
    if args.health_interval_s is None:
        return None, None
    slos = []
    for slo in DEFAULT_SLOS:
        if (
            slo.objective == obs_names.SLO_LATENCY
            and args.slo_latency_ms is not None
        ):
            slo = dataclasses.replace(slo, threshold_ms=args.slo_latency_ms)
        slos.append(slo)
    series = DEFAULT_SERIES
    if isinstance(clock, VirtualClock):
        # Stage latencies are wall-clock measurements; dropping that
        # series keeps virtual-clock trajectories bit-identical across
        # replays.  Every other series is a function of the seed.
        series = tuple(
            spec for spec in series if spec.name != obs_names.HEALTH_RECORDING_MS
        )
    monitor = HealthMonitor(
        HealthConfig(series=series, slos=tuple(slos)), now=clock.now
    )
    sink = None
    if args.health_out is not None:
        out = Path(args.health_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text("")  # truncate: one trajectory per run

        def sink(snapshot: dict) -> None:
            with open(out, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(snapshot, sort_keys=True) + "\n")

    return monitor, sink


def _build_service(
    args: argparse.Namespace,
    clock: Clock,
    health_sink: Callable[[dict], None] | None = None,
) -> ScreeningService:
    """Executor + service wired from the shared CLI flags."""
    metrics = RuntimeMetrics()
    workers = args.workers
    fault_injector = None
    if getattr(args, "chaos", False):
        # Injected faults arm only in the pool path; force it on.
        workers = max(2, workers)
        fault_injector = FaultInjector(mode="error", indices=(0,))
    cache: FeatureCache | ShardedFeatureCache
    if args.cache_dir is not None:
        cache = ShardedFeatureCache(args.cache_dir, num_shards=args.shards)
    else:
        cache = FeatureCache()
    executor = BatchExecutor(
        EarSonarPipeline(),
        workers=workers,
        cache=cache,
        metrics=metrics,
        fault_injector=fault_injector,
    )
    controller = None
    if args.target_p95_ms is not None:
        controller = ControllerPolicy(
            target_p95_ms=args.target_p95_ms,
            min_workers=1,
            max_workers=max(workers, args.max_workers),
        )
    tenancy = TenancyConfig(
        default=TenantPolicy(rate_per_s=args.tenant_rate, burst=args.tenant_burst)
        if args.tenant_rate is not None
        else TenantPolicy()
    )
    return ScreeningService(
        executor,
        clock=clock,
        admission=AdmissionPolicy(
            max_queue_depth=args.max_queue_depth,
            shed_wait_ms=args.shed_wait_ms,
        ),
        tenancy=tenancy,
        batching=BatchPolicy(
            max_batch_size=args.max_batch_size,
            max_delay_s=args.max_delay_ms / 1e3,
        ),
        controller=controller,
        fast_reject=QualityConfig() if args.fast_reject else None,
        health_interval_s=args.health_interval_s,
        health_sink=health_sink,
    )


def _response_line(response: ScreeningResponse) -> dict:
    """JSON-safe summary of one service response."""
    line = {
        "request_id": response.request_id,
        "tenant": response.tenant,
        "verdict": response.verdict,
        "ok": response.ok,
        "batch": response.batch,
        "queue_ms": round(response.queue_ms, 3),
        "batch_ms": round(response.batch_ms, 3),
    }
    if response.ok:
        line["confidence"] = round(float(response.confidence or 0.0), 4)
    else:
        line["error"] = response.outcome.reason  # type: ignore[union-attr]
    return line


# ---------------------------------------------------------------------------
# serve: JSONL stdin / directory watcher
# ---------------------------------------------------------------------------


def _request_from_spec(spec: dict, index: int, duration_s: float) -> ScreeningRequest:
    recording = _synthesize(
        int(spec.get("seed", index)),
        float(spec.get("day", 0.5)),
        float(spec.get("duration_s", duration_s)),
        spec.get("participant_id"),
    )
    return ScreeningRequest(
        request_id=str(spec.get("request_id", f"req-{index:05d}")),
        tenant=str(spec.get("tenant", "default")),
        recording=recording,
    )


async def _serve_stdin(service: ScreeningService, args: argparse.Namespace) -> int:
    await service.start()
    failures = 0
    try:
        for index, line in enumerate(sys.stdin):
            line = line.strip()
            if not line:
                continue
            try:
                spec = json.loads(line)
                request = _request_from_spec(spec, index, args.duration)
                # Service submission, not pool dispatch.
                response = await service.submit(request)  # qa: ignore[QA003]
                print(json.dumps(_response_line(response)))
            except (json.JSONDecodeError, EarSonarError) as exc:
                failures += 1
                print(
                    json.dumps(
                        {"error": type(exc).__name__, "message": str(exc)}
                    )
                )
    finally:
        await service.stop()
    return 1 if failures else 0


async def _serve_watch(service: ScreeningService, args: argparse.Namespace) -> int:
    """Poll a spool directory: one JSON spec per file, result alongside."""
    spool = Path(args.watch)
    spool.mkdir(parents=True, exist_ok=True)
    await service.start()
    handled = 0
    try:
        while args.max_files is None or handled < args.max_files:
            pending = sorted(spool.glob("*.json"))
            pending = [p for p in pending if not p.name.endswith(".result.json")]
            if not pending:
                await service.clock.sleep(args.poll_s)
                continue
            for path in pending:
                try:
                    spec = json.loads(path.read_text())
                    request = _request_from_spec(spec, handled, args.duration)
                    # Service submission, not pool dispatch.
                    response = await service.submit(request)  # qa: ignore[QA003]
                    line = _response_line(response)
                except (json.JSONDecodeError, EarSonarError) as exc:
                    line = {"error": type(exc).__name__, "message": str(exc)}
                path.with_suffix(".result.json").write_text(json.dumps(line))
                path.unlink(missing_ok=True)
                handled += 1
                if args.max_files is not None and handled >= args.max_files:
                    break
    finally:
        await service.stop()
    return 0


# ---------------------------------------------------------------------------
# loadgen: seeded open-loop synthetic traffic
# ---------------------------------------------------------------------------


async def _run_loadgen(args: argparse.Namespace) -> dict:
    clock: Clock = MonotonicClock() if args.real_clock else VirtualClock()
    health, file_sink = _build_health(args, clock)
    snapshots_written = 0
    health_sink: Callable[[dict], None] | None = None
    if health is not None:

        def health_sink(snapshot: dict) -> None:
            nonlocal snapshots_written
            snapshots_written += 1
            if file_sink is not None:
                file_sink(snapshot)

    service = _build_service(args, clock, health_sink)
    rng = np.random.default_rng(args.seed)

    # A small pool of distinct synthesized captures, reused across
    # requests so loadgen cost is dominated by serving, not synthesis.
    pool = [
        _synthesize(args.seed + i, float(rng.uniform(0.0, 20.0)), args.duration)
        for i in range(args.pool)
    ]
    tenants = [f"tenant-{i}" for i in range(args.tenants)]

    # Open-loop schedule: exponential inter-arrivals at --rate req/s,
    # tenant and capture drawn per request — all from the one seed.
    offsets: list[float] = []
    at = 0.0
    for _ in range(args.requests):
        at += float(rng.exponential(1.0 / args.rate))
        offsets.append(at)
    choices = [
        (str(rng.choice(tenants)), int(rng.integers(0, len(pool))))
        for _ in range(args.requests)
    ]

    responded: list[ScreeningResponse] = []
    latencies_ms: list[float] = []
    rejected: dict[str, int] = {}
    per_tenant: dict[str, dict[str, int]] = {
        tenant: {"submitted": 0, "responded": 0, "rejected": 0} for tenant in tenants
    }

    async def one(index: int) -> None:
        await clock.sleep(offsets[index])
        tenant, pick = choices[index]
        per_tenant[tenant]["submitted"] += 1
        started = clock.now()
        try:
            response = await service.submit(
                ScreeningRequest(f"req-{index:05d}", tenant, pool[pick])
            )
        except AdmissionRejected as rejection:
            rejected[rejection.reason] = rejected.get(rejection.reason, 0) + 1
            per_tenant[tenant]["rejected"] += 1
            return
        except ServiceError:
            rejected["shutdown"] = rejected.get("shutdown", 0) + 1
            per_tenant[tenant]["rejected"] += 1
            return
        responded.append(response)
        latencies_ms.append((clock.now() - started) * 1e3)
        per_tenant[tenant]["responded"] += 1

    # The monitor must be ambient before the dispatch task and the
    # request tasks are created (each task snapshots the contextvars).
    health_scope = (
        use_health(health) if health is not None else contextlib.nullcontext()
    )
    with health_scope:
        await service.start()
        tasks = [asyncio.ensure_future(one(i)) for i in range(args.requests)]
        if isinstance(clock, VirtualClock):
            horizon = offsets[-1] + 60.0
            step = max(args.max_delay_ms / 1e3, 1.0 / args.rate)
            await clock.advance_until(
                lambda: all(task.done() for task in tasks),
                step=step,
                max_steps=int(horizon / step) + 10_000,
            )
        await asyncio.gather(*tasks)
        await service.stop()
        if health is not None and args.health_prom is not None:
            prom = Path(args.health_prom)
            prom.parent.mkdir(parents=True, exist_ok=True)
            prom.write_text(health.prometheus(clock.now()))

    total_rejected = sum(rejected.values())
    lost = args.requests - len(responded) - total_rejected
    answerable = args.requests - total_rejected
    quarantined = sum(1 for r in responded if not r.ok)
    latency = {}
    if latencies_ms:
        data = np.asarray(latencies_ms)
        latency = {
            "p50": float(np.percentile(data, 50.0)),
            "p95": float(np.percentile(data, 95.0)),
            "p99": float(np.percentile(data, 99.0)),
            "max": float(data.max()),
        }
    metrics = service.metrics.report()
    report: dict = {}
    if health is not None:
        report["health"] = {
            "snapshots": snapshots_written,
            "alerts_active": health.active_alerts(),
            "transitions": health.transitions,
        }
    return report | {
        "clock": "real" if args.real_clock else "virtual",
        "seed": args.seed,
        "requests": args.requests,
        "responded": len(responded),
        "ok": len(responded) - quarantined,
        "quarantined": quarantined,
        "rejected": rejected,
        "lost": lost,
        "completion_rate": (len(responded) / answerable) if answerable else 1.0,
        "latency_ms": latency,
        "per_tenant": per_tenant,
        "workers_final": service.workers,
        "pool_resizes": metrics["counters"].get("serve.pool_resizes", 0),
        "batches": metrics["counters"].get("serve.batches.dispatched", 0),
        "counters": metrics["counters"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Online screening service front end and load generator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _shared(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--workers", type=int, default=1, help="worker processes")
        cmd.add_argument(
            "--max-workers", type=int, default=4, help="controller ceiling"
        )
        cmd.add_argument(
            "--max-batch-size", type=int, default=8, help="micro-batch size cap"
        )
        cmd.add_argument(
            "--max-delay-ms",
            type=float,
            default=50.0,
            help="micro-batch coalescing deadline",
        )
        cmd.add_argument(
            "--max-queue-depth", type=int, default=256, help="admission queue cap"
        )
        cmd.add_argument(
            "--shed-wait-ms",
            type=float,
            default=None,
            help="SLO headroom: shed when estimated wait exceeds this",
        )
        cmd.add_argument(
            "--tenant-rate",
            type=float,
            default=None,
            help="per-tenant sustained admission rate (req/s)",
        )
        cmd.add_argument(
            "--tenant-burst", type=float, default=8.0, help="per-tenant burst size"
        )
        cmd.add_argument(
            "--target-p95-ms",
            type=float,
            default=None,
            help="enable the latency controller with this p95 budget",
        )
        cmd.add_argument(
            "--fast-reject",
            action="store_true",
            help="run the quality gate before admission",
        )
        cmd.add_argument(
            "--cache-dir", default=None, help="sharded feature-cache directory"
        )
        cmd.add_argument("--shards", type=int, default=8, help="cache shard count")
        cmd.add_argument(
            "--duration",
            type=float,
            default=0.1,
            help="synthesized recording length in seconds",
        )
        cmd.add_argument(
            "--health-interval-s",
            type=float,
            default=None,
            help="enable fleet-health monitoring; snapshot at most once "
            "per this many (virtual) seconds between batches",
        )
        cmd.add_argument(
            "--health-out",
            default=None,
            help="append each full health snapshot to this JSONL file "
            "(render with: python -m repro.obs health <file>)",
        )
        cmd.add_argument(
            "--health-prom",
            default=None,
            help="write a final Prometheus textfile of the health rollups",
        )
        cmd.add_argument(
            "--slo-latency-ms",
            type=float,
            default=None,
            help="override the latency SLO threshold (default 30000 ms)",
        )

    serve_cmd = sub.add_parser("serve", help="answer screening requests")
    _shared(serve_cmd)
    serve_cmd.add_argument(
        "--watch",
        default=None,
        help="poll this spool directory for *.json request specs "
        "(default: read JSONL specs from stdin)",
    )
    serve_cmd.add_argument(
        "--poll-s", type=float, default=0.2, help="spool poll interval"
    )
    serve_cmd.add_argument(
        "--max-files",
        type=int,
        default=None,
        help="stop after handling this many spool files",
    )

    load_cmd = sub.add_parser("loadgen", help="seeded synthetic load")
    _shared(load_cmd)
    load_cmd.add_argument("--requests", type=int, default=48, help="request count")
    load_cmd.add_argument("--tenants", type=int, default=3, help="tenant count")
    load_cmd.add_argument(
        "--rate", type=float, default=200.0, help="aggregate arrival rate (req/s)"
    )
    load_cmd.add_argument("--seed", type=int, default=2023, help="loadgen seed")
    load_cmd.add_argument(
        "--pool", type=int, default=8, help="distinct synthesized captures"
    )
    load_cmd.add_argument(
        "--chaos",
        action="store_true",
        help="inject worker faults (error mode, first index of each batch)",
    )
    load_cmd.add_argument(
        "--real-clock",
        action="store_true",
        help="run on wall time instead of the deterministic virtual clock",
    )
    load_cmd.add_argument(
        "--report", default=None, help="write the JSON report to this path"
    )
    load_cmd.add_argument(
        "--min-completion",
        type=float,
        default=0.99,
        help="fail (exit 1) below this completion rate",
    )

    args = parser.parse_args(argv)

    if args.command == "serve":
        clock = MonotonicClock()
        health, health_sink = _build_health(args, clock)
        service = _build_service(args, clock, health_sink)
        scope = use_health(health) if health is not None else contextlib.nullcontext()
        with scope:
            if args.watch is not None:
                return asyncio.run(_serve_watch(service, args))
            return asyncio.run(_serve_stdin(service, args))

    report = asyncio.run(_run_loadgen(args))
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.report is not None:
        Path(args.report).parent.mkdir(parents=True, exist_ok=True)
        Path(args.report).write_text(rendered + "\n")
    print(rendered)
    if report["lost"] > 0:
        print(f"FAIL: {report['lost']} requests lost", file=sys.stderr)
        return 1
    if report["completion_rate"] < args.min_completion:
        print(
            f"FAIL: completion rate {report['completion_rate']:.3f} < "
            f"{args.min_completion}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
