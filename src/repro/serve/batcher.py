"""Deadline/size micro-batching over the tenant scheduler.

The batch executor amortizes pool dispatch and plan-cache reuse over
many recordings, so the service never feeds it single requests when
traffic allows better.  :class:`MicroBatcher` implements the standard
micro-batching policy:

- dispatch as soon as ``max_batch_size`` requests are collected, or
- when the oldest collected request has waited ``max_delay_s``,
  whichever comes first.

Under load the batcher runs full batches back to back (throughput
mode); at low rates a lone request pays at most ``max_delay_s`` of
batching latency (latency mode).  The deadline is measured on the
injected clock, so both modes are exactly simulatable.

Requests are pulled from the :class:`~repro.serve.limiter.TenantScheduler`
in weighted round-robin order, which is where per-tenant fairness
becomes per-*batch* composition: a backlogged tenant fills at most its
weighted share of each batch while any other tenant has work queued.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from ..errors import ConfigurationError
from .clock import Clock, wait_for_event
from .limiter import TenantScheduler
from .queue import PendingRequest

__all__ = ["BatchPolicy", "MicroBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """Micro-batch coalescing policy.

    Attributes
    ----------
    max_batch_size:
        Dispatch immediately once this many requests are collected.
    max_delay_s:
        Longest a collected request may wait for co-travellers before
        a partial batch is dispatched anyway.
    """

    max_batch_size: int = 8
    max_delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_delay_s < 0:
            raise ConfigurationError(
                f"max_delay_s must be >= 0, got {self.max_delay_s}"
            )


class MicroBatcher:
    """Collects queued requests into deadline/size-bounded batches."""

    def __init__(
        self, scheduler: TenantScheduler, policy: BatchPolicy, clock: Clock
    ) -> None:
        self.policy = policy
        self._scheduler = scheduler
        self._clock = clock
        self._wake = asyncio.Event()
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    def notify(self) -> None:
        """Signal that new work was enqueued (wakes a waiting collect)."""
        self._wake.set()

    def close(self) -> None:
        """Stop batching: pending collects drain and then return None."""
        self._closed = True
        self._wake.set()

    async def collect(self) -> list[PendingRequest] | None:
        """The next micro-batch, or ``None`` when closed and drained.

        Blocks (on the clock) until at least one request is available,
        then applies the size/deadline policy.  After :meth:`close`,
        whatever is queued is returned immediately — partial batches
        included — so shutdown never strands admitted work.
        """
        while self._scheduler.depth == 0:
            if self._closed:
                return None
            self._wake.clear()
            await wait_for_event(self._clock, self._wake, None)

        deadline = self._clock.now() + self.policy.max_delay_s
        batch: list[PendingRequest] = []
        while len(batch) < self.policy.max_batch_size:
            item = self._scheduler.dequeue()
            if item is not None:
                batch.append(item)
                continue
            if self._closed:
                break
            remaining = deadline - self._clock.now()
            if remaining <= 0:
                break
            self._wake.clear()
            await wait_for_event(self._clock, self._wake, remaining)
        return batch
