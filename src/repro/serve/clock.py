"""Deterministic time: the single clock boundary of :mod:`repro.serve`.

Everything time-shaped in the online service — batching deadlines,
token-bucket refill, admission retry-after estimates, latency
measurement — flows through one :class:`Clock` object, never through
``time``/``asyncio`` directly.  That buys the property the whole
serving test suite is built on: with a :class:`VirtualClock` the entire
service (queues, batcher, limiter, controller) is simulatable — a
thousand seconds of traffic run in milliseconds of wall time, in a
deterministic order, with no real sleeps anywhere.

This module is the *only* place in the package allowed to touch
``time.monotonic`` / ``asyncio.sleep`` (the QA001 lint extension
enforces exactly that); production code gets a :class:`MonotonicClock`,
tests get a :class:`VirtualClock` they advance by hand.

``asyncio.sleep(0)`` appears here deliberately: it is a pure
cooperative yield (control returns on the next loop iteration, no
timer involved), which is how :meth:`VirtualClock.advance` lets woken
tasks run between virtual-time steps without consuming wall time.
"""

from __future__ import annotations

import asyncio
import contextlib
import heapq
import time
from typing import Awaitable, Callable, Protocol, runtime_checkable

__all__ = [
    "Clock",
    "MonotonicClock",
    "VirtualClock",
    "wait_for_event",
]


@runtime_checkable
class Clock(Protocol):
    """What the service needs from time: a position and a delay."""

    def now(self) -> float:
        """Current time in seconds on this clock's (monotonic) axis."""
        ...

    async def sleep(self, delay: float) -> None:
        """Suspend the calling task for ``delay`` seconds of clock time."""
        ...


class MonotonicClock:
    """Real time for production serving, on the monotonic axis.

    ``time.monotonic`` (never ``time.time``) so the service is immune
    to NTP steps and wall-clock adjustments; consistent with QA001's
    determinism stance, no code path ever reads calendar time.
    """

    def now(self) -> float:
        """Seconds from an arbitrary monotonic epoch."""
        return time.monotonic()

    async def sleep(self, delay: float) -> None:
        """Real cooperative sleep (clamped at zero)."""
        await asyncio.sleep(max(0.0, delay))


class VirtualClock:
    """Simulated time that only moves when a test advances it.

    Sleeping tasks park on a deadline heap; :meth:`advance` moves time
    forward, waking sleepers *in deadline order* and yielding to the
    event loop between wakes so a woken task can run — and register a
    new, earlier sleep — before later deadlines fire.  This makes the
    service's interleavings a pure function of the submitted work and
    the advance schedule, never of host scheduling.

    :meth:`tick` is the synchronous variant for use *inside* otherwise
    synchronous code (e.g. a stub batch runner modelling "this batch
    took 80 ms"): it moves time and resolves due sleepers but lets
    their coroutines run at the caller's next await point.
    """

    def __init__(self, start: float = 0.0, settle_rounds: int = 32) -> None:
        if settle_rounds < 1:
            raise ValueError(f"settle_rounds must be >= 1, got {settle_rounds}")
        self._now = float(start)
        self._seq = 0
        self._sleepers: list[tuple[float, int, asyncio.Future]] = []
        self._settle_rounds = settle_rounds

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    async def sleep(self, delay: float) -> None:
        """Park until virtual time passes ``now() + delay``."""
        if delay <= 0:
            await asyncio.sleep(0)
            return
        future = asyncio.get_running_loop().create_future()
        self._seq += 1
        heapq.heappush(self._sleepers, (self._now + delay, self._seq, future))
        await future

    @property
    def pending_sleepers(self) -> int:
        """Number of tasks currently parked on the deadline heap."""
        return sum(1 for _, _, future in self._sleepers if not future.done())

    def tick(self, dt: float) -> None:
        """Synchronously move time forward by ``dt`` seconds.

        Due sleepers are resolved immediately but their coroutines do
        not run until control next returns to the event loop.
        """
        if dt < 0:
            raise ValueError(f"cannot move time backwards (dt={dt})")
        target = self._now + dt
        while self._sleepers and self._sleepers[0][0] <= target:
            deadline, _, future = heapq.heappop(self._sleepers)
            self._now = max(self._now, deadline)
            if not future.done():
                future.set_result(None)
        self._now = target

    async def settle(self) -> None:
        """Yield to the event loop until ready task chains have run."""
        for _ in range(self._settle_rounds):
            await asyncio.sleep(0)

    async def advance(self, dt: float) -> None:
        """Move time forward ``dt`` seconds, running tasks as they wake.

        Sleepers are woken one deadline at a time with a :meth:`settle`
        between wakes, so a task woken mid-window can schedule an
        earlier follow-up sleep and still be honoured within this same
        ``advance`` call.
        """
        if dt < 0:
            raise ValueError(f"cannot move time backwards (dt={dt})")
        target = self._now + dt
        await self.settle()
        while self._sleepers and self._sleepers[0][0] <= target:
            deadline, _, future = heapq.heappop(self._sleepers)
            self._now = max(self._now, deadline)
            if not future.done():
                future.set_result(None)
            await self.settle()
        self._now = target
        await self.settle()

    async def advance_until(
        self,
        predicate: Callable[[], bool],
        *,
        step: float = 0.01,
        max_steps: int = 10_000,
    ) -> float:
        """Advance in ``step`` increments until ``predicate()`` is true.

        Returns the virtual time at which the predicate first held.
        Raises ``TimeoutError`` after ``max_steps`` — the virtual
        analogue of a hung-test watchdog.
        """
        await self.settle()
        for _ in range(max_steps):
            if predicate():
                return self._now
            await self.advance(step)
        raise TimeoutError(
            f"predicate still false after {max_steps} virtual steps "
            f"({max_steps * step:.3f}s simulated)"
        )


async def wait_for_event(
    clock: Clock, event: asyncio.Event, timeout: float | None
) -> bool:
    """Wait for ``event`` or a clock-driven timeout, whichever first.

    The clock-portable replacement for ``asyncio.wait_for``: timeouts
    are measured on ``clock``, so under a :class:`VirtualClock` they
    fire exactly when a test advances past them.  Returns ``True`` if
    the event was set, ``False`` on timeout.
    """
    if event.is_set():
        return True
    if timeout is not None and timeout <= 0:
        return False
    waiter = asyncio.ensure_future(event.wait())
    races: list[Awaitable] = [waiter]
    sleeper: asyncio.Future | None = None
    if timeout is not None:
        sleeper = asyncio.ensure_future(clock.sleep(timeout))
        races.append(sleeper)
    try:
        done, _ = await asyncio.wait(races, return_when=asyncio.FIRST_COMPLETED)
    finally:
        for task in (waiter, sleeper):
            if task is not None and not task.done():
                task.cancel()
    for task in (waiter, sleeper):
        if task is not None:
            with contextlib.suppress(asyncio.CancelledError):
                await task
    return waiter in done and not waiter.cancelled()
