"""SLO-aware worker-pool sizing from observed batch latencies.

The executor's worker count is the service's main capacity knob: more
processes shrink the wall time of a dispatched micro-batch (the DSP
parallelizes per recording) at the cost of memory and pool churn.
:class:`LatencyController` closes the loop between the ``serve.batch_ms``
observations the service records for every dispatch — the service-side
aggregate of the ``executor.chunk`` span timings — and that knob:

- when the windowed p95 exceeds the latency budget, capacity is added
  one worker at a time (additive increase — cautious, because each new
  process costs startup and memory);
- when p95 sits comfortably inside the budget, capacity is released
  one worker at a time, never below the floor;
- a hysteresis deadband around the target plus a cooldown (minimum
  observations between resizes, with the window cleared on each
  resize) keeps the controller from oscillating on noise or on stale
  pre-resize samples.

The controller is pure arithmetic over fed observations — no clocks,
no I/O — so convergence is provable in a deterministic unit test.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["ControllerPolicy", "LatencyController"]


@dataclass(frozen=True)
class ControllerPolicy:
    """Feedback-loop parameters for SLO-driven pool sizing.

    Attributes
    ----------
    target_p95_ms:
        The batch-latency budget the controller steers toward.
    min_workers / max_workers:
        Hard bounds on the pool size recommendation.
    window:
        Number of recent batch latencies the p95 is computed over.
    deadband:
        Fractional hysteresis: no action while p95 is within
        ``target * (1 ± deadband)``.
    cooldown:
        Minimum observations after a resize (or startup) before the
        next resize may trigger — at least the window must partially
        refill with post-resize samples.
    """

    target_p95_ms: float = 250.0
    min_workers: int = 1
    max_workers: int = 8
    window: int = 8
    deadband: float = 0.15
    cooldown: int = 3

    def __post_init__(self) -> None:
        if self.target_p95_ms <= 0:
            raise ConfigurationError(
                f"target_p95_ms must be positive, got {self.target_p95_ms}"
            )
        if self.min_workers < 1:
            raise ConfigurationError(
                f"min_workers must be >= 1, got {self.min_workers}"
            )
        if self.max_workers < self.min_workers:
            raise ConfigurationError(
                f"max_workers ({self.max_workers}) must be >= min_workers "
                f"({self.min_workers})"
            )
        if self.window < 1:
            raise ConfigurationError(f"window must be >= 1, got {self.window}")
        if not 0.0 <= self.deadband < 1.0:
            raise ConfigurationError(
                f"deadband must be in [0, 1), got {self.deadband}"
            )
        if self.cooldown < 1:
            raise ConfigurationError(f"cooldown must be >= 1, got {self.cooldown}")


class LatencyController:
    """Windowed-p95 feedback controller for the executor worker count."""

    def __init__(self, policy: ControllerPolicy, initial_workers: int | None = None) -> None:
        self.policy = policy
        workers = policy.min_workers if initial_workers is None else initial_workers
        if not policy.min_workers <= workers <= policy.max_workers:
            raise ConfigurationError(
                f"initial_workers {workers} outside "
                f"[{policy.min_workers}, {policy.max_workers}]"
            )
        self._workers = workers
        self._window: deque[float] = deque(maxlen=policy.window)
        self._since_resize = 0
        self._resizes = 0

    @property
    def workers(self) -> int:
        """The current pool-size recommendation."""
        return self._workers

    @property
    def resizes(self) -> int:
        """Total resize decisions taken so far."""
        return self._resizes

    def window_p95(self) -> float:
        """p95 of the observation window (0.0 while empty)."""
        if not self._window:
            return 0.0
        return float(np.percentile(np.asarray(self._window), 95.0))

    def observe(self, batch_ms: float) -> int:
        """Feed one batch latency; returns the (possibly new) pool size.

        The recommendation changes by at most one worker per call, and
        only after ``cooldown`` post-resize observations, so the pool
        is never whipsawed by a single outlier batch.
        """
        self._window.append(float(batch_ms))
        self._since_resize += 1
        if self._since_resize < self.policy.cooldown:
            return self._workers
        p95 = self.window_p95()
        target = self.policy.target_p95_ms
        band = self.policy.deadband
        if p95 > target * (1.0 + band) and self._workers < self.policy.max_workers:
            self._apply(self._workers + 1)
        elif p95 < target * (1.0 - band) and self._workers > self.policy.min_workers:
            self._apply(self._workers - 1)
        return self._workers

    def _apply(self, workers: int) -> None:
        self._workers = workers
        self._resizes += 1
        self._since_resize = 0
        # Pre-resize latencies describe the old capacity; steering on
        # them would double-count the correction.
        self._window.clear()
